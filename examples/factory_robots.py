#!/usr/bin/env python3
"""The §IX case study: machine learning for robotics at the edge (Fig. 7).

"General purpose robots are trained in the cloud and refined at the
edge. DataCapsules serve as the information containers for both models
and episode history ... The GDP enables partitioning resources based on
ownership, and allows reasoning about flow of information."

This example builds the full scenario:

1. A general-purpose model is published from the cloud (a capsule
   filesystem on cloud servers, world-readable).
2. A factory pulls it once, refines it locally, and stores the refined
   model + the robots' episode history on the *factory floor's* edge
   server, scoped so neither ever leaves the factory domain
   ("it is desirable to keep the environment-specific information ...
   restricted to the factory floor for privacy reasons").
3. Robots on the floor load the refined model at LAN speed and stream
   episodes; an outside analyst can read the public model but the
   factory data is cryptographically and topologically out of reach.

Run:  python examples/factory_robots.py
"""

from repro.caapi import CapsuleFileSystem, TimeSeriesLog
from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.errors import GdpError
from repro.server import DataCapsuleServer
from repro.sim import blob, residential_edge_cloud


def main():
    topo = residential_edge_cloud(seed=9)
    net = topo.net

    # The 'home' domain plays the factory floor.
    cloud_server = DataCapsuleServer(net, "cloud_server")
    cloud_server.attach(topo.router("r_cloud"))
    floor_server = DataCapsuleServer(net, "floor_server")
    floor_server.attach(topo.router("r_home"))

    trainer = GdpClient(net, "cloud_trainer")
    trainer.attach(topo.router("r_cloud"))
    factory = GdpClient(net, "factory_controller")
    factory.attach(topo.router("r_home"))
    robot = GdpClient(net, "robot_07")
    robot.attach(topo.router("r_home"))
    outsider = GdpClient(net, "outside_analyst")
    outsider.attach(topo.router("r_isp"))

    vendor_console = OwnerConsole(trainer, SigningKey.from_seed(b"vendor"))
    factory_console = OwnerConsole(factory, SigningKey.from_seed(b"factory"))

    base_model = blob(2 * 1024 * 1024, seed=1)       # the cloud-trained model
    refined_model = blob(2 * 1024 * 1024, seed=2)    # after local fine-tuning

    def scenario():
        for endpoint in (cloud_server, floor_server, trainer, factory,
                         robot, outsider):
            yield endpoint.advertise()

        # 1. Vendor publishes the general-purpose model in the cloud.
        vendor_fs = CapsuleFileSystem(
            trainer, vendor_console, [cloud_server.metadata],
            chunk_size=512 * 1024,
        )
        yield from vendor_fs.format()
        t0 = net.sim.now
        yield from vendor_fs.write_file("models/general-v3.pb", base_model)
        print(f"[cloud]   vendor published general model "
              f"({len(base_model) >> 20} MB) in {net.sim.now - t0:.2f}s")
        catalog = vendor_fs.directory_name

        # 2. The factory pulls it once over the WAN...
        factory_view = CapsuleFileSystem(factory, factory_console, [])
        yield from factory_view.mount(catalog)
        t0 = net.sim.now
        pulled = yield from factory_view.read_file("models/general-v3.pb")
        print(f"[factory] pulled general model over WAN in "
              f"{net.sim.now - t0:.2f}s")
        assert pulled == base_model

        # ...refines it, and stores the result FLOOR-SCOPED: the AdCert
        # restricts the capsule to the global.home domain.
        floor_fs = CapsuleFileSystem(
            factory, factory_console, [floor_server.metadata],
            chunk_size=512 * 1024, scopes=["global.home"],
        )
        yield from floor_fs.format()
        yield from floor_fs.write_file("models/refined-v3.1.pb", refined_model)
        print("[factory] refined model stored on the floor server "
              "(scope: global.home)")

        # Episode history: a floor-scoped time-series capsule.
        episodes = TimeSeriesLog(
            factory, factory_console, [floor_server.metadata],
            scopes=["global.home"],
        )
        yield from episodes.create()

        # 3. A robot loads the refined model at LAN speed...
        robot_fs = CapsuleFileSystem(robot, factory_console, [])
        yield from robot_fs.mount(floor_fs.directory_name)
        t0 = net.sim.now
        model = yield from robot_fs.read_file("models/refined-v3.1.pb")
        print(f"[robot]   loaded refined model from the edge in "
              f"{net.sim.now - t0:.2f}s (vs WAN pull above)")
        assert model == refined_model

        # ...and streams grasp episodes into the history log.
        for i in range(6):
            yield from episodes.record(float(i), 0.8 + 0.02 * i)
        count, lo, hi, mean = yield from episodes.aggregate(0.0, 10.0)
        print(f"[robot]   logged {count} episodes "
              f"(success rate {lo:.2f}..{hi:.2f}, mean {mean:.2f})")

        # 4. The outside analyst can read the PUBLIC model...
        outsider_fs = CapsuleFileSystem(outsider, vendor_console, [])
        yield from outsider_fs.mount(catalog)
        public = yield from outsider_fs.read_file("models/general-v3.pb")
        assert public == base_model
        print("[outside] analyst read the public cloud model: OK")

        # ...but the floor-scoped data is unroutable from outside.
        try:
            outsider_view = CapsuleFileSystem(outsider, factory_console, [])
            yield from outsider_view.mount(floor_fs.directory_name)
            yield from outsider_view.read_file("models/refined-v3.1.pb")
            print("!! factory data leaked (this must not happen)")
        except GdpError as exc:
            print(f"[outside] factory data unreachable as intended "
                  f"({type(exc).__name__})")
        return True

    net.sim.run_process(scenario())
    print(f"done at simulated t={net.sim.now:.2f}s")


if __name__ == "__main__":
    main()
