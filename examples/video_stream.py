#!/usr/bin/env python3
"""Loss-tolerant multimedia streaming over a lossy edge path.

"A DataCapsule representing a streaming video can tolerate a few missing
frames" (§IV-A): the stream pointer strategy gives each record pointers
to its last W predecessors, so live playback survives dropped pushes
while every delivered frame stays integrity-verified; time-shifted
replay from storage later recovers the complete stream.

Run:  python examples/video_stream.py
"""

from repro.adversary import PathAttacker
from repro.caapi import StreamPublisher, StreamSubscriber
from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.routing import GdpRouter, RoutingDomain
from repro.routing.pdu import T_PUSH
from repro.server import DataCapsuleServer
from repro.sim import GBPS, SimNetwork, blob


def main():
    net = SimNetwork(seed=13)
    clock = lambda: net.sim.now  # noqa: E731
    root = RoutingDomain("global", clock=clock)
    venue = RoutingDomain("global.venue", root)
    r_root = GdpRouter(net, "r_root", root)
    r_venue = GdpRouter(net, "r_venue", venue)
    net.connect(r_venue, r_root, latency=0.025, bandwidth=GBPS)
    venue.attach_to_parent(r_venue, r_root)

    server = DataCapsuleServer(net, "stream_server")
    server.attach(r_venue)
    camera = GdpClient(net, "camera")
    camera.attach(r_venue)
    viewer = GdpClient(net, "remote_viewer")
    viewer.attach(r_root)

    console = OwnerConsole(camera, SigningKey.from_seed(b"venue-owner"))
    publisher = StreamPublisher(
        camera, console, [server.metadata], window=4, gop=6
    )

    # A flaky WAN: 30% of push PDUs vanish.
    attacker = PathAttacker(net, seed=99)
    attacker.match = lambda pdu: pdu.ptype == T_PUSH
    attacker.drop_rate = 0.30

    played: list[int] = []
    gap_events: list[list[int]] = []

    def scenario():
        for endpoint in (server, camera, viewer):
            yield endpoint.advertise()
        name = yield from publisher.create()
        print(f"stream capsule {name.human()} "
              f"(stream:4 pointers, keyframe every 6)")

        subscriber = StreamSubscriber(viewer, name)
        yield from subscriber.play(
            lambda frame: played.append(frame.index),
            on_gap=lambda missing: gap_events.append(missing),
        )

        attacker.install()
        for i in range(30):
            yield from publisher.publish(blob(1200, seed=i))
            yield 1 / 30  # 30 fps
        yield 1.0
        attacker.uninstall()

        print(f"live playback: {len(played)}/30 frames delivered, "
              f"{len(subscriber.gaps)} lost in transit "
              f"({attacker.stats['dropped']} PDUs black-holed)")
        print(f"gap events surfaced to the player: {gap_events[:4]}...")

        # Time-shift: replay from storage recovers every frame — the
        # server persisted them all; only the live pushes were lost.
        frames, missing = yield from subscriber.replay(1, 30)
        print(f"time-shifted replay: {len(frames)}/30 frames recovered, "
              f"{len(missing)} permanently missing")
        assert [f.index for f in frames] == list(range(30))

        # Integrity held throughout: every delivered frame was verified
        # against a writer heartbeat before reaching the player.
        reader = viewer.readers[name]
        print(f"viewer's verified frontier: seqno "
              f"{reader.frontier.seqno}")
        return True

    net.sim.run_process(scenario())
    print(f"done at simulated t={net.sim.now:.2f}s")


if __name__ == "__main__":
    main()
