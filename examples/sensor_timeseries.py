#!/usr/bin/env python3
"""IoT time-series with live subscription and verified time-shift replay.

The paper's first real deployment workload (§VIII): "time-series
environmental sensors, visualization of time-series data".  A sensor hub
records ambient temperature into a capsule; a dashboard subscribes for
live updates; a late-arriving auditor replays and *verifies* the entire
history (the time-shift property of §V), including sealed (encrypted)
payload mode with read-key sharing.

Run:  python examples/sensor_timeseries.py
"""

from repro.caapi import TimeSeriesLog
from repro.capsule import ContentKey, ReadGrant, open_payload, seal_payload
from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.server import DataCapsuleServer
from repro.sim import GBPS, SimNetwork, sensor_readings
from repro.routing import GdpRouter, RoutingDomain


def main():
    net = SimNetwork(seed=4)
    clock = lambda: net.sim.now  # noqa: E731
    root = RoutingDomain("global", clock=clock)
    building = RoutingDomain("global.building7", root)
    r_root = GdpRouter(net, "r_root", root)
    r_bldg = GdpRouter(net, "r_bldg", building)
    net.connect(r_bldg, r_root, latency=0.015, bandwidth=GBPS)
    building.attach_to_parent(r_bldg, r_root)

    hub_server = DataCapsuleServer(net, "hub_server")
    hub_server.attach(r_bldg)
    offsite_server = DataCapsuleServer(net, "offsite_server")
    offsite_server.attach(r_root)

    sensor = GdpClient(net, "sensor_hub")
    sensor.attach(r_bldg)
    dashboard = GdpClient(net, "dashboard")
    dashboard.attach(r_root)
    auditor = GdpClient(net, "auditor")
    auditor.attach(r_root)

    owner_key = SigningKey.from_seed(b"building-owner")
    console = OwnerConsole(sensor, owner_key)
    log = TimeSeriesLog(
        sensor, console, [hub_server.metadata, offsite_server.metadata]
    )

    live: list[float] = []

    def scenario():
        for endpoint in (hub_server, offsite_server, sensor, dashboard, auditor):
            yield endpoint.advertise()
        name = yield from log.create()
        print(f"time-series capsule {name.human()} created "
              "(skip-list pointers, 2 replicas)")

        # The dashboard tails the stream live.
        dash_log = TimeSeriesLog(dashboard, console, [])
        yield from dash_log.mount(name)
        yield from dash_log.tail(lambda s: live.append(s.value))

        # The sensor records a day of readings (compressed to sim time).
        for t, value in sensor_readings(24, interval=3600.0, seed=2):
            yield from log.record(t, value)
            yield 0.05
        yield 1.0
        print(f"dashboard received {len(live)} live updates, "
              f"last={live[-1]:.1f}°C")

        # A late auditor replays a window with full verification.
        audit_log = TimeSeriesLog(auditor, console, [])
        yield from audit_log.mount(name)
        count, lo, hi, mean = yield from audit_log.aggregate(0.0, 86400.0)
        print(f"auditor verified {count} samples: "
              f"min={lo:.1f} max={hi:.1f} mean={mean:.2f}°C")
        reader = auditor.readers[name]
        verified = reader.verify_everything()
        print(f"auditor re-verified the full hash-pointer history: "
              f"{verified} records")

        # Confidential mode: sealed payloads + read-key sharing.
        content_key = ContentKey.generate(name)
        secret = seal_payload(content_key, 999, b"calibration-coefficients")
        print(f"sealed payload: {len(secret)} bytes of ciphertext "
              "(infrastructure never sees plaintext)")
        grant = ReadGrant.create(content_key, auditor.key.public)
        recovered = grant.unwrap(auditor.key)
        plaintext = open_payload(recovered, 999, secret)
        print(f"auditor unwrapped read grant and decrypted: {plaintext!r}")
        return True

    net.sim.run_process(scenario())
    print(f"done at simulated t={net.sim.now:.1f}s; "
          f"hub appends={hub_server.stats['appends']}, "
          f"offsite replications={offsite_server.stats['replications']}")


if __name__ == "__main__":
    main()
