#!/usr/bin/env python3
"""Quickstart: DataCapsules and the Global Data Plane in ~80 lines.

Creates a two-domain GDP (cloud + edge), places a DataCapsule on both,
appends records, reads them back with verified integrity proofs, and
shows tamper detection.

Run:  python examples/quickstart.py
"""

from repro.adversary import StorageTamperer
from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.errors import GdpError
from repro.routing import GdpRouter, RoutingDomain
from repro.server import DataCapsuleServer
from repro.sim import GBPS, SimNetwork


def main():
    # --- infrastructure: two routing domains, two servers -------------
    net = SimNetwork(seed=1)
    clock = lambda: net.sim.now  # noqa: E731
    cloud = RoutingDomain("global", clock=clock)
    edge = RoutingDomain("global.edge", cloud)
    r_cloud = GdpRouter(net, "r_cloud", cloud)
    r_edge = GdpRouter(net, "r_edge", edge)
    net.connect(r_edge, r_cloud, latency=0.02, bandwidth=GBPS)
    edge.attach_to_parent(r_edge, r_cloud)

    cloud_server = DataCapsuleServer(net, "cloud_server")
    cloud_server.attach(r_cloud)
    edge_server = DataCapsuleServer(net, "edge_server")
    edge_server.attach(r_edge)

    # --- principals: an owner/writer client and a reader ---------------
    client = GdpClient(net, "sensor_hub")
    client.attach(r_edge)
    reader = GdpClient(net, "analyst")
    reader.attach(r_cloud)

    owner_key = SigningKey.generate()
    writer_key = SigningKey.generate()
    console = OwnerConsole(client, owner_key)

    def scenario():
        # Everyone advertises their names (challenge-response, §VII).
        for endpoint in (cloud_server, edge_server, client, reader):
            yield endpoint.advertise()

        # The owner designs a capsule and delegates both servers.
        metadata = console.design_capsule(
            writer_key.public, pointer_strategy="skiplist",
            label="temperature-lab-42",
        )
        placement = yield from console.place_capsule(
            metadata, [cloud_server.metadata, edge_server.metadata]
        )
        yield 0.5  # servers re-advertise the new name
        print(f"capsule {metadata.name.human()} placed on "
              f"{len(placement.servers)} servers")

        # The single writer appends; anycast picks the edge replica.
        writer = client.open_writer(metadata, writer_key)
        for i in range(5):
            record, acks = yield from writer.append(
                b"reading=%d" % (20 + i)
            )
            print(f"  appended record {record.seqno} (acks={acks})")
        record, acks = yield from writer.append(b"critical=1", acks="all")
        print(f"  appended record {record.seqno} durably (acks={acks})")
        yield 1.0  # background replication

        # A reader elsewhere fetches with cryptographic proofs.
        record = yield from reader.read(metadata.name, 3)
        print(f"verified read: record 3 = {record.payload!r}")
        records = yield from reader.read_range(metadata.name, 1, 6)
        print(f"verified range: {[r.payload for r in records]}")

        # An evil operator tampers with the cloud replica...
        StorageTamperer(cloud_server).corrupt_record(metadata.name, 2)
        fresh_reader = GdpClient(net, "auditor")
        fresh_reader.attach(r_cloud)
        yield fresh_reader.advertise()
        try:
            yield from fresh_reader.read(metadata.name, 2)
            print("!! tampering went unnoticed (this must not happen)")
        except GdpError as exc:
            print(f"tampering detected as expected: {type(exc).__name__}")
        return metadata

    metadata = net.sim.run_process(scenario())
    print(f"done at simulated t={net.sim.now:.3f}s; "
          f"edge served {edge_server.stats['appends']} appends, "
          f"cloud replicated {cloud_server.stats['replications']}")


if __name__ == "__main__":
    main()
