#!/usr/bin/env python3
"""A federation of administrative domains: delegation, anycast, attacks.

Builds the Figure 1 world: several independently operated sites joined
by a backbone, a storage *organization* whose member servers inherit
delegations (§V fn. 8), anycast reads landing on the closest replica,
and two attacks — a name-squatting endpoint and a compromised
GLookupService — both stopped by the verifiable-routing machinery (§VII).

Run:  python examples/federated_network.py
"""

from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.delegation import AdCert, OrgMembership, ServiceChain
from repro.naming import make_organization_metadata
from repro.routing import GdpRouter, RoutingDomain  # noqa: F401 (doc import)
from repro.routing.glookup import RouteEntry
from repro.server import DataCapsuleServer
from repro.sim import federated_campus


def main():
    topo = federated_campus(n_domains=3, seed=42)
    net = topo.net

    # A storage organization ("StoreCo") operates servers in two sites.
    storeco_key = SigningKey.from_seed(b"storeco")
    storeco_md = make_organization_metadata(storeco_key)
    server_a = DataCapsuleServer(net, "storeco_site0")
    server_a.attach(topo.router("site0_r1"))
    server_b = DataCapsuleServer(net, "storeco_site2")
    server_b.attach(topo.router("site2_r1"))
    memberships = {
        server.name: OrgMembership.issue(
            storeco_key, storeco_md.name, server.name
        )
        for server in (server_a, server_b)
    }

    publisher = GdpClient(net, "publisher")
    publisher.attach(topo.router("site1_r0"))
    reader_near = GdpClient(net, "reader_site0")
    reader_near.attach(topo.router("site0_r0"))
    reader_far = GdpClient(net, "reader_site2")
    reader_far.attach(topo.router("site2_r0"))

    owner_key = SigningKey.from_seed(b"publisher-owner")
    writer_key = SigningKey.from_seed(b"publisher-writer")
    console = OwnerConsole(publisher, owner_key)

    def scenario():
        for endpoint in (server_a, server_b, publisher, reader_near, reader_far):
            yield endpoint.advertise()

        # The owner delegates to the ORGANIZATION, not to individual
        # servers ("in practice, a DataCapsule-owner issues such
        # delegations to storage organizations", fn. 8); each member
        # server proves membership to serve.
        metadata = console.design_capsule(writer_key.public, label="bulletin")
        adcert = AdCert.issue(owner_key, metadata.name, storeco_md.name)
        for server in (server_a, server_b):
            chain = ServiceChain(
                metadata, adcert, server.metadata,
                storeco_md, memberships[server.name],
            )
            reply_corr, future = publisher.request(
                server.name,
                {
                    "op": "host",
                    "capsule": metadata.name.raw,
                    "metadata": metadata.to_wire(),
                    "chain": chain.to_wire(),
                    "siblings": [
                        other.name.raw
                        for other in (server_a, server_b)
                        if other is not server
                    ],
                },
            )
            yield future
        yield 0.5
        print(f"capsule {metadata.name.human()} delegated to StoreCo "
              "(org-level AdCert + per-server memberships)")

        writer = publisher.open_writer(metadata, writer_key)
        for i in range(4):
            yield from writer.append(b"bulletin-%d" % i)
        yield 1.0

        # Anycast: each reader is served by the replica in its own site.
        yield from reader_near.read(metadata.name, 1)
        yield from reader_far.read(metadata.name, 1)
        print(f"anycast: site0 reader -> site0 server "
              f"(reads={server_a.stats['reads']}), "
              f"site2 reader -> site2 server "
              f"(reads={server_b.stats['reads']})")
        assert server_a.stats["reads"] == 1
        assert server_b.stats["reads"] == 1

        # Attack 1: a squatter tries to advertise the capsule name with
        # a self-made chain — the router drops the catalog entry.
        squatter = DataCapsuleServer(net, "squatter")
        squatter.attach(topo.router("site1_r1"))
        evil_key = SigningKey.from_seed(b"evil")
        evil_adcert = AdCert.issue(evil_key, metadata.name, squatter.name)
        evil_chain = ServiceChain(metadata, evil_adcert, squatter.metadata)
        accepted = yield squatter.advertise(
            [{"chain": evil_chain.to_wire()}]
        )
        squatted = metadata.name.raw in accepted
        print(f"attack 1 (squatter advertises foreign capsule): "
              f"{'LEAKED' if squatted else 'rejected by router'}")
        assert not squatted

        # Attack 2: a compromised GLookupService hands out a forged
        # route; the resolving router re-verifies and skips it.
        root_glookup = topo.domain("global").glookup
        root_glookup.verify_on_register = False
        forged_entry = RouteEntry(
            metadata.name,
            router=topo.router("bb0").name,
            principal=squatter.name,
            principal_metadata=squatter.metadata,
            rtcert=None,
            chain=evil_chain,
            router_metadata=topo.router("bb0").metadata,
        )
        root_glookup.register(forged_entry, propagate=False)
        for router in topo.routers.values():
            router.flush_fib()
        record = yield from reader_far.read(metadata.name, 2)
        print(f"attack 2 (compromised GLookupService): forged route "
              f"skipped, read still verified: {record.payload!r}")
        return True

    net.sim.run_process(scenario())
    print(f"done at simulated t={net.sim.now:.2f}s")


if __name__ == "__main__":
    main()
