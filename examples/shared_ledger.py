#!/usr/bin/env python3
"""Multi-writer collaboration through a commit service (§V-A).

DataCapsules have exactly one writer — on purpose.  The paper's first
multi-writer accommodation is "a distributed commit service that accepts
updates from multiple writers, serializes them, and appends them to a
DataCapsule"; the commit service *is* the single writer, separating
write decisions from durability responsibilities.

This example builds a shared maintenance ledger for a factory: three
technicians submit signed entries concurrently; the commit service
enforces a write ACL, serializes, and appends; auditors read a totally
ordered, provenance-preserving log where every entry still carries its
original submitter's signature.

Run:  python examples/shared_ledger.py
"""

from repro.caapi import CommitService, read_committed, submit_update
from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.routing import GdpRouter, RoutingDomain
from repro.server import DataCapsuleServer
from repro.sim import GBPS, SimNetwork


def main():
    net = SimNetwork(seed=21)
    clock = lambda: net.sim.now  # noqa: E731
    root = RoutingDomain("global", clock=clock)
    plant = RoutingDomain("global.plant", root)
    r_root = GdpRouter(net, "r_root", root)
    r_plant = GdpRouter(net, "r_plant", plant)
    net.connect(r_plant, r_root, latency=0.012, bandwidth=GBPS)
    plant.attach_to_parent(r_plant, r_root)

    server = DataCapsuleServer(net, "ledger_server")
    server.attach(r_plant)

    service = CommitService(net, "commit_service")
    service.attach(r_plant)

    technicians = []
    for name in ("alice", "bob", "carol"):
        tech = GdpClient(net, name, key=SigningKey.from_seed(name.encode()))
        tech.attach(r_plant)
        technicians.append(tech)
        service.allow_writer(tech.key.public)

    auditor = GdpClient(net, "auditor")
    auditor.attach(r_root)
    intruder = GdpClient(net, "intruder", key=SigningKey.from_seed(b"evil"))
    intruder.attach(r_root)

    console = OwnerConsole(technicians[0], SigningKey.from_seed(b"plant-owner"))

    def scenario():
        for endpoint in [server, service, auditor, intruder] + technicians:
            yield endpoint.advertise()
        ledger = yield from service.create_capsule(console, [server.metadata])
        print(f"shared ledger {ledger.human()} online "
              f"(single writer = the commit service)")

        # Concurrent submissions from all three technicians.
        entries = [
            (technicians[0], b"replaced bearing on robot-7"),
            (technicians[1], b"calibrated conveyor encoder"),
            (technicians[2], b"firmware 4.2 on PLC bank B"),
            (technicians[0], b"verified robot-7 torque curve"),
        ]
        futures = []
        for tech, note in entries:
            futures.append(net.sim.spawn(
                submit_update(tech, service.name, ledger, note),
                name=f"submit:{tech.node_id}",
            ).completion)
        receipts = yield net.sim.gather(futures)
        seqnos = sorted(receipt.seqno for receipt in receipts)
        print(f"4 concurrent submissions serialized to seqnos {seqnos}")

        # An unauthorized writer is refused at the ACL.
        try:
            yield from submit_update(
                intruder, service.name, ledger, b"definitely legit"
            )
            print("!! intruder entry accepted (must not happen)")
        except Exception as exc:
            print(f"intruder submission refused: {type(exc).__name__}")

        # The auditor replays the totally ordered ledger with provenance.
        yield 1.0
        latest = yield from auditor.read_latest(ledger)
        tip = latest.record.seqno
        result = yield from auditor.read_range(ledger, 1, tip)
        key_names = {
            tech.key.public.to_bytes(): tech.node_id for tech in technicians
        }
        print("audited ledger (verified, totally ordered):")
        for record in result.records:
            submitter, note = read_committed(record.payload)
            who = key_names.get(submitter, "unknown")
            print(f"  #{record.seqno} [{who}] {note.decode()}")
        assert tip == 4
        return True

    net.sim.run_process(scenario())
    print(f"done at simulated t={net.sim.now:.2f}s; "
          f"committed={service.stats_committed}, "
          f"rejected={service.stats_rejected}")


if __name__ == "__main__":
    main()
