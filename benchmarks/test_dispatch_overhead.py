"""Runtime-layer overhead guard: dispatch + middleware on the Figure 6 loop.

PR 1 moved every node onto ``repro.runtime`` — typed op dispatch, the
per-node middleware pipeline, and the metrics/trace plane.  This
micro-benchmark runs the Figure 6 forwarding loop (single router, fat
access links, fixed-size data PDUs) in three configurations and guards
the *wall-clock* cost of the new plumbing:

* ``plain``    — default world: pipelines exist but are empty, the
  metrics registry is enabled but only the always-on counters
  (``router.forwarded``, ``net.bytes``, …) tick.
* ``disabled`` — ``SimNetwork(metrics_enabled=False)``: every counter is
  the shared no-op ``NULL`` instrument; this must cost ~nothing.
* ``full``     — ``enable_node_metrics()`` + ``enable_tracing()``: a
  two-middleware pipeline runs on every inbound/outbound PDU at every
  node and each crossing emits a trace event.

Rounds are interleaved across configurations and each configuration is
scored by its best (minimum) round, which suppresses scheduler noise.
"""

from __future__ import annotations

import time

from repro.client import GdpClient
from repro.routing.pdu import Pdu, T_DATA
from repro.sim import GBPS, SimNetwork, single_router

PAIRS = 8
PDUS_PER_PAIR = 150
PAYLOAD = b"\x00" * 256
ROUNDS = 5


def run_forwarding_loop(mode: str) -> float:
    """One Figure 6-style forwarding run; returns wall-clock seconds."""
    topo = single_router(seed=7)
    net: SimNetwork = topo.net
    if mode == "disabled":
        net.metrics.enabled = False
    elif mode == "full":
        net.enable_node_metrics()
        net.enable_tracing()
    router = topo.router("r0")
    router.egress_bandwidth = GBPS

    received = {"count": 0}
    senders, receivers = [], []
    for i in range(PAIRS):
        sender = GdpClient(net, f"tx{i}", verify=False)
        receiver = GdpClient(net, f"rx{i}", verify=False)
        sender.attach(router, latency=0.0001, bandwidth=10 * GBPS)
        receiver.attach(router, latency=0.0001, bandwidth=10 * GBPS)

        def sink(pdu, _received=received):
            _received["count"] += 1
            return None  # no response traffic

        receiver.on_request = sink
        senders.append(sender)
        receivers.append(receiver)

    def scenario():
        for endpoint in senders + receivers:
            yield endpoint.advertise()
        for sender, receiver in zip(senders, receivers):
            for _ in range(PDUS_PER_PAIR):
                sender.send_pdu(
                    Pdu(sender.name, receiver.name, T_DATA, PAYLOAD)
                )
        while received["count"] < PAIRS * PDUS_PER_PAIR:
            yield 0.001
        return True

    start = time.perf_counter()
    topo.sim.run_process(scenario())
    elapsed = time.perf_counter() - start
    assert received["count"] == PAIRS * PDUS_PER_PAIR
    return elapsed


def test_dispatch_and_middleware_overhead(report):
    modes = ("plain", "disabled", "full")
    times: dict[str, list[float]] = {mode: [] for mode in modes}
    # Warm-up round (imports, code caches), then interleaved scoring
    # rounds so drift hits every configuration equally.
    for mode in modes:
        run_forwarding_loop(mode)
    for _ in range(ROUNDS):
        for mode in modes:
            times[mode].append(run_forwarding_loop(mode))

    best = {mode: min(times[mode]) for mode in modes}
    ratio = {mode: best[mode] / best["plain"] for mode in modes}

    report.line("Runtime-layer overhead — Figure 6 forwarding loop")
    report.line(
        f"({PAIRS} pairs x {PDUS_PER_PAIR} PDUs, best of {ROUNDS} "
        "interleaved rounds)"
    )
    report.table(
        ["config", "best_ms", "vs_plain"],
        [
            [mode, f"{best[mode] * 1e3:.1f}", f"{ratio[mode] - 1:+.1%}"]
            for mode in modes
        ],
    )

    # Disabled registry: NULL counters and empty pipelines must be free
    # (threshold absorbs timer noise, not real work).
    assert ratio["disabled"] < 1.05, (
        f"metrics_enabled=False costs {ratio['disabled'] - 1:.1%} "
        "over the plain loop — the NULL instrument path regressed"
    )
    # Full plane: two middlewares + a trace emit per PDU per node must
    # stay under the 10% budget from the runtime-layer refactor.
    assert ratio["full"] < 1.10, (
        f"metrics+tracing costs {ratio['full'] - 1:.1%} "
        "over the plain loop — exceeds the 10% overhead budget"
    )
