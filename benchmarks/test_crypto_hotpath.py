"""Crypto hot-path microbenchmarks: the acceleration-layer speedups.

Measures sign, verify (cold ladder / warm memo), capsule append, and
full-history verification with the accelerated paths against the naive
double-and-add reference, using the paired-trial harness from
:mod:`repro.bench` (accel/naive trials interleave so machine noise
cancels out of the ratios).  The same engine backs ``repro bench`` and
the CI perf gate; this file is the human-readable lens on it.

Acceptance floors (ISSUE 3): >=5x on cold verify, >=2x on sign.
"""

from __future__ import annotations

import pytest

from repro import bench


@pytest.fixture(scope="module")
def results():
    return bench.run_bench(skip_fig8=True)


def test_crypto_hotpath_table(benchmark, report, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    accel = results["ops_per_sec"]
    naive = results["naive_ops_per_sec"]
    speedup = results["speedup"]
    report.line("Crypto hot-path op/s — accelerated vs naive reference")
    report.line("(fixed-base combs + Shamir verify + signature/digest memo)")
    report.table(
        ["operation", "accel_ops", "naive_ops", "speedup"],
        [
            ["sign", f"{accel['sign']:,.0f}", f"{naive['sign']:,.0f}",
             f"{speedup['sign']:.2f}x"],
            ["verify (cold)", f"{accel['verify_cold']:,.0f}",
             f"{naive['verify_cold']:,.0f}", f"{speedup['verify']:.2f}x"],
            ["verify (warm)", f"{accel['verify_warm']:,.0f}",
             f"{naive['verify_warm']:,.0f}",
             f"{speedup['verify_warm']:.2f}x"],
            ["append", f"{accel['append']:,.0f}", f"{naive['append']:,.0f}",
             f"{speedup['append']:.2f}x"],
            ["verify_history (rec/s)", f"{accel['verify_history']:,.0f}",
             f"{naive['verify_history']:,.0f}",
             f"{speedup['verify_history']:.2f}x"],
        ],
    )
    benchmark.extra_info.update(
        {f"speedup_{k}": round(v, 2) for k, v in speedup.items()}
    )


def test_verify_speedup_floor(results):
    assert results["speedup"]["verify"] >= 5.0, (
        "cold ECDSA verify must be >=5x the naive ladder "
        f"(got {results['speedup']['verify']:.2f}x)"
    )


def test_sign_speedup_floor(results):
    assert results["speedup"]["sign"] >= 2.0, (
        "ECDSA sign must be >=2x the naive ladder "
        f"(got {results['speedup']['sign']:.2f}x)"
    )


def test_warm_verify_beats_cold(results):
    # The memo hit path must be at least an order of magnitude above a
    # real ladder — it is a dict lookup.
    assert (
        results["ops_per_sec"]["verify_warm"]
        >= 10 * results["ops_per_sec"]["verify_cold"]
    )
