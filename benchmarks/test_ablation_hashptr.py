"""Ablation A1 (§V "How to choose the hash-pointers?"): the strategy
trade-off between append cost and proof size.

"Typically, it's a trade-off between the cost of 'append' and integrity
proofs for 'read'."  We build the same N-record history under each
strategy and measure: pointers carried per append (append cost), point
proof hops/bytes to old records (read cost), and range proof bytes
(where the plain chain wins — "this simple linked-list design is very
efficient in range queries").
"""

from __future__ import annotations

import statistics


from repro.capsule import (
    CapsuleWriter,
    DataCapsule,
    build_position_proof,
    build_range_proof,
)
from repro.crypto import SigningKey
from repro.naming import make_capsule_metadata

STRATEGIES = ["chain", "skiplist", "checkpoint:32", "stream:4"]
N_RECORDS = 512
PROBE_SEQNOS = [1, 64, 256, 500]

_OWNER = SigningKey.from_seed(b"a1-owner")
_WRITER = SigningKey.from_seed(b"a1-writer")


def build_history(strategy: str) -> DataCapsule:
    metadata = make_capsule_metadata(
        _OWNER, _WRITER.public, pointer_strategy=strategy,
        extra={"ablation": "a1"},
    )
    capsule = DataCapsule(metadata)
    writer = CapsuleWriter(capsule, _WRITER)
    for i in range(N_RECORDS):
        writer.append(b"record-payload-%04d" % i)
    return capsule


def measure(strategy: str) -> dict:
    capsule = build_history(strategy)
    pointer_counts = [len(r.pointers) for r in capsule.records()]
    proofs = [build_position_proof(capsule, s) for s in PROBE_SEQNOS]
    # Range read up to the reader's frontier (the common tail-read): the
    # proof anchors at the heartbeat of the range's newest record, and
    # the range self-verifies against it — where the chain shines.
    anchor = next(hb for hb in capsule.heartbeats() if hb.seqno == 199)
    range_proof = build_range_proof(capsule, 100, 199, against=anchor)
    return {
        "strategy": strategy,
        "avg_pointers": statistics.mean(pointer_counts),
        "worst_hops": max(len(p.headers) for p in proofs),
        "avg_proof_bytes": statistics.mean(p.size_bytes() for p in proofs),
        "oldest_proof_hops": len(proofs[0].headers),
        "range_proof_bytes": range_proof.size_bytes(),
    }


def test_a1_hashptr_tradeoff(benchmark, report):
    results = benchmark.pedantic(
        lambda: [measure(s) for s in STRATEGIES], rounds=1, iterations=1
    )
    report.line(
        f"Ablation A1 — pointer strategies over {N_RECORDS} records "
        f"(point proofs at seqnos {PROBE_SEQNOS})"
    )
    report.table(
        ["strategy", "ptrs/append", "proof_hops(rec 1)", "avg_proof_B",
         "range(100) proof_B"],
        [
            [r["strategy"], f"{r['avg_pointers']:.2f}",
             r["oldest_proof_hops"], f"{r['avg_proof_bytes']:.0f}",
             r["range_proof_bytes"]]
            for r in results
        ],
    )
    by_name = {r["strategy"]: r for r in results}
    # Chain: cheapest appends, linear proofs.
    assert by_name["chain"]["avg_pointers"] == 1.0
    assert by_name["chain"]["oldest_proof_hops"] == N_RECORDS
    # Skip-list: logarithmic proofs at modest append cost.
    assert by_name["skiplist"]["oldest_proof_hops"] <= 20
    assert by_name["skiplist"]["avg_pointers"] < 3
    # Checkpoint: bounded proofs (hop to checkpoint chain).
    assert by_name["checkpoint:32"]["oldest_proof_hops"] <= (
        N_RECORDS // 32 + 32 + 2
    )
    # Proof size follows hop count: skiplist beats chain by >10x on old
    # records.
    assert (
        by_name["skiplist"]["avg_proof_bytes"]
        < by_name["chain"]["avg_proof_bytes"] / 10
    )
    # All range proofs are O(1)-ish (one position proof): the chain's
    # is no bigger than the fancier strategies'.
    assert by_name["chain"]["range_proof_bytes"] <= min(
        by_name[s]["range_proof_bytes"] for s in STRATEGIES if s != "chain"
    ) * 1.1


def test_a1_append_throughput(benchmark):
    """Wall-clock append rate for the cheapest vs the richest strategy
    (real CPU: hashing + ECDSA dominate; extra pointers are noise)."""

    def append_block(strategy):
        capsule = build_history(strategy)
        return capsule.last_seqno

    result = benchmark.pedantic(
        append_block, args=("skiplist",), rounds=1, iterations=1
    )
    assert result == N_RECORDS
