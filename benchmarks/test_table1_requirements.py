"""Table I: the platform-requirements matrix, executed.

The paper's Table I is qualitative (requirement -> enabling feature).
Here each row is an executable conformance scenario (mirroring
``tests/integration/test_requirements_matrix.py``); the benchmark runs
the whole matrix and reports PASS per row plus the end-to-end cost of
the federation bootstrap that the features rest on.
"""

from __future__ import annotations

from repro.caapi import CapsuleKVStore, TimeSeriesLog
from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.errors import GdpError, RoutingError, TimeoutError_
from repro.routing import GdpRouter, RoutingDomain
from repro.server import DataCapsuleServer
from repro.sim import GBPS, SimNetwork


def build():
    net = SimNetwork(seed=77)
    clock = lambda: net.sim.now  # noqa: E731
    root = RoutingDomain("global", clock=clock)
    edge = RoutingDomain("global.edge", root)
    r_root = GdpRouter(net, "r_root", root)
    r_edge = GdpRouter(net, "r_edge", edge)
    uplink = net.connect(r_edge, r_root, latency=0.02, bandwidth=GBPS)
    edge.attach_to_parent(r_edge, r_root)
    server_root = DataCapsuleServer(net, "srv_root")
    server_root.attach(r_root)
    server_edge = DataCapsuleServer(net, "srv_edge")
    server_edge.attach(r_edge)
    writer_client = GdpClient(net, "writerc")
    writer_client.attach(r_edge)
    reader_client = GdpClient(net, "readerc")
    reader_client.attach(r_root)
    owner = SigningKey.from_seed(b"t1-owner")
    writer_key = SigningKey.from_seed(b"t1-writer")
    console = OwnerConsole(writer_client, owner)
    return locals()


def run_matrix() -> list[tuple[str, str, bool]]:
    w = build()
    net = w["net"]
    results: list[tuple[str, str, bool]] = []

    def scenario():
        for endpoint in (
            w["server_root"], w["server_edge"],
            w["writer_client"], w["reader_client"],
        ):
            yield endpoint.advertise()

        # 1. Homogeneous interface: two different CAAPIs, same servers.
        kv = CapsuleKVStore(w["writer_client"], w["console"],
                            [w["server_edge"].metadata])
        ts = TimeSeriesLog(w["writer_client"], w["console"],
                           [w["server_edge"].metadata],
                           writer_key=w["writer_key"])
        yield from kv.create()
        yield from ts.create()
        yield from kv.put("mode", "auto")
        yield from ts.record(1.0, 21.5)
        ok = (yield from kv.get("mode")) == "auto"
        results.append(
            ("Homogeneous interface", "one capsule API, many CAAPIs", ok)
        )

        # 2. Federated architecture: name-anchored trust, no PKI.
        metadata = w["console"].design_capsule(w["writer_key"].public)
        yield from w["console"].place_capsule(
            metadata, [w["server_edge"].metadata, w["server_root"].metadata]
        )
        yield 0.5
        writer = w["writer_client"].open_writer(metadata, w["writer_key"])
        yield from writer.append(b"federated")
        yield 1.0
        record = yield from w["reader_client"].read(metadata.name, 1)
        results.append(
            ("Federated architecture", "flat name as trust anchor",
             record.payload == b"federated")
        )

        # 3. Locality: local reads never cross the uplink.
        before = w["uplink"].stats_sent
        yield from w["writer_client"].read(metadata.name, 1)
        results.append(
            ("Locality", "hierarchical routing domains",
             w["uplink"].stats_sent == before)
        )

        # 4. Secure storage: tamper -> detect.
        from repro.adversary import StorageTamperer

        StorageTamperer(w["server_root"]).corrupt_record(metadata.name, 1)
        try:
            yield from w["reader_client"].read(metadata.name, 1)
            detected = False
        except GdpError:
            detected = True
        results.append(
            ("Secure storage", "capsule as verifiable ADS", detected)
        )

        # 5. Administrative boundaries: per-capsule delegation enforced.
        scoped = w["console"].design_capsule(
            w["writer_key"].public, extra={"scoped": 1}
        )
        yield from w["console"].place_capsule(
            scoped, [w["server_edge"].metadata], scopes=["global.edge"]
        )
        yield 0.5
        scoped_writer = w["writer_client"].open_writer(scoped, w["writer_key"])
        yield from scoped_writer.append(b"confined")
        try:
            yield from w["reader_client"].read(scoped.name, 1)
            confined = False
        except (RoutingError, TimeoutError_):
            confined = True
        results.append(
            ("Administrative boundaries", "AdCert scope policies", confined)
        )

        # 6. Secure routing: every installed route re-verifies.
        verified = True
        for domain in (w["root"], w["edge"]):
            for name in list(domain.glookup.names()):
                for entry in domain.glookup.lookup(name):
                    try:
                        entry.verify(now=net.sim.now)
                    except GdpError:
                        verified = False
        results.append(
            ("Secure routing", "advertisements + AdCert/RtCert chains",
             verified)
        )

        # 7. Publish-subscribe: native subscribe works cross-domain.
        received = []
        yield from w["reader_client"].subscribe(
            metadata.name, lambda r, h: received.append(r.seqno)
        )
        yield from writer.append(b"pub")
        yield 2.0
        results.append(
            ("Publish-subscribe", "subscribe as a native capsule op",
             received == [2])
        )

        # 8. Incremental deployment: everything above ran as an overlay
        # on plain point-to-point links.
        from repro.sim.net import Link

        results.append(
            ("Incremental deployment", "overlay on existing links",
             all(isinstance(link, Link) for link in net.links))
        )
        return results

    return net.sim.run_process(scenario())


def test_table1_matrix(benchmark, report):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    report.line("Table I — platform requirements, executed")
    report.table(
        ["requirement", "enabling feature", "status"],
        [[req, feature, "PASS" if ok else "FAIL"] for req, feature, ok in results],
    )
    assert all(ok for _, _, ok in results)
    assert len(results) == 8
