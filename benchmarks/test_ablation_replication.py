"""Ablation A5 (§V-A, §VI): leaderless anti-entropy convergence.

"For any missing records, DataCapsule-servers can synchronize their
state in the background. This effectively leads us to a leaderless
replication design, which is much more efficient in presence of
failures."

Scenario: N replicas of one capsule; a partition isolates the writer's
replica while it accepts appends; the partition heals and the
anti-entropy daemons (one per server, period T) repair everyone.
Measured: time from heal to full convergence, vs daemon period and vs
replica count — convergence is bounded by O(period · diameter of the
gossip relation), not by any leader's availability.
"""

from __future__ import annotations

from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.routing import GdpRouter, RoutingDomain
from repro.server import AntiEntropyDaemon, DataCapsuleServer
from repro.sim import GBPS, SimNetwork

APPENDS_DURING_PARTITION = 6


def run_convergence(n_replicas: int, interval: float) -> dict:
    net = SimNetwork(seed=n_replicas * 100 + int(interval * 10))
    clock = lambda: net.sim.now  # noqa: E731
    root = RoutingDomain("global", clock=clock)
    hub = GdpRouter(net, "hub", root)
    writer_router = GdpRouter(net, "r_writer", root)
    uplink = net.connect(writer_router, hub, latency=0.01, bandwidth=GBPS)

    servers = []
    daemons = []
    for i in range(n_replicas):
        server = DataCapsuleServer(net, f"s{i}")
        if i == 0:
            server.attach(writer_router, latency=0.001)
        else:
            router = GdpRouter(net, f"r{i}", root)
            net.connect(router, hub, latency=0.005 + 0.002 * i, bandwidth=GBPS)
            server.attach(router, latency=0.001)
        servers.append(server)
        daemon = AntiEntropyDaemon(server, interval=interval)
        daemons.append(daemon)

    client = GdpClient(net, "writer_client")
    client.attach(writer_router, latency=0.001)
    console = OwnerConsole(client, SigningKey.from_seed(b"a5-owner"))
    writer_key = SigningKey.from_seed(b"a5-writer")

    def scenario():
        for endpoint in servers + [client]:
            yield endpoint.advertise()
        metadata = console.design_capsule(writer_key.public)
        yield from console.place_capsule(
            metadata, [s.metadata for s in servers]
        )
        yield 0.5
        for daemon in daemons:
            daemon.start()
        writer = client.open_writer(metadata, writer_key)
        yield from writer.append(b"pre-partition")
        yield 1.0
        uplink.fail()
        for i in range(APPENDS_DURING_PARTITION):
            yield from writer.append(b"partitioned-%d" % i)
        yield 0.5
        uplink.recover()
        for router_node in (hub, writer_router):
            router_node.flush_fib()
        heal_time = net.sim.now
        target = 1 + APPENDS_DURING_PARTITION

        def converged():
            return all(
                s.hosted[metadata.name].capsule.last_seqno == target
                and not s.hosted[metadata.name].capsule.holes()
                for s in servers
            )

        while not converged():
            yield interval / 4
            if net.sim.now - heal_time > 120 * interval + 60:
                break
        for daemon in daemons:
            daemon.stop()
        return {
            "replicas": n_replicas,
            "interval": interval,
            "converged": converged(),
            "time_to_converge": net.sim.now - heal_time,
            "records_fetched": sum(d.records_fetched for d in daemons),
        }

    return net.sim.run_process(scenario())


def test_a5_antientropy_convergence(benchmark, report):
    grid = [(3, 1.0), (3, 4.0), (5, 1.0), (5, 4.0)]
    results = benchmark.pedantic(
        lambda: [run_convergence(n, t) for n, t in grid],
        rounds=1, iterations=1,
    )
    report.line(
        "Ablation A5 — anti-entropy convergence after a healed "
        f"partition ({APPENDS_DURING_PARTITION} records to repair)"
    )
    report.table(
        ["replicas", "sync period (s)", "converge (s)", "records gossiped"],
        [
            [r["replicas"], r["interval"],
             f"{r['time_to_converge']:.1f}", r["records_fetched"]]
            for r in results
        ],
    )
    assert all(r["converged"] for r in results)
    by_key = {(r["replicas"], r["interval"]): r for r in results}
    # Convergence scales with the sync period...
    assert (
        by_key[(3, 1.0)]["time_to_converge"]
        < by_key[(3, 4.0)]["time_to_converge"]
    )
    # ...and stays bounded by a few periods regardless of replica count.
    for (n, t), r in by_key.items():
        assert r["time_to_converge"] <= 8 * t + 2
