"""Ablation A6 (§VII): hierarchical resolution scalability.

"To ensure scalability, locality of access, and security of routing, we
use two principles: (a) a hierarchical structure for routing enabled by
routing-domains, and (b) independently verifiable routing state."

Two scalability measurements:

A6a — resolution across the hierarchy: a reader and a capsule at depth
*d* in two sibling branches; the request must climb to the common
ancestor and descend.  Cost (first-read latency, routers traversed,
GLookup queries) should grow linearly in *d* — and *warm* reads should
be depth-independent at the FIB.

A6b — the DHT global tier: lookup message count vs network size stays
logarithmic (the "highly distributed and scalable GLookupService").
"""

from __future__ import annotations

import math

from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.naming import GdpName
from repro.routing import GdpRouter, RoutingDomain
from repro.routing.dht import build_dht
from repro.server import DataCapsuleServer
from repro.sim import GBPS, SimNetwork


def run_depth(depth: int) -> dict:
    """Two branches of *depth* domains under one root; capsule at the
    bottom of branch A, reader at the bottom of branch B."""
    net = SimNetwork(seed=depth)
    clock = lambda: net.sim.now  # noqa: E731
    root = RoutingDomain("global", clock=clock)
    top = GdpRouter(net, "top", root)

    def build_branch(tag: str) -> GdpRouter:
        parent_domain, parent_router = root, top
        name = "global"
        for level in range(depth):
            name = f"{name}.{tag}{level}"
            domain = RoutingDomain(name, parent_domain)
            router = GdpRouter(net, f"{tag}{level}", domain)
            net.connect(router, parent_router, latency=0.005, bandwidth=GBPS)
            domain.attach_to_parent(router, parent_router)
            parent_domain, parent_router = domain, router
        return parent_router

    bottom_a = build_branch("a")
    bottom_b = build_branch("b")

    server = DataCapsuleServer(net, "server")
    server.attach(bottom_a, latency=0.001)
    writer_client = GdpClient(net, "writer")
    writer_client.attach(bottom_a, latency=0.001)
    reader = GdpClient(net, "reader")
    reader.attach(bottom_b, latency=0.001)
    console = OwnerConsole(writer_client, SigningKey.from_seed(b"a6-owner"))
    writer_key = SigningKey.from_seed(b"a6-writer")

    def scenario():
        for endpoint in (server, writer_client, reader):
            yield endpoint.advertise()
        metadata = console.design_capsule(writer_key.public)
        yield from console.place_capsule(metadata, [server.metadata])
        yield 0.5
        writer = writer_client.open_writer(metadata, writer_key)
        yield from writer.append(b"deep")
        queries_before = sum(
            d.glookup.stats_queries
            for d in _all_domains(root)
        )
        t0 = net.sim.now
        yield from reader.read(metadata.name, 1)
        cold = net.sim.now - t0
        queries_cold = sum(
            d.glookup.stats_queries for d in _all_domains(root)
        ) - queries_before
        t0 = net.sim.now
        yield from reader.read(metadata.name, 1)
        warm = net.sim.now - t0
        return {
            "depth": depth,
            "cold_ms": cold * 1000,
            "warm_ms": warm * 1000,
            "glookup_queries": queries_cold,
        }

    return net.sim.run_process(scenario())


def _all_domains(root: RoutingDomain):
    out = [root]
    stack = list(root.children.values())
    while stack:
        domain = stack.pop()
        out.append(domain)
        stack.extend(domain.children.values())
    return out


def test_a6a_hierarchy_depth(benchmark, report):
    depths = [1, 2, 4, 6]
    results = benchmark.pedantic(
        lambda: [run_depth(d) for d in depths], rounds=1, iterations=1
    )
    report.line(
        "Ablation A6a — cross-branch read vs hierarchy depth "
        "(capsule and reader in sibling branches of depth d)"
    )
    report.table(
        ["depth", "cold read (ms)", "warm read (ms)", "GLookup queries"],
        [
            [r["depth"], f"{r['cold_ms']:.1f}", f"{r['warm_ms']:.1f}",
             r["glookup_queries"]]
            for r in results
        ],
    )
    by_depth = {r["depth"]: r for r in results}
    # Cold cost grows with depth (the climb + descent)...
    assert by_depth[6]["cold_ms"] > by_depth[1]["cold_ms"]
    # ...roughly linearly, not worse.
    ratio = by_depth[6]["cold_ms"] / by_depth[1]["cold_ms"]
    assert ratio < 6 * 2.5
    # Warm reads ride the FIB: still latency-bound by the path, but with
    # no extra lookup work.
    for r in results:
        assert r["warm_ms"] <= r["cold_ms"] * 1.05


def test_a6b_dht_lookup_scaling(benchmark, report):
    sizes = [16, 64, 256]

    def sweep():
        rows = []
        for n in sizes:
            dht = build_dht(
                [GdpName.derive("a6.dht", i) for i in range(n)], k=8
            )
            key = GdpName.derive("a6.key", 1)
            dht.put(GdpName.derive("a6.dht", 0), key, "v")
            dht.messages = 0
            probes = 12
            for i in range(probes):
                dht.get(GdpName.derive("a6.dht", (i * 7) % n), key)
            rows.append(
                {"nodes": n, "avg_messages": dht.messages / probes}
            )
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.line(
        "Ablation A6b — DHT-backed global GLookup: lookup messages vs "
        "network size (k=8)"
    )
    report.table(
        ["nodes", "avg lookup messages"],
        [[r["nodes"], f"{r['avg_messages']:.1f}"] for r in results],
    )
    by_size = {r["nodes"]: r for r in results}
    # Sub-linear growth: 16x more nodes must not cost 16x more messages.
    growth = by_size[256]["avg_messages"] / by_size[16]["avg_messages"]
    assert growth < 6
    # And stays in the O(k log n) ballpark.
    assert by_size[256]["avg_messages"] < 8 * math.log2(256) * 2
