"""Benchmark harness plumbing.

Benchmarks measure *simulated* time on the deterministic network
simulator (the substitute for the paper's EC2/residential testbed), so
each experiment runs once inside ``benchmark.pedantic`` and reports its
paper-style table through the ``report`` fixture.  Tables are printed in
the terminal summary and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os

import pytest

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_TABLES: list[tuple[str, str]] = []


class Report:
    """Collects one experiment's paper-style output table."""

    def __init__(self, name: str):
        self.name = name
        self.lines: list[str] = []

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers: list[str], rows: list[list]) -> None:
        widths = [
            max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
            for i in range(len(headers))
        ]

        def fmt(cells):
            return "  ".join(
                str(cell).rjust(widths[i]) if i else str(cell).ljust(widths[i])
                for i, cell in enumerate(cells)
            )

        self.line(fmt(headers))
        self.line(fmt(["-" * w for w in widths]))
        for row in rows:
            self.line(fmt(row))


@pytest.fixture()
def report(request):
    """Per-test report; registered for terminal summary + results file."""
    rep = Report(request.node.name)
    yield rep
    if rep.lines:
        text = "\n".join(rep.lines)
        _TABLES.append((rep.name, text))
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        path = os.path.join(_RESULTS_DIR, rep.name + ".txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.section("experiment tables (paper reproduction)")
    for name, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {name} ==")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _TABLES.clear()
