"""Figure 6: GDP-router forwarding rate and throughput vs PDU size.

Paper setup (§VIII): one (unoptimized, Click-based) GDP-router on a
4-core EC2 c5.xlarge; 32 client and 32 server processes on four 16-core
c5.4xlarge instances, all attached to the single router; each client
blasts fixed-size PDUs at its server.  Reported: "the PDU processing
rate is 120k PDU/s even for very small sized PDUs" and "close to 1 Gbps
throughput as PDU size reaches close to 10k bytes".

Substitution: the router is our Python ``GdpRouter`` with the paper's two
capacity parameters made explicit — per-PDU service time (1/120k s) and
aggregate NIC egress (1 Gbps) — driven on the deterministic simulator.
Expected shape: a flat ~120k PDU/s plateau for small PDUs, bending into
a ~1 Gbps throughput ceiling as PDUs grow; absolute agreement is by
construction of the capacity parameters, the *experiment* checks that
the full forwarding path (advertisement, FIB, queueing) actually
sustains them.
"""

from __future__ import annotations

import pytest

from repro.client import GdpClient
from repro.routing.pdu import Pdu, T_DATA
from repro.sim import GBPS, single_router

PDU_SIZES = [64, 256, 1024, 4096, 10240, 16384]
PAIRS = 16          # sender/receiver pairs (paper: 32; scaled for wall time)
PDUS_PER_PAIR = 120


def run_forwarding_experiment(payload_size: int) -> dict:
    topo = single_router(seed=payload_size)
    router = topo.router("r0")
    router.egress_bandwidth = GBPS  # the paper router's ~1 Gbps NIC

    received = {"count": 0}
    senders, receivers = [], []
    for i in range(PAIRS):
        sender = GdpClient(topo.net, f"tx{i}", verify=False)
        receiver = GdpClient(topo.net, f"rx{i}", verify=False)
        # Fat, short attachment links: the router is the bottleneck.
        sender.attach(router, latency=0.0001, bandwidth=10 * GBPS)
        receiver.attach(router, latency=0.0001, bandwidth=10 * GBPS)

        def sink(pdu, _received=received):
            _received["count"] += 1
            return None  # no response traffic

        receiver.on_request = sink
        senders.append(sender)
        receivers.append(receiver)

    def scenario():
        for endpoint in senders + receivers:
            yield endpoint.advertise()
        start = topo.sim.now
        payload = b"\x00" * payload_size
        for sender, receiver in zip(senders, receivers):
            for _ in range(PDUS_PER_PAIR):
                sender.send_pdu(
                    Pdu(sender.name, receiver.name, T_DATA, payload)
                )
        # Drain: measure until the last PDU is *delivered* (the egress
        # NIC queue, not just the forwarding engine, must clear).
        while received["count"] < PAIRS * PDUS_PER_PAIR:
            yield 0.001
        elapsed = topo.sim.now - start
        delivered = received["count"]
        return {
            "pdu_size": payload_size,
            "elapsed": elapsed,
            "forwarded": delivered,
            "rate_pdus": delivered / elapsed,
            "throughput_gbps": delivered * (payload_size + 80) * 8
            / elapsed / 1e9,
        }

    return topo.sim.run_process(scenario())


@pytest.mark.parametrize("size", PDU_SIZES)
def test_fig6_forwarding_point(benchmark, size):
    result = benchmark.pedantic(
        run_forwarding_experiment, args=(size,), rounds=1, iterations=1
    )
    assert result["forwarded"] == PAIRS * PDUS_PER_PAIR
    benchmark.extra_info.update(result)


def test_fig6_full_curve(benchmark, report):
    """The complete Figure 6 sweep with shape assertions."""

    def sweep():
        return [run_forwarding_experiment(size) for size in PDU_SIZES]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report.line("Figure 6 — forwarding rate / throughput vs PDU size")
    report.line(
        f"(1 router, {PAIRS} sender/receiver pairs, "
        f"{PDUS_PER_PAIR} PDUs each; paper: 120k PDU/s small-PDU plateau, "
        "~1 Gbps at ~10 kB)"
    )
    report.table(
        ["pdu_size_B", "rate_kPDU/s", "throughput_Gbps"],
        [
            [r["pdu_size"], f"{r['rate_pdus'] / 1e3:.1f}",
             f"{r['throughput_gbps']:.3f}"]
            for r in results
        ],
    )

    by_size = {r["pdu_size"]: r for r in results}
    # Small-PDU plateau at the service rate (~120k PDU/s).
    assert by_size[64]["rate_pdus"] == pytest.approx(120_000, rel=0.15)
    assert by_size[256]["rate_pdus"] == pytest.approx(120_000, rel=0.15)
    # Large PDUs hit the ~1 Gbps NIC ceiling.
    assert by_size[10240]["throughput_gbps"] == pytest.approx(1.0, rel=0.15)
    assert by_size[16384]["throughput_gbps"] == pytest.approx(1.0, rel=0.15)
    # And the rate has fallen well off the plateau by then.
    assert by_size[16384]["rate_pdus"] < 15_000
    # Throughput is monotone non-decreasing in PDU size.
    throughputs = [r["throughput_gbps"] for r in results]
    assert all(b >= a * 0.99 for a, b in zip(throughputs, throughputs[1:]))
