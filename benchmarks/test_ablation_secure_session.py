"""Ablation A2 (§V "Secure Responses"): per-message signatures vs the
HMAC session fast path.

"As an optimization, a client and a DataCapsule-server dynamically
establish a [session] ... which they can use to create HMAC instead of
signatures and achieve a steady state byte overhead roughly similar to
TLS."  We measure both the CPU cost (authenticate+verify ops/s) and the
wire overhead (bytes added to a response) of the two modes, plus the
one-time handshake cost that buys the fast path.
"""

from __future__ import annotations

import time

from repro import encoding
from repro.crypto import Handshake, SigningKey
from repro.crypto.hmac_session import SessionKey, hkdf
from repro.delegation import AdCert, ServiceChain
from repro.naming import GdpName, make_capsule_metadata, make_server_metadata
from repro.server.secure import (
    mac_response,
    sign_response,
    verify_mac_response,
    verify_signed_response,
)

CLIENT = GdpName(b"\x42" * 32)
N_MESSAGES = 100


def build_world():
    owner = SigningKey.from_seed(b"a2-owner")
    writer = SigningKey.from_seed(b"a2-writer")
    server = SigningKey.from_seed(b"a2-server")
    capsule_md = make_capsule_metadata(owner, writer.public)
    server_md = make_server_metadata(server, server.public)
    adcert = AdCert.issue(owner, capsule_md.name, server_md.name)
    chain = ServiceChain(capsule_md, adcert, server_md)
    session_server = SessionKey(
        hkdf(b"a2", b"", b"s2c"), hkdf(b"a2", b"", b"c2s")
    )
    session_client = SessionKey(
        hkdf(b"a2", b"", b"c2s"), hkdf(b"a2", b"", b"s2c")
    )
    return capsule_md, server_md, server, chain, session_server, session_client


def measure() -> dict:
    capsule_md, server_md, server, chain, sess_srv, sess_cli = build_world()
    body = {"ok": True, "record": b"\x00" * 512, "seqno": 7}

    t0 = time.perf_counter()
    for i in range(N_MESSAGES):
        wrapped = sign_response(server, server_md, chain, CLIENT, i, body)
        verify_signed_response(
            wrapped, client=CLIENT, corr_id=i, capsule=capsule_md.name
        )
    sig_elapsed = time.perf_counter() - t0
    sig_bytes = len(encoding.encode(wrapped)) - len(encoding.encode(body))

    t0 = time.perf_counter()
    for i in range(N_MESSAGES):
        wrapped = mac_response(sess_srv, CLIENT, i, body)
        verify_mac_response(sess_cli, wrapped, client=CLIENT, corr_id=i)
    mac_elapsed = time.perf_counter() - t0
    mac_bytes = len(encoding.encode(wrapped)) - len(encoding.encode(body))

    # One-time handshake cost.
    client_key = SigningKey.from_seed(b"a2-client")
    t0 = time.perf_counter()
    hs_client = Handshake(client_key)
    hs_server = Handshake(server)
    offer_c, offer_s = hs_client.offer(), hs_server.offer()
    hs_client.finish(offer_s, server.public, initiator=True)
    hs_server.finish(offer_c, client_key.public, initiator=False)
    handshake_ms = (time.perf_counter() - t0) * 1000

    return {
        "sig_msgs_per_s": N_MESSAGES / sig_elapsed,
        "mac_msgs_per_s": N_MESSAGES / mac_elapsed,
        "speedup": sig_elapsed / mac_elapsed,
        "sig_overhead_bytes": sig_bytes,
        "mac_overhead_bytes": mac_bytes,
        "handshake_ms": handshake_ms,
        "amortize_after_msgs": handshake_ms
        / 1000
        / max(sig_elapsed / N_MESSAGES - mac_elapsed / N_MESSAGES, 1e-12),
    }


def test_a2_signature_vs_hmac(benchmark, report):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    report.line("Ablation A2 — per-response authentication (512 B body)")
    report.line(
        "(paper: one-time crypto at flow establishment, then HMAC with "
        "~TLS byte overhead)"
    )
    report.table(
        ["mode", "msgs/s", "wire overhead (B)"],
        [
            ["ECDSA signature + chain",
             f"{result['sig_msgs_per_s']:.0f}",
             result["sig_overhead_bytes"]],
            ["HMAC session",
             f"{result['mac_msgs_per_s']:.0f}",
             result["mac_overhead_bytes"]],
        ],
    )
    report.line(
        f"handshake: {result['handshake_ms']:.1f} ms once; "
        f"HMAC speedup {result['speedup']:.0f}x; handshake amortized "
        f"after ~{result['amortize_after_msgs']:.1f} messages"
    )
    # The claims that matter:
    assert result["speedup"] > 20            # HMAC is vastly cheaper CPU
    assert result["mac_overhead_bytes"] < 100   # ~TLS-like (32B MAC + framing)
    assert result["sig_overhead_bytes"] > 500   # signature + metadata + chain
    assert result["amortize_after_msgs"] < 5    # fast path pays off quickly
