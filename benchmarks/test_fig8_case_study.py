"""Figure 8: the robotics/ML case study — read/write times for a 28 MB
and a 115 MB model across GDP (cloud & edge), S3, and SSHFS.

Paper setup (§IX): client on a residential link (100/10 Mbps
download/upload), S3 bucket and GDP/SSHFS infrastructure in the same
EC2 region; then the same workload against on-premise edge resources;
five-run averages.  Reported shape: "the GDP provides performance
somewhere between that of SSHFS and S3 when using the cloud
infrastructure. As expected, the performance when using edge resources
is orders of magnitude better."

Substitution (DESIGN.md §2): the exact topology is rebuilt on the
simulator (same link numbers); the TensorFlow filesystem plugin is our
filesystem CAAPI storing the model as chunked records; S3/SSHFS are the
parameterized baseline models.  Model payloads are synthetic blobs of
the paper's two sizes.  We assert the shape, not absolute seconds.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    ObjectStoreClient,
    ObjectStoreServer,
    SshfsClient,
    SshfsServer,
)
from repro.caapi import CapsuleFileSystem
from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.server import DataCapsuleServer
from repro.sim import blob, residential_edge_cloud

RUNS = 5  # "averaged over 5 runs"
CHUNK = 4 * 1024 * 1024

# Scaled model sizes: the paper's 28 MB / 115 MB transferred at 10 Mbps
# take 22 s / 92 s *simulated* (cheap) but the crypto per chunk is real
# CPU; 1/4-scale keeps the benchmark minutes-scale while preserving every
# ratio (all paths are bandwidth/latency dominated, which scales
# linearly).  Set GDP_FIG8_FULL=1 in the environment for full sizes.
import os

_SCALE = 1 if os.environ.get("GDP_FIG8_FULL") else 4
MODEL_SMALL = 28 * 1024 * 1024 // _SCALE
MODEL_LARGE = 115 * 1024 * 1024 // _SCALE


def run_case_study(model_size: int, seed: int) -> dict:
    """One full Figure 8 column set for one model size; returns
    read/write wall-clock (simulated seconds) per system."""
    topo = residential_edge_cloud(seed=seed)
    net = topo.net

    gdp_cloud = DataCapsuleServer(net, "gdp_cloud")
    gdp_cloud.attach(topo.router("r_cloud"))
    gdp_edge = DataCapsuleServer(net, "gdp_edge")
    gdp_edge.attach(topo.router("r_home"))
    s3 = ObjectStoreServer(net, "s3")
    s3.attach(topo.router("r_cloud"))
    sshfs_cloud = SshfsServer(net, "sshfs_cloud")
    sshfs_cloud.attach(topo.router("r_cloud"))
    sshfs_edge = SshfsServer(net, "sshfs_edge")
    sshfs_edge.attach(topo.router("r_home"))

    client = GdpClient(net, "robot")
    client.attach(topo.router("r_home"))
    console = OwnerConsole(client, SigningKey.from_seed(b"fig8-owner"))
    model = blob(model_size, seed=seed)
    times: dict[str, float] = {}

    def timed(label, gen):
        t0 = net.sim.now
        result = yield from gen
        times[label] = net.sim.now - t0
        return result

    def scenario():
        for endpoint in (gdp_cloud, gdp_edge, s3, sshfs_cloud, sshfs_edge, client):
            yield endpoint.advertise()

        # GDP, cloud replica only.
        fs_cloud = CapsuleFileSystem(
            client, console, [gdp_cloud.metadata], chunk_size=CHUNK
        )
        yield from fs_cloud.format()
        yield from timed("gdp_cloud_write", fs_cloud.write_file("m.pb", model))
        data = yield from timed("gdp_cloud_read", fs_cloud.read_file("m.pb"))
        assert data == model

        # GDP, on-premise edge replica.
        fs_edge = CapsuleFileSystem(
            client, console, [gdp_edge.metadata], chunk_size=CHUNK
        )
        yield from fs_edge.format()
        yield from timed("gdp_edge_write", fs_edge.write_file("m.pb", model))
        data = yield from timed("gdp_edge_read", fs_edge.read_file("m.pb"))
        assert data == model

        # S3.
        store = ObjectStoreClient(client, s3.name)
        yield from timed("s3_write", store.put("m.pb", model))
        data = yield from timed("s3_read", store.get("m.pb"))
        assert data == model

        # SSHFS against the cloud host.
        fs = SshfsClient(client, sshfs_cloud.name)
        yield from timed("sshfs_cloud_write", fs.write_file("/m.pb", model))
        data = yield from timed("sshfs_cloud_read", fs.read_file("/m.pb"))
        assert data == model

        # SSHFS against the edge host (the paper runs SSHFS both ways).
        fs2 = SshfsClient(client, sshfs_edge.name)
        yield from timed("sshfs_edge_write", fs2.write_file("/m.pb", model))
        data = yield from timed("sshfs_edge_read", fs2.read_file("/m.pb"))
        assert data == model
        return times

    return net.sim.run_process(scenario())


def average_runs(model_size: int) -> dict:
    totals: dict[str, float] = {}
    for seed in range(RUNS):
        for key, value in run_case_study(model_size, seed).items():
            totals[key] = totals.get(key, 0.0) + value
    return {key: value / RUNS for key, value in totals.items()}


SYSTEMS = [
    ("S3 (cloud)", "s3"),
    ("SSHFS (cloud)", "sshfs_cloud"),
    ("GDP (cloud)", "gdp_cloud"),
    ("SSHFS (edge)", "sshfs_edge"),
    ("GDP (edge)", "gdp_edge"),
]


def check_shape(times: dict) -> None:
    # Edge is orders of magnitude better than any cloud option.
    assert times["gdp_edge_write"] < times["gdp_cloud_write"] / 5
    assert times["gdp_edge_read"] < times["gdp_cloud_read"] / 5
    assert times["gdp_edge_write"] < times["s3_write"] / 5
    # GDP cloud is comparable to the cloud baselines (within ~2x of S3).
    assert times["gdp_cloud_write"] < times["s3_write"] * 2
    assert times["gdp_cloud_read"] < times["s3_read"] * 2
    # All cloud writes are uplink-bound: none beats the 10 Mbps floor.
    floor = 0.8 * (times["s3_write"])
    assert times["gdp_cloud_write"] >= floor * 0.5


@pytest.mark.parametrize(
    "label,size",
    [("28MB", MODEL_SMALL), ("115MB", MODEL_LARGE)],
    ids=["model28MB", "model115MB"],
)
def test_fig8_model(benchmark, report, label, size):
    times = benchmark.pedantic(average_runs, args=(size,), rounds=1, iterations=1)
    check_shape(times)
    scale_note = "" if _SCALE == 1 else f" (payloads scaled 1/{_SCALE})"
    report.line(
        f"Figure 8 — {label} model read/write seconds, avg of {RUNS} runs"
        + scale_note
    )
    report.line("(paper: GDP cloud between SSHFS and S3; edge >> cloud)")
    report.table(
        ["system", "write_s", "read_s"],
        [
            [name, f"{times[key + '_write']:.2f}", f"{times[key + '_read']:.2f}"]
            for name, key in SYSTEMS
        ],
    )
    benchmark.extra_info.update({k: round(v, 3) for k, v in times.items()})
