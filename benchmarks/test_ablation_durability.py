"""Ablation A3 (§VI-B): durability (ack) policy vs append latency and
crash exposure.

"In the simplest case, the writer receives a single acknowledgment from
the closest DataCapsule-server ... such a mode results in a reduced
performance at the cost of greater durability" [for the multi-ack mode].

Two measurements on a 3-replica placement (one edge-local, two across
the WAN):

1. append latency per ack policy — ANY completes at edge RTT, QUORUM
   and ALL pay the WAN round trip;
2. the §VI-B hole window — appends under ANY followed by a fronting
   server crash lose the unpropagated suffix; ALL loses nothing.
"""

from __future__ import annotations

import statistics

from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.server import DataCapsuleServer
from repro.sim import GBPS, SimNetwork
from repro.routing import GdpRouter, RoutingDomain

N_APPENDS = 8


def build_world(seed: int = 0):
    net = SimNetwork(seed=seed)
    clock = lambda: net.sim.now  # noqa: E731
    root = RoutingDomain("global", clock=clock)
    edge = RoutingDomain("global.edge", root)
    r_root = GdpRouter(net, "r_root", root)
    r_far = GdpRouter(net, "r_far", root)
    r_edge = GdpRouter(net, "r_edge", edge)
    net.connect(r_edge, r_root, latency=0.030, bandwidth=GBPS)  # WAN
    net.connect(r_far, r_root, latency=0.020, bandwidth=GBPS)
    edge.attach_to_parent(r_edge, r_root)

    servers = [
        DataCapsuleServer(net, "s_edge"),
        DataCapsuleServer(net, "s_mid"),
        DataCapsuleServer(net, "s_far"),
    ]
    servers[0].attach(r_edge, latency=0.001)
    servers[1].attach(r_root, latency=0.001)
    servers[2].attach(r_far, latency=0.001)
    client = GdpClient(net, "writer_client")
    client.attach(r_edge, latency=0.001)
    owner = SigningKey.from_seed(b"a3-owner")
    writer_key = SigningKey.from_seed(b"a3-writer")
    console = OwnerConsole(client, owner)
    return net, servers, client, console, writer_key


def measure_latency() -> dict:
    results = {}
    for policy in ["any", "quorum", "all"]:
        net, servers, client, console, writer_key = build_world()

        def scenario():
            for endpoint in servers + [client]:
                yield endpoint.advertise()
            metadata = console.design_capsule(writer_key.public)
            yield from console.place_capsule(
                metadata, [s.metadata for s in servers]
            )
            yield 0.5
            writer = client.open_writer(metadata, writer_key)
            latencies = []
            for i in range(N_APPENDS):
                t0 = net.sim.now
                yield from writer.append(b"r%d" % i, acks=policy)
                latencies.append((net.sim.now - t0) * 1000)
            return statistics.mean(latencies)

        results[policy] = net.sim.run_process(scenario())
    return results


def measure_loss_window() -> dict:
    results = {}
    for policy in ["any", "all"]:
        net, servers, client, console, writer_key = build_world(seed=7)
        uplink = None
        for link in net.links:
            nodes = {link.a.node_id, link.b.node_id}
            if nodes == {"r_edge", "r_root"}:
                uplink = link
        assert uplink is not None

        def scenario():
            for endpoint in servers + [client]:
                yield endpoint.advertise()
            metadata = console.design_capsule(writer_key.public)
            yield from console.place_capsule(
                metadata, [s.metadata for s in servers]
            )
            yield 0.5
            writer = client.open_writer(metadata, writer_key)
            yield from writer.append(b"safe", acks=policy)
            yield 1.0
            uplink.fail()  # propagation beyond the edge now fails
            acknowledged = 1
            for i in range(4):
                try:
                    yield from writer.append(b"risky-%d" % i, acks=policy)
                    acknowledged += 1
                except Exception:
                    pass
            yield 0.5
            servers[0].crash()  # the only replica holding the suffix dies
            uplink.recover()
            survivor = servers[1].hosted[metadata.name].capsule
            lost = acknowledged - survivor.last_seqno
            return {"acked": acknowledged, "lost_acked": max(lost, 0)}

        results[policy] = net.sim.run_process(scenario())
    return results


def test_a3_ack_latency(benchmark, report):
    latency = benchmark.pedantic(measure_latency, rounds=1, iterations=1)
    report.line(
        f"Ablation A3a — append latency (ms, mean of {N_APPENDS}) vs ack "
        "policy; 3 replicas: edge-local + 2 across a 20-30 ms WAN"
    )
    report.table(
        ["policy", "append_ms"],
        [[p, f"{latency[p]:.1f}"] for p in ["any", "quorum", "all"]],
    )
    # ANY completes at edge-local RTT; ALL pays the farthest replica.
    assert latency["any"] < latency["quorum"] <= latency["all"] * 1.01
    assert latency["all"] > latency["any"] * 3


def test_a3_hole_window(benchmark, report):
    loss = benchmark.pedantic(measure_loss_window, rounds=1, iterations=1)
    report.line(
        "Ablation A3b — acknowledged records lost when the fronting "
        "replica crashes during a partition (the §VI-B hole window)"
    )
    report.table(
        ["policy", "acked", "acked_but_lost"],
        [[p, loss[p]["acked"], loss[p]["lost_acked"]] for p in ["any", "all"]],
    )
    assert loss["any"]["lost_acked"] > 0       # the fast path has a window
    assert loss["all"]["lost_acked"] == 0      # the durable path closes it
