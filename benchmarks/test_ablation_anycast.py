"""Ablation A4 (§VII, Table I "Locality"): anycast to the closest
replica.

"The GDP network natively supports locality and anycast to the closest
replica and enables clients to satisfy their performance requirements."
We place one capsule with and without a client-local replica in a
federated campus and measure read latency; with a local replica the
request never leaves the client's domain.
"""

from __future__ import annotations

import statistics

from repro.client import GdpClient, OwnerConsole
from repro.crypto import SigningKey
from repro.server import DataCapsuleServer
from repro.sim import federated_campus

N_READS = 6


def run_reads(local_replica: bool) -> dict:
    topo = federated_campus(n_domains=3, seed=3)
    net = topo.net
    # Servers: one in site0 (client-local candidate), one in site2.
    server_local = DataCapsuleServer(net, "srv_local")
    server_local.attach(topo.router("site0_r1"), latency=0.001)
    server_remote = DataCapsuleServer(net, "srv_remote")
    server_remote.attach(topo.router("site2_r1"), latency=0.001)
    client = GdpClient(net, "reader")
    client.attach(topo.router("site0_r0"), latency=0.001)
    writer_client = GdpClient(net, "writer")
    writer_client.attach(topo.router("site2_r0"), latency=0.001)

    owner = SigningKey.from_seed(b"a4-owner")
    writer_key = SigningKey.from_seed(b"a4-writer")
    console = OwnerConsole(writer_client, owner)
    uplink = topo.router("site0_r0").link_to(topo.router("bb0"))

    placement = (
        [server_local.metadata, server_remote.metadata]
        if local_replica
        else [server_remote.metadata]
    )

    def scenario():
        for endpoint in (server_local, server_remote, client, writer_client):
            yield endpoint.advertise()
        metadata = console.design_capsule(writer_key.public)
        yield from console.place_capsule(metadata, placement)
        yield 0.5
        writer = writer_client.open_writer(metadata, writer_key)
        for i in range(3):
            yield from writer.append(b"record-%d" % i)
        yield 1.0  # replication settles
        crossings_before = uplink.stats_sent
        latencies = []
        for i in range(N_READS):
            t0 = net.sim.now
            yield from client.read(metadata.name, (i % 3) + 1)
            latencies.append((net.sim.now - t0) * 1000)
        return {
            "mean_ms": statistics.mean(latencies),
            "first_ms": latencies[0],
            "warm_ms": statistics.mean(latencies[1:]),
            "uplink_crossings": uplink.stats_sent - crossings_before,
        }

    return net.sim.run_process(scenario())


def test_a4_anycast_locality(benchmark, report):
    def both():
        return run_reads(local_replica=True), run_reads(local_replica=False)

    with_local, without_local = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    report.line(
        f"Ablation A4 — read latency (ms over {N_READS} reads), client in "
        "site0; replica placement varies"
    )
    report.table(
        ["placement", "mean_ms", "warm_ms", "uplink PDUs"],
        [
            ["local + remote replica",
             f"{with_local['mean_ms']:.1f}",
             f"{with_local['warm_ms']:.1f}",
             with_local["uplink_crossings"]],
            ["remote replica only",
             f"{without_local['mean_ms']:.1f}",
             f"{without_local['warm_ms']:.1f}",
             without_local["uplink_crossings"]],
        ],
    )
    # Locality: the local replica cuts latency by > 2x...
    assert with_local["mean_ms"] < without_local["mean_ms"] / 2
    # ...and keeps reads entirely inside the client's domain.
    assert with_local["uplink_crossings"] == 0
    assert without_local["uplink_crossings"] > 0
