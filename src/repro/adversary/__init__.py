"""Adversarial fault injection exercising the paper's threat model."""

from repro.adversary.injection import (
    EquivocatingWriter,
    PathAttacker,
    StorageTamperer,
    forge_record,
)

__all__ = [
    "PathAttacker",
    "StorageTamperer",
    "EquivocatingWriter",
    "forge_record",
]
