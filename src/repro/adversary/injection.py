"""Adversarial fault injection — exercising the threat model (§IV-C).

"Any messages can be arbitrarily delayed, replayed at a later time,
tampered with during transit, or sent to the wrong destination.
Similarly, a DataCapsule-server can attempt to tamper with individual
records or the order of records when stored on disk."

Network-path attacks are declared as delivery middlewares (see
:mod:`repro.runtime.faults`); :class:`PathAttacker` composes the four
fault kinds over one shared seeded RNG and installs them on the
network's delivery pipeline.  Storage attacks mutate a server's hosted
state (:class:`StorageTamperer`); :class:`EquivocatingWriter` is a
*malicious writer* signing two histories.  Tests use these to show each
attack is *detected* (an integrity/security error at the verifier),
never silently absorbed.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.capsule.capsule import DataCapsule
from repro.capsule.heartbeat import Heartbeat
from repro.capsule.records import Record
from repro.crypto.keys import SigningKey
from repro.naming.names import GdpName
from repro.routing.pdu import Pdu
from repro.runtime.faults import (
    DelayFaults,
    DropFaults,
    ReplayFaults,
    TamperFaults,
)
from repro.server.dcserver import DataCapsuleServer
from repro.sim.net import SimNetwork

__all__ = [
    "PathAttacker",
    "StorageTamperer",
    "EquivocatingWriter",
    "forge_record",
]


class PathAttacker:
    """An on-path adversary manipulating PDUs in flight.

    Enable attacks by setting the rates/flags, then :meth:`install`.
    The attacker is a thin composition of the declarative fault
    middlewares in :mod:`repro.runtime.faults`, chained in the fixed
    order drop -> tamper -> replay -> delay over **one** shared seeded
    RNG, so a given seed reproduces the exact historical attack
    schedule.
    """

    def __init__(self, network: SimNetwork, *, seed: int = 1337):
        self.network = network
        self.rng = random.Random(seed)
        # The current match predicate is read through a level of
        # indirection so tests can swap self.match after construction.
        matcher = lambda pdu: self.match(pdu)  # noqa: E731
        common = {"rng": self.rng, "match": matcher}
        self._drop = DropFaults(network, **common)
        self._tamper = TamperFaults(network, **common)
        self._replay = ReplayFaults(network, **common)
        self._delay = DelayFaults(network, **common)
        self._faults = (self._drop, self._tamper, self._replay, self._delay)
        self.delay_seconds = 0.5
        self.match: Callable[[Pdu], bool] = lambda pdu: True
        self._installed = False

    # -- knobs proxied onto the underlying fault middlewares ----------------

    @property
    def drop_rate(self) -> float:
        """Probability a matching PDU is black-holed."""
        return self._drop.rate

    @drop_rate.setter
    def drop_rate(self, value: float) -> None:
        self._drop.rate = value

    @property
    def tamper_rate(self) -> float:
        """Probability a matching PDU is corrupted in flight."""
        return self._tamper.rate

    @tamper_rate.setter
    def tamper_rate(self, value: float) -> None:
        self._tamper.rate = value

    @property
    def replay_rate(self) -> float:
        """Probability a matching PDU is re-delivered later."""
        return self._replay.rate

    @replay_rate.setter
    def replay_rate(self, value: float) -> None:
        self._replay.rate = value

    @property
    def delay_rate(self) -> float:
        """Probability a matching PDU is delayed by ``delay_seconds``."""
        return self._delay.rate

    @delay_rate.setter
    def delay_rate(self, value: float) -> None:
        self._delay.rate = value

    @property
    def delay_seconds(self) -> float:
        """How far replayed/delayed PDUs are pushed into the future."""
        return self._delay.seconds

    @delay_seconds.setter
    def delay_seconds(self, value: float) -> None:
        self._replay.seconds = value
        self._delay.seconds = value

    @property
    def stats(self) -> dict:
        """Attack-hit counters, keyed by the historical short names."""
        return {
            "dropped": self._drop.count,
            "tampered": self._tamper.count,
            "replayed": self._replay.count,
            "delayed": self._delay.count,
        }

    def install(self) -> None:
        """Activate the fault middlewares on the network's delivery
        pipeline (in the fixed drop -> tamper -> replay -> delay
        order)."""
        if not self._installed:
            for fault in self._faults:
                fault.install()
            self._installed = True

    def uninstall(self) -> None:
        """Deactivate the fault middlewares."""
        if self._installed:
            for fault in self._faults:
                fault.uninstall()
            self._installed = False


class StorageTamperer:
    """A malicious DataCapsule-server mutating stored state."""

    def __init__(self, server: DataCapsuleServer):
        self.server = server

    def corrupt_record(self, capsule_name: GdpName, seqno: int) -> None:
        """Replace a stored record's payload (keeping its metadata) —
        the digest no longer matches, so reads fail verification."""
        hosted = self.server.hosted[capsule_name]
        capsule = hosted.capsule
        record = capsule.get(seqno)
        forged = Record(
            record.capsule,
            record.seqno,
            record.payload + b"!tampered!",
            record.pointers,
        )
        # Reach into the store the way a hostile operator would: swap
        # the bytes without updating any index.
        capsule._by_digest.pop(record.digest)
        capsule._by_digest[forged.digest] = forged
        bucket = capsule._by_seqno[seqno]
        bucket[bucket.index(record.digest)] = forged.digest

    def rollback(self, capsule_name: GdpName, keep: int) -> None:
        """Serve a stale prefix: drop every record/heartbeat after
        *keep* (a freshness attack)."""
        hosted = self.server.hosted[capsule_name]
        capsule = hosted.capsule
        for seqno in [s for s in capsule.seqnos() if s > keep]:
            for digest in capsule._by_seqno.pop(seqno):
                capsule._by_digest.pop(digest, None)
        capsule._heartbeats = {
            seqno: beats
            for seqno, beats in capsule._heartbeats.items()
            if seqno <= keep
        }
        capsule._latest_heartbeat = None
        for beats in capsule._heartbeats.values():
            for heartbeat in beats:
                if (
                    capsule._latest_heartbeat is None
                    or heartbeat.seqno > capsule._latest_heartbeat.seqno
                ):
                    capsule._latest_heartbeat = heartbeat


class EquivocatingWriter:
    """A malicious single writer signing two divergent histories."""

    def __init__(self, capsule: DataCapsule, writer_key: SigningKey):
        self.capsule = capsule
        self.key = writer_key

    def fork_at(
        self, base: Record, payload_a: bytes, payload_b: bytes
    ) -> tuple[tuple[Record, Heartbeat], tuple[Record, Heartbeat]]:
        """Two signed (record, heartbeat) pairs for the same seqno on
        top of *base* — cryptographic proof of equivocation."""
        from repro.crypto.hashing import HashPointer

        seqno = base.seqno + 1
        out = []
        for payload in (payload_a, payload_b):
            record = Record(
                self.capsule.name,
                seqno,
                payload,
                [HashPointer(base.seqno, base.digest)],
            )
            heartbeat = Heartbeat.create(
                self.key, self.capsule.name, seqno, record.digest, seqno
            )
            out.append((record, heartbeat))
        return out[0], out[1]


def forge_record(
    capsule_name: GdpName, seqno: int, payload: bytes
) -> Record:
    """A syntactically valid record with made-up pointers — what an
    adversary without the writer key can best produce."""
    from repro.crypto.hashing import HashPointer

    fake_digest = bytes(32)
    pointers = [HashPointer(max(seqno - 1, 0), fake_digest)] if seqno > 1 else [
        HashPointer(0, fake_digest)
    ]
    return Record(capsule_name, seqno, payload, pointers)
