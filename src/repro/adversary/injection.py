"""Adversarial fault injection — exercising the threat model (§IV-C).

"Any messages can be arbitrarily delayed, replayed at a later time,
tampered with during transit, or sent to the wrong destination.
Similarly, a DataCapsule-server can attempt to tamper with individual
records or the order of records when stored on disk."

Network-path attacks install as delivery hooks on the simulated network
(:class:`PathAttacker`); storage attacks mutate a server's hosted state
(:class:`StorageTamperer`); :class:`EquivocatingWriter` is a *malicious
writer* signing two histories.  Tests use these to show each attack is
*detected* (an integrity/security error at the verifier), never silently
absorbed.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.capsule.capsule import DataCapsule
from repro.capsule.heartbeat import Heartbeat
from repro.capsule.records import Record
from repro.crypto.keys import SigningKey
from repro.naming.names import GdpName
from repro.routing.pdu import Pdu
from repro.server.dcserver import DataCapsuleServer
from repro.sim.net import Link, Node, SimNetwork

__all__ = [
    "PathAttacker",
    "StorageTamperer",
    "EquivocatingWriter",
    "forge_record",
]


class PathAttacker:
    """An on-path adversary manipulating PDUs in flight.

    Enable attacks by setting the rates/flags, then :meth:`install`.
    All randomness draws from a private seeded RNG so attacks are
    reproducible.
    """

    def __init__(self, network: SimNetwork, *, seed: int = 1337):
        self.network = network
        self.rng = random.Random(seed)
        self.drop_rate = 0.0
        self.tamper_rate = 0.0
        self.replay_rate = 0.0
        self.delay_rate = 0.0
        self.delay_seconds = 0.5
        self.match: Callable[[Pdu], bool] = lambda pdu: True
        self.stats = {"dropped": 0, "tampered": 0, "replayed": 0, "delayed": 0}
        self._installed = False

    def install(self) -> None:
        """Activate the delivery hook on the network."""
        if not self._installed:
            self.network.add_delivery_hook(self._hook)
            self._installed = True

    def uninstall(self) -> None:
        """Deactivate the delivery hook."""
        if self._installed:
            self.network.remove_delivery_hook(self._hook)
            self._installed = False

    def _hook(
        self, link: Link, sender: Node, receiver: Node, message: Any, size: int
    ) -> bool | None:
        if not isinstance(message, Pdu) or not self.match(message):
            return None
        if self.drop_rate and self.rng.random() < self.drop_rate:
            self.stats["dropped"] += 1
            return False  # black-hole (§II "effectively creating a black-hole")
        if self.tamper_rate and self.rng.random() < self.tamper_rate:
            self._tamper(message)
            self.stats["tampered"] += 1
        if self.replay_rate and self.rng.random() < self.replay_rate:
            # Deliver an extra copy later (replay attack).
            copy = Pdu(
                message.src, message.dst, message.ptype,
                message.payload, corr_id=message.corr_id, ttl=message.ttl,
            )
            self.network.sim.schedule(
                self.delay_seconds,
                lambda: receiver.receive(copy, sender, link),
            )
            self.stats["replayed"] += 1
        if self.delay_rate and self.rng.random() < self.delay_rate:
            self.stats["delayed"] += 1
            self.network.sim.schedule(
                self.delay_seconds,
                lambda: receiver.receive(message, sender, link),
            )
            return False  # suppress the on-time delivery
        return None

    def _tamper(self, pdu: Pdu) -> None:
        """Flip bytes somewhere in the payload (recursively finds a
        bytes field to corrupt)."""

        def corrupt(value: Any) -> Any:
            if isinstance(value, bytes) and value:
                index = self.rng.randrange(len(value))
                flipped = bytes(
                    b ^ 0xFF if i == index else b for i, b in enumerate(value)
                )
                return flipped
            if isinstance(value, dict):
                for key in sorted(value):
                    new = corrupt(value[key])
                    if new is not value[key]:
                        value[key] = new
                        return value
            if isinstance(value, list):
                for i, item in enumerate(value):
                    new = corrupt(item)
                    if new is not item:
                        value[i] = new
                        return value
            return value

        pdu.payload = corrupt(pdu.payload)
        pdu._size = None


class StorageTamperer:
    """A malicious DataCapsule-server mutating stored state."""

    def __init__(self, server: DataCapsuleServer):
        self.server = server

    def corrupt_record(self, capsule_name: GdpName, seqno: int) -> None:
        """Replace a stored record's payload (keeping its metadata) —
        the digest no longer matches, so reads fail verification."""
        hosted = self.server.hosted[capsule_name]
        capsule = hosted.capsule
        record = capsule.get(seqno)
        forged = Record(
            record.capsule,
            record.seqno,
            record.payload + b"!tampered!",
            record.pointers,
        )
        # Reach into the store the way a hostile operator would: swap
        # the bytes without updating any index.
        capsule._by_digest.pop(record.digest)
        capsule._by_digest[forged.digest] = forged
        bucket = capsule._by_seqno[seqno]
        bucket[bucket.index(record.digest)] = forged.digest

    def rollback(self, capsule_name: GdpName, keep: int) -> None:
        """Serve a stale prefix: drop every record/heartbeat after
        *keep* (a freshness attack)."""
        hosted = self.server.hosted[capsule_name]
        capsule = hosted.capsule
        for seqno in [s for s in capsule.seqnos() if s > keep]:
            for digest in capsule._by_seqno.pop(seqno):
                capsule._by_digest.pop(digest, None)
        capsule._heartbeats = {
            seqno: beats
            for seqno, beats in capsule._heartbeats.items()
            if seqno <= keep
        }
        capsule._latest_heartbeat = None
        for beats in capsule._heartbeats.values():
            for heartbeat in beats:
                if (
                    capsule._latest_heartbeat is None
                    or heartbeat.seqno > capsule._latest_heartbeat.seqno
                ):
                    capsule._latest_heartbeat = heartbeat


class EquivocatingWriter:
    """A malicious single writer signing two divergent histories."""

    def __init__(self, capsule: DataCapsule, writer_key: SigningKey):
        self.capsule = capsule
        self.key = writer_key

    def fork_at(
        self, base: Record, payload_a: bytes, payload_b: bytes
    ) -> tuple[tuple[Record, Heartbeat], tuple[Record, Heartbeat]]:
        """Two signed (record, heartbeat) pairs for the same seqno on
        top of *base* — cryptographic proof of equivocation."""
        from repro.crypto.hashing import HashPointer

        seqno = base.seqno + 1
        out = []
        for payload in (payload_a, payload_b):
            record = Record(
                self.capsule.name,
                seqno,
                payload,
                [HashPointer(base.seqno, base.digest)],
            )
            heartbeat = Heartbeat.create(
                self.key, self.capsule.name, seqno, record.digest, seqno
            )
            out.append((record, heartbeat))
        return out[0], out[1]


def forge_record(
    capsule_name: GdpName, seqno: int, payload: bytes
) -> Record:
    """A syntactically valid record with made-up pointers — what an
    adversary without the writer key can best produce."""
    from repro.crypto.hashing import HashPointer

    fake_digest = bytes(32)
    pointers = [HashPointer(max(seqno - 1, 0), fake_digest)] if seqno > 1 else [
        HashPointer(0, fake_digest)
    ]
    return Record(capsule_name, seqno, payload, pointers)
