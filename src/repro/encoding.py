"""Canonical, deterministic serialization for signed GDP structures.

Every signed or hashed object in the system (capsule metadata, records,
heartbeats, delegation certificates, advertisements) is serialized with
this module before hashing/signing, so two independent implementations of
an object produce byte-identical preimages.

The format is a small, self-describing TLV (type-length-value) scheme:

===========  =====  =======================================================
type byte    tag    payload
===========  =====  =======================================================
``b"N"``     null   (empty)
``b"F"``     false  (empty)
``b"T"``     true   (empty)
``b"I"``     int    big-endian two's-complement, minimal length
``b"B"``     bytes  raw bytes
``b"S"``     str    UTF-8 bytes
``b"L"``     list   concatenation of encoded items
``b"D"``     dict   concatenation of encoded (key, value) pairs, keys
                    sorted by their *encoded* form (ties impossible since
                    encodings are injective)
===========  =====  =======================================================

Lengths are encoded as unsigned varints (LEB128).  The scheme is
canonical: for every supported value there is exactly one encoding, and
decoding rejects any non-minimal or trailing-garbage input.  Dict keys
must be strings (the only case the GDP structures need) to keep ordering
rules simple and unambiguous.
"""

from __future__ import annotations

import struct as _struct
from typing import Any

from repro.errors import EncodingError

__all__ = [
    "encode",
    "decode",
    "encode_uvarint",
    "decode_uvarint",
    "pack_float",
    "unpack_float",
]

_TAG_NULL = ord("N")
_TAG_FALSE = ord("F")
_TAG_TRUE = ord("T")
_TAG_INT = ord("I")
_TAG_BYTES = ord("B")
_TAG_STR = ord("S")
_TAG_LIST = ord("L")
_TAG_DICT = ord("D")


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128."""
    if value < 0:
        raise EncodingError(f"uvarint must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 varint; returns ``(value, next_offset)``.

    Rejects non-minimal encodings (a trailing 0x00 continuation byte)
    so every integer has exactly one encoding.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise EncodingError("truncated uvarint")
        byte = data[pos]
        pos += 1
        if shift and byte == 0x00:
            raise EncodingError("non-minimal uvarint encoding")
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise EncodingError("uvarint too large")


def _encode_int_payload(value: int) -> bytes:
    """Minimal big-endian two's-complement payload for an int."""
    if value == 0:
        return b""
    length = (value.bit_length() + 8) // 8  # +8 leaves room for sign bit
    payload = value.to_bytes(length, "big", signed=True)
    # Strip redundant leading sign-extension bytes to keep it minimal.
    while len(payload) > 1:
        if payload[0] == 0x00 and not payload[1] & 0x80:
            payload = payload[1:]
        elif payload[0] == 0xFF and payload[1] & 0x80:
            payload = payload[1:]
        else:
            break
    return payload


def _decode_int_payload(payload: bytes) -> int:
    if not payload:
        return 0
    value = int.from_bytes(payload, "big", signed=True)
    if _encode_int_payload(value) != payload:
        raise EncodingError("non-minimal int encoding")
    return value


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_TAG_NULL)
        out += encode_uvarint(0)
    elif value is True:
        out.append(_TAG_TRUE)
        out += encode_uvarint(0)
    elif value is False:
        out.append(_TAG_FALSE)
        out += encode_uvarint(0)
    elif isinstance(value, int):
        payload = _encode_int_payload(value)
        out.append(_TAG_INT)
        out += encode_uvarint(len(payload))
        out += payload
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_TAG_BYTES)
        out += encode_uvarint(len(raw))
        out += raw
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        out += encode_uvarint(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        body = bytearray()
        for item in value:
            _encode_into(item, body)
        out.append(_TAG_LIST)
        out += encode_uvarint(len(body))
        out += body
    elif isinstance(value, dict):
        pairs = []
        for key, val in value.items():
            if not isinstance(key, str):
                raise EncodingError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            key_enc = bytearray()
            _encode_into(key, key_enc)
            val_enc = bytearray()
            _encode_into(val, val_enc)
            pairs.append((bytes(key_enc), bytes(val_enc)))
        pairs.sort(key=lambda kv: kv[0])
        for i in range(1, len(pairs)):
            if pairs[i][0] == pairs[i - 1][0]:
                raise EncodingError("duplicate dict key")
        body = bytearray()
        for key_enc, val_enc in pairs:
            body += key_enc
            body += val_enc
        out.append(_TAG_DICT)
        out += encode_uvarint(len(body))
        out += body
    else:
        raise EncodingError(f"unsupported type: {type(value).__name__}")


def encode(value: Any) -> bytes:
    """Canonically encode *value*; raises :class:`EncodingError` on
    unsupported types or non-string dict keys."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def pack_float(value: float) -> bytes:
    """Pack a float as its exact IEEE-754 big-endian bits.

    The canonical TLV has no float tag (signed preimages stay
    integer-only), so timestamps that must round-trip *exactly* through
    wire forms — advertisement lease expiries crossing the DHT tier,
    where a lossy round-trip would break byte-identical simtest
    replays — travel as an 8-byte ``bytes`` value instead.
    """
    return _struct.pack(">d", value)


def unpack_float(raw: bytes) -> float:
    """Inverse of :func:`pack_float`; raises on malformed input."""
    if len(raw) != 8:
        raise EncodingError(
            f"packed float must be 8 bytes, got {len(raw)}"
        )
    return _struct.unpack(">d", raw)[0]


def _decode_at(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise EncodingError("truncated value")
    tag = data[offset]
    length, pos = decode_uvarint(data, offset + 1)
    end = pos + length
    if end > len(data):
        raise EncodingError("truncated payload")
    payload = data[pos:end]
    if tag == _TAG_NULL:
        if payload:
            raise EncodingError("null must be empty")
        return None, end
    if tag == _TAG_TRUE:
        if payload:
            raise EncodingError("true must be empty")
        return True, end
    if tag == _TAG_FALSE:
        if payload:
            raise EncodingError("false must be empty")
        return False, end
    if tag == _TAG_INT:
        return _decode_int_payload(payload), end
    if tag == _TAG_BYTES:
        return payload, end
    if tag == _TAG_STR:
        try:
            return payload.decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise EncodingError("invalid UTF-8 in string") from exc
    if tag == _TAG_LIST:
        items = []
        inner = 0
        while inner < length:
            item, nxt = _decode_at(payload, inner)
            items.append(item)
            inner = nxt
        return items, end
    if tag == _TAG_DICT:
        result: dict[str, Any] = {}
        inner = 0
        prev_key_enc: bytes | None = None
        while inner < length:
            key_start = inner
            key, inner = _decode_at(payload, inner)
            key_enc = payload[key_start:inner]
            if not isinstance(key, str):
                raise EncodingError("dict keys must be str")
            if prev_key_enc is not None and key_enc <= prev_key_enc:
                raise EncodingError("dict keys out of canonical order")
            prev_key_enc = key_enc
            value, inner = _decode_at(payload, inner)
            result[key] = value
        return result, end
    raise EncodingError(f"unknown tag byte {tag:#x}")


def decode(data: bytes) -> Any:
    """Decode a canonically encoded value; rejects trailing garbage and
    any non-canonical form."""
    value, end = _decode_at(bytes(data), 0)
    if end != len(data):
        raise EncodingError("trailing bytes after value")
    return value
