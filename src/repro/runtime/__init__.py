"""Unified node runtime shared by every GDP node role.

The paper's GDP is *one* substrate with many roles — DataCapsule-servers,
GDP-routers, GLookupServices, clients, gateways (§IV, §VII, §VIII).  This
package is the role-independent plumbing those nodes share:

``dispatch``
    A typed op-dispatch registry: handlers declare themselves with
    ``@op("append", capsule=bytes, ...)`` and inbound payloads are
    validated before the handler runs; unknown ops and handler failures
    become structured error envelopes instead of ad-hoc strings.

``middleware``
    Per-node inbound/outbound PDU pipelines and a network delivery
    pipeline.  Metrics, tracing, and fault injection are composable
    middlewares instead of monkey-patches.

``metrics``
    A :class:`MetricsRegistry` of uniform named counters/histograms,
    scoped per node (``router.forwarded``, ``server.appends``,
    ``net.bytes``) — one counter style for the whole system.

``trace``
    An optional deterministic trace-event stream (sim-time-stamped PDU
    spans) that benchmarks and the CLI can dump; two identically-seeded
    runs produce byte-identical streams.

``faults``
    Drop/delay/corrupt/replay delivery middlewares — the adversary and
    chaos tests declare these instead of wrapping internals.
"""

from repro.runtime.dispatch import (
    BoundOp,
    OpSpec,
    dispatch_op,
    error_body,
    find_handler,
    handles,
    invalid_payload,
    on_ptype,
    op,
    op_names,
    opt,
    unknown_op,
)
from repro.runtime.faults import (
    DelayFaults,
    DropFaults,
    ReplayFaults,
    TamperFaults,
)
from repro.runtime.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    NodeMetrics,
)
from repro.runtime.middleware import (
    DROP,
    Delay,
    DeliveryMiddleware,
    DeliveryPipeline,
    MetricsMiddleware,
    NodeMiddleware,
    NodePipeline,
)
from repro.runtime.trace import TraceMiddleware, TraceStream

__all__ = [
    # dispatch
    "op",
    "on_ptype",
    "handles",
    "opt",
    "find_handler",
    "dispatch_op",
    "op_names",
    "unknown_op",
    "invalid_payload",
    "error_body",
    "OpSpec",
    "BoundOp",
    # metrics
    "MetricsRegistry",
    "NodeMetrics",
    "Counter",
    "Histogram",
    # middleware
    "DROP",
    "Delay",
    "NodeMiddleware",
    "NodePipeline",
    "DeliveryMiddleware",
    "DeliveryPipeline",
    "MetricsMiddleware",
    # trace
    "TraceStream",
    "TraceMiddleware",
    # faults
    "DropFaults",
    "TamperFaults",
    "ReplayFaults",
    "DelayFaults",
]
