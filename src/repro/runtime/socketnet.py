"""SocketNetwork: the element substrate in socket (real-process) mode.

The protocol elements (endpoints, routers, servers) are written against
a small substrate surface — ``ctx`` (clock + scheduling), ``rng``,
``metrics``, ``node_pipeline()``, ``transport_for()`` — that
:class:`~repro.sim.net.SimNetwork` provides in simulation.  This class
provides the same surface over an asyncio event loop, so the *same*
classes run as real networked processes: time is the loop's monotonic
clock, transports speak TCP, and there are no links.

One :class:`SocketNetwork` per OS process (shared-nothing fleet model);
cross-process communication is TCP only.
"""

from __future__ import annotations

import random

from repro.runtime.context import AsyncioContext
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.middleware import NodeMiddleware, NodePipeline
from repro.runtime.transport import AsyncioTransport

__all__ = ["SocketNetwork"]


class SocketNetwork:
    """An asyncio-backed substrate with the SimNetwork element surface."""

    def __init__(
        self,
        ctx: AsyncioContext | None = None,
        *,
        seed: int = 0,
        metrics_enabled: bool = True,
    ):
        self.ctx = ctx if ctx is not None else AsyncioContext()
        self.rng = random.Random(seed)
        self.nodes: dict[str, object] = {}
        self.metrics = MetricsRegistry(enabled=metrics_enabled)
        self.delivery = None  # no link layer, no delivery pipeline
        self.tracer = None
        self._node_middlewares: list[NodeMiddleware] = []

    @property
    def sim(self) -> AsyncioContext:
        """Alias kept so element code written as ``self.sim.now`` /
        ``self.sim.future()`` runs unchanged in socket mode."""
        return self.ctx

    def _register(self, node) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node

    def node_pipeline(self) -> NodePipeline:
        """A fresh per-node pipeline (network-wide middlewares seeded)."""
        return NodePipeline(self._node_middlewares)

    def install_node_middleware(self, middleware: NodeMiddleware) -> NodeMiddleware:
        """Install *middleware* on every node pipeline, now and later."""
        self._node_middlewares.append(middleware)
        for node in self.nodes.values():
            pipeline = getattr(node, "pipeline", None)
            if pipeline is not None:
                pipeline.use(middleware)
        return middleware

    def transport_for(self, node, **kwargs) -> AsyncioTransport:
        """An :class:`AsyncioTransport` announcing *node*'s identity."""
        metadata = getattr(node, "metadata", None)
        return AsyncioTransport(
            self.ctx,
            label=node.node_id,
            name_raw=getattr(node, "name", None).raw
            if getattr(node, "name", None) is not None
            else b"",
            metadata_wire=metadata.to_wire() if metadata is not None else None,
            **kwargs,
        )
