"""Typed op dispatch: decorator-registered handlers + structured errors.

Every GDP node role serves request "ops" carried in PDU payloads
(``{"op": "append", ...}``).  Before this layer each role invented its
own convention — ``DCServer`` resolved ``getattr(self, f"_op_{op}")``,
the baselines chained ``if op == ...``, the router ``if``/``elif``-ed on
PDU types.  Here handlers declare themselves:

.. code-block:: python

    class MyServer(Endpoint):
        @op("read", capsule=bytes, seqno=int)
        def _op_read(self, pdu, payload): ...

and dispatch is uniform: the payload is validated against the declared
field types first, unknown ops and validation failures return structured
error envelopes (``ok=False`` plus an ``error_kind`` discriminator), and
:class:`~repro.errors.GdpError` raised by a handler becomes a
``handler_error`` envelope.  Handler tables are collected per class over
the MRO, so subclasses inherit and override handlers like ordinary
methods.

Registries are namespaced: request ops live in the default ``"op"``
space; PDU-type dispatch (routers, endpoints) uses the ``"ptype"``
space via :func:`on_ptype`; the CAAPI web gateway keys HTTP-shaped
routes in an ``"http"`` space.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import GdpError

__all__ = [
    "op",
    "on_ptype",
    "handles",
    "opt",
    "OpSpec",
    "BoundOp",
    "find_handler",
    "resolve_route",
    "op_names",
    "dispatch_op",
    "unknown_op",
    "invalid_payload",
    "error_body",
]

#: error_kind discriminators in structured error envelopes
KIND_UNKNOWN_OP = "unknown_op"
KIND_INVALID_PAYLOAD = "invalid_payload"
KIND_HANDLER_ERROR = "handler_error"


class _Optional:
    """Marker wrapping a type spec for an optional payload field."""

    __slots__ = ("type",)

    def __init__(self, type_spec):
        self.type = type_spec


def opt(type_spec) -> _Optional:
    """Mark a payload field as optional (validated only when present)."""
    return _Optional(type_spec)


class OpSpec:
    """Declaration attached to a handler by :func:`handles`."""

    __slots__ = ("space", "name", "fields", "meta")

    def __init__(self, space: str, name: str, fields: dict, meta: dict):
        self.space = space
        self.name = name
        self.fields = fields
        self.meta = meta

    def validate(self, payload: Any) -> str | None:
        """Check *payload* against the declared fields; returns an error
        message, or None when the payload is acceptable."""
        if not self.fields:
            return None
        if not isinstance(payload, dict):
            return "payload is not a mapping"
        for field, spec in self.fields.items():
            optional = isinstance(spec, _Optional)
            expected = spec.type if optional else spec
            if field not in payload:
                if optional:
                    continue
                return f"missing required field {field!r}"
            if expected is object:
                continue
            value = payload[field]
            if not isinstance(value, expected):
                want = (
                    "/".join(t.__name__ for t in expected)
                    if isinstance(expected, tuple)
                    else expected.__name__
                )
                return (
                    f"field {field!r} must be {want}, "
                    f"got {type(value).__name__}"
                )
        return None

    def __repr__(self) -> str:
        return f"OpSpec({self.space}:{self.name})"


def handles(
    space: str, name: str, *, meta: dict | None = None, **fields
) -> Callable:
    """Register the decorated method as the *space* handler for *name*.

    ``fields`` maps payload field names to required types (or tuples of
    types); wrap a spec in :func:`opt` for optional fields; use
    ``object`` for presence-only checks.  ``meta`` carries arbitrary
    per-route data (e.g. the gateway's path arity).
    """

    def decorate(fn: Callable) -> Callable:
        specs = list(getattr(fn, "__op_specs__", ()))
        specs.append(OpSpec(space, name, dict(fields), dict(meta or {})))
        fn.__op_specs__ = specs
        return fn

    return decorate


def op(name: str, **fields) -> Callable:
    """Register a request-op handler (the default ``"op"`` space)."""
    return handles("op", name, **fields)


def on_ptype(name: str) -> Callable:
    """Register a PDU-type handler (the ``"ptype"`` space)."""
    return handles("ptype", name)


class BoundOp:
    """A handler resolved against a live node instance."""

    __slots__ = ("fn", "spec")

    def __init__(self, fn: Callable, spec: OpSpec):
        self.fn = fn
        self.spec = spec

    def validate(self, payload: Any) -> dict | None:
        """Typed-payload check; returns an error envelope or None."""
        message = self.spec.validate(payload)
        if message is None:
            return None
        return invalid_payload(self.spec.name, message)

    def __call__(self, *args, **kwargs):
        return self.fn(*args, **kwargs)

    def __repr__(self) -> str:
        return f"BoundOp({self.spec.space}:{self.spec.name})"


#: per-class handler tables: {cls: {space: {name: (attr_name, OpSpec)}}}
_TABLES: dict[type, dict[str, dict[str, tuple[str, OpSpec]]]] = {}


def _table(cls: type) -> dict[str, dict[str, tuple[str, OpSpec]]]:
    table = _TABLES.get(cls)
    if table is None:
        table = {}
        # Base classes first so subclass declarations win.
        for klass in reversed(cls.__mro__):
            for attr_name, attr in vars(klass).items():
                for spec in getattr(attr, "__op_specs__", ()):
                    table.setdefault(spec.space, {})[spec.name] = (
                        attr_name,
                        spec,
                    )
        _TABLES[cls] = table
    return table


def find_handler(obj: Any, name: Any, space: str = "op") -> BoundOp | None:
    """Resolve the handler for *name* on *obj* (None when unregistered).

    Resolution goes through ``getattr`` so a subclass overriding a
    decorated method body (without re-decorating) is dispatched to its
    override.
    """
    entry = _table(type(obj)).get(space, {}).get(name)
    if entry is None:
        return None
    attr_name, spec = entry
    return BoundOp(getattr(obj, attr_name), spec)


def resolve_route(
    obj: Any, method: str, segments: "list[str]", space: str = "http"
) -> "tuple[BoundOp, list[int]] | None":
    """Resolve an HTTP-shaped route against the registry.

    Routes are keyed ``"<METHOD> <leaf>"`` in the given space and
    declare their expected path arity in route metadata (``meta``);
    trailing segments become integer arguments.  Returns ``(handler,
    extra_args)``, or None when no route matches (unknown leaf or wrong
    arity).  A non-integer trailing segment raises ``ValueError`` —
    route declarations only admit integer parameters, so the caller maps
    it to a bad-request response.

    This is the single source of route schemas: gateways do not keep a
    hand-rolled copy of the route table or its arities.
    """
    if not segments:
        return None
    bound = find_handler(obj, f"{method} {segments[0]}", space)
    if bound is None:
        return None
    if len(segments) != bound.spec.meta.get("arity", len(segments)):
        return None
    return bound, [int(p) for p in segments[1:]]


def op_names(obj_or_cls: Any, space: str = "op") -> list[str]:
    """The registered handler names for a node class, sorted."""
    cls = obj_or_cls if isinstance(obj_or_cls, type) else type(obj_or_cls)
    return sorted(_table(cls).get(space, {}))


# -- structured error envelopes -------------------------------------------


def unknown_op(op_name: Any) -> dict:
    """The envelope for an unregistered op."""
    return {
        "ok": False,
        "error": f"unknown op {op_name!r}",
        "error_kind": KIND_UNKNOWN_OP,
    }


def invalid_payload(op_name: Any, message: str) -> dict:
    """The envelope for a payload failing typed validation."""
    return {
        "ok": False,
        "error": f"invalid payload for op {op_name!r}: {message}",
        "error_kind": KIND_INVALID_PAYLOAD,
    }


def error_body(exc: BaseException) -> dict:
    """The envelope for a handler that raised a :class:`GdpError`."""
    return {
        "ok": False,
        "error": f"{type(exc).__name__}: {exc}",
        "error_kind": KIND_HANDLER_ERROR,
    }


def dispatch_op(obj: Any, pdu: Any, payload: Any, space: str = "op") -> Any:
    """One-stop dispatch: resolve, validate, run, wrap errors.

    Returns the handler's result (which may be a Future), or a
    structured error envelope for unknown ops, invalid payloads, and
    handlers raising :class:`GdpError`.  Non-GDP exceptions propagate —
    they are bugs, not protocol errors.
    """
    op_name = payload.get("op") if isinstance(payload, dict) else None
    bound = find_handler(obj, op_name, space)
    if bound is None:
        return unknown_op(op_name)
    invalid = bound.validate(payload)
    if invalid is not None:
        return invalid
    try:
        return bound(pdu, payload)
    except GdpError as exc:
        return error_body(exc)
