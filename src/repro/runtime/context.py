"""Runtime context: one scheduling/clock interface for sim and sockets.

Everything below the dispatch plane — RPC timeouts, lease refresh,
anti-entropy daemons, retry backoff — needs *time* and *deferred
execution*, but must not care where they come from.  A
:class:`RuntimeContext` provides exactly that contract:

- ``now`` — the current time in (float) seconds;
- ``schedule(delay, fn, *args)`` — run a callback later;
- :class:`Future` / :class:`Process` — the one-shot value and
  generator-coroutine primitives every client/daemon is written
  against.

Two implementations exist:

- :class:`~repro.sim.engine.Simulator` — the deterministic
  discrete-event engine (virtual time, seeded ordering);
- :class:`AsyncioContext` — a thin adapter over an asyncio event loop
  (monotonic wall clock, real sockets).

Because ``Future``/``Process`` only ever touch ``ctx.now`` and
``ctx.schedule``, the same generator code (``yield 0.5``, ``yield from
client.read(...)``) runs unchanged on either substrate.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.errors import TimeoutError_

__all__ = ["RuntimeContext", "AsyncioContext", "Future", "Process"]


class Future:
    """A one-shot value a process can wait on."""

    __slots__ = ("ctx", "_value", "_error", "_done", "_waiters")

    def __init__(self, ctx: "RuntimeContext"):
        self.ctx = ctx
        self._value: Any = None
        self._error: BaseException | None = None
        self._done = False
        self._waiters: list[Callable[["Future"], None]] = []

    @property
    def sim(self) -> "RuntimeContext":
        """Backwards-compatible alias for :attr:`ctx`."""
        return self.ctx

    @property
    def done(self) -> bool:
        """Whether the future has resolved or failed."""
        return self._done

    def result(self) -> Any:
        """The resolved value; raises the stored error if failed."""
        if not self._done:
            raise RuntimeError("future is not resolved yet")
        if self._error is not None:
            raise self._error
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Resolve with *value* (idempotent; later calls ignored)."""
        if self._done:
            return
        self._done = True
        self._value = value
        for waiter in self._waiters:
            self.ctx.schedule(0.0, waiter, self)
        self._waiters.clear()

    def fail(self, error: BaseException) -> None:
        """Fail with *error* (idempotent; later calls ignored)."""
        if self._done:
            return
        self._done = True
        self._error = error
        for waiter in self._waiters:
            self.ctx.schedule(0.0, waiter, self)
        self._waiters.clear()

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        """Invoke *fn* with this future once it settles."""
        if self._done:
            self.ctx.schedule(0.0, fn, self)
        else:
            self._waiters.append(fn)


class Process:
    """A generator coroutine driven by a runtime context.

    The generator may ``yield``:
    - ``float | int`` — sleep that many seconds;
    - :class:`Future` — resume (with its value, or its exception thrown
      in) when it resolves;
    - ``None`` — yield the scheduler for one tick.

    The process itself exposes a :class:`Future` (``.completion``)
    resolving with the generator's return value.
    """

    __slots__ = ("ctx", "generator", "completion", "name")

    def __init__(
        self, ctx: "RuntimeContext", generator: Generator, name: str = ""
    ):
        self.ctx = ctx
        self.generator = generator
        self.completion = Future(ctx)
        self.name = name or getattr(generator, "__name__", "process")
        ctx.schedule(0.0, self._step, None, None)

    @property
    def sim(self) -> "RuntimeContext":
        """Backwards-compatible alias for :attr:`ctx`."""
        return self.ctx

    def _step(self, send_value: Any, throw_error: BaseException | None) -> None:
        try:
            if throw_error is not None:
                yielded = self.generator.throw(throw_error)
            else:
                yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self.completion.resolve(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
            self.completion.fail(exc)
            return
        if yielded is None:
            self.ctx.schedule(0.0, self._step, None, None)
        elif isinstance(yielded, (int, float)):
            self.ctx.schedule(float(yielded), self._step, None, None)
        elif isinstance(yielded, Future):
            yielded.add_callback(self._on_future)
        else:
            self.ctx.schedule(
                0.0,
                self._step,
                None,
                TypeError(f"process yielded unsupported {yielded!r}"),
            )

    def _on_future(self, future: Future) -> None:
        try:
            value = future.result()
        except BaseException as exc:  # noqa: BLE001 — forwarded into process
            self._step(None, exc)
            return
        self._step(value, None)


class RuntimeContext:
    """The substrate contract: a clock plus deferred execution.

    Subclasses implement :attr:`now` and :meth:`schedule`; everything
    else (futures, processes, timeouts, gather) is derived.
    """

    @property
    def now(self) -> float:
        """Current time in seconds (virtual or monotonic wall clock)."""
        raise NotImplementedError

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` *delay* seconds from now."""
        raise NotImplementedError

    def future(self) -> Future:
        """Create a new unresolved :class:`Future`."""
        return Future(self)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a process coroutine; returns the Process (await its
        ``.completion``)."""
        return Process(self, generator, name)

    def timeout(self, future: Future, deadline: float, what: str = "") -> Future:
        """A future that resolves like *future* but fails with
        :class:`TimeoutError_` if *deadline* seconds pass first."""
        wrapped = self.future()

        def on_done(fut: Future) -> None:
            if wrapped.done:
                return
            try:
                wrapped.resolve(fut.result())
            except BaseException as exc:  # noqa: BLE001
                wrapped.fail(exc)

        def on_deadline() -> None:
            if not wrapped.done:
                wrapped.fail(
                    TimeoutError_(f"timed out after {deadline}s: {what}")
                )

        future.add_callback(on_done)
        self.schedule(deadline, on_deadline)
        return wrapped

    def gather(self, futures: Iterable[Future]) -> Future:
        """Future resolving with a list of all results (fails fast on the
        first failure)."""
        futures = list(futures)
        combined = self.future()
        if not futures:
            combined.resolve([])
            return combined
        remaining = {"count": len(futures)}
        results: list[Any] = [None] * len(futures)

        def make_callback(index: int) -> Callable[[Future], None]:
            def callback(fut: Future) -> None:
                if combined.done:
                    return
                try:
                    results[index] = fut.result()
                except BaseException as exc:  # noqa: BLE001
                    combined.fail(exc)
                    return
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    combined.resolve(results)

            return callback

        for i, fut in enumerate(futures):
            fut.add_callback(make_callback(i))
        return combined

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Spawn a process, drive the context until it completes, and
        return its result."""
        raise NotImplementedError


class AsyncioContext(RuntimeContext):
    """Runtime context over a real asyncio event loop.

    Time is the loop's monotonic clock; ``schedule`` maps to
    ``call_soon``/``call_later``.  The same :class:`Process` generators
    the simulator drives run here against real sockets and wall time.
    """

    def __init__(self, loop=None):
        import asyncio

        self._asyncio = asyncio
        self.loop = loop if loop is not None else asyncio.new_event_loop()

    @property
    def now(self) -> float:
        """The event loop's monotonic clock."""
        return self.loop.time()

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` on the loop after *delay* seconds.

        Negative delays clamp to "run now": against a wall clock,
        ``now`` moves between computing a deadline and scheduling it, so
        element code computing ``deadline - now`` legitimately lands a
        hair in the past (the simulator, whose clock only advances
        between callbacks, keeps its strict negative-delay error).
        """
        if delay <= 0:
            self.loop.call_soon(fn, *args)
        else:
            self.loop.call_later(delay, fn, *args)

    def as_asyncio_future(self, future: Future):
        """Bridge a runtime :class:`Future` into an awaitable
        ``asyncio.Future`` (for mixing with native coroutines)."""
        afut = self.loop.create_future()

        def on_done(fut: Future) -> None:
            if afut.done():
                return
            try:
                afut.set_result(fut.result())
            except BaseException as exc:  # noqa: BLE001
                afut.set_exception(exc)

        future.add_callback(on_done)
        return afut

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Spawn a process and run the loop until it completes (the
        blocking entry point, mirroring ``Simulator.run_process``)."""
        process = self.spawn(generator, name)
        return self.loop.run_until_complete(
            self.as_asyncio_future(process.completion)
        )
