"""Declarative fault injection: the §IV-C threat model as middleware.

"Any messages can be arbitrarily delayed, replayed at a later time,
tampered with during transit, or sent to the wrong destination."  Each
of those attacks is one :class:`~repro.runtime.middleware.DeliveryMiddleware`
here — chaos tests and the adversary package *declare* faults and
install them on the network's delivery pipeline instead of wrapping
simulator internals.

All four draw from a caller-supplied RNG; sharing one seeded RNG across
several fault middlewares reproduces an exact interleaved attack
schedule (this is how :class:`~repro.adversary.PathAttacker` preserves
its historical behavior).  Each middleware counts its hits on an
injectable counter so attack volume is observable through the metrics
plane.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.runtime.metrics import Counter
from repro.runtime.middleware import DROP, DeliveryMiddleware

__all__ = ["DropFaults", "TamperFaults", "ReplayFaults", "DelayFaults"]

_PDU_CLASS = None


def _is_pdu(message: Any) -> bool:
    # Imported lazily: repro.sim.net imports this package, and the
    # routing package imports repro.sim.net.
    global _PDU_CLASS
    if _PDU_CLASS is None:
        from repro.routing.pdu import Pdu

        _PDU_CLASS = Pdu
    return isinstance(message, _PDU_CLASS)


class _Fault(DeliveryMiddleware):
    """Shared plumbing: rate gate, match predicate, hit counter."""

    __slots__ = ("network", "rate", "rng", "match", "counter")

    counter_name = "faults.hits"

    def __init__(
        self,
        network,
        *,
        rate: float = 0.0,
        rng: random.Random | None = None,
        seed: int = 1337,
        match: Callable[[Any], bool] | None = None,
        counter: Counter | None = None,
    ):
        self.network = network
        self.rate = rate
        self.rng = rng if rng is not None else random.Random(seed)
        self.match = match
        self.counter = counter if counter is not None else Counter(
            self.counter_name
        )

    def _hit(self, message: Any) -> bool:
        """Whether this fault fires for *message* (draws the RNG only
        when the rate is armed and the message matches)."""
        if not self.rate:
            return False
        if not _is_pdu(message):
            return False
        if self.match is not None and not self.match(message):
            return False
        return self.rng.random() < self.rate

    @property
    def count(self) -> int:
        """How many messages this fault has hit."""
        return self.counter.value

    def install(self) -> "_Fault":
        """Append this fault to the network's delivery pipeline."""
        self.network.delivery.use(self)
        return self

    def uninstall(self) -> None:
        """Remove this fault from the delivery pipeline."""
        self.network.delivery.remove(self)

    def arm(self, rate: float) -> None:
        """Open a fault window: start firing at *rate*.

        Installed-but-disarmed faults draw nothing from the RNG, so a
        schedule of arm/disarm windows perturbs the random stream only
        while a window is open — which keeps seeded episodes replayable
        when the windows move (see :mod:`repro.simtest`).
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate

    def disarm(self) -> None:
        """Close the fault window (the middleware stays installed)."""
        self.rate = 0.0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rate={self.rate})"


class DropFaults(_Fault):
    """Black-hole a fraction of matching PDUs (§II: "effectively
    creating a black-hole")."""

    __slots__ = ()
    counter_name = "faults.dropped"

    def on_deliver(self, link, sender, receiver, message, size):
        if self._hit(message):
            self.counter.inc()
            return DROP
        return None


class TamperFaults(_Fault):
    """Corrupt bytes somewhere inside a fraction of matching PDUs."""

    __slots__ = ()
    counter_name = "faults.tampered"

    def on_deliver(self, link, sender, receiver, message, size):
        if self._hit(message):
            self._tamper(message)
            self.counter.inc()
        return None

    def _tamper(self, pdu) -> None:
        """Flip bytes somewhere in the payload (recursively finds a
        bytes field to corrupt)."""

        def corrupt(value: Any) -> Any:
            if isinstance(value, bytes) and value:
                index = self.rng.randrange(len(value))
                flipped = bytes(
                    b ^ 0xFF if i == index else b for i, b in enumerate(value)
                )
                return flipped
            if isinstance(value, dict):
                for key in sorted(value):
                    new = corrupt(value[key])
                    if new is not value[key]:
                        value[key] = new
                        return value
            if isinstance(value, list):
                for i, item in enumerate(value):
                    new = corrupt(item)
                    if new is not item:
                        value[i] = new
                        return value
            return value

        pdu.payload = corrupt(pdu.payload)
        pdu._payload_bytes = None


class ReplayFaults(_Fault):
    """Deliver an extra copy of a fraction of matching PDUs later."""

    __slots__ = ("seconds",)
    counter_name = "faults.replayed"

    def __init__(self, network, *, seconds: float = 0.5, **kwargs):
        super().__init__(network, **kwargs)
        self.seconds = seconds

    def on_deliver(self, link, sender, receiver, message, size):
        if self._hit(message):
            from repro.routing.pdu import Pdu

            copy = Pdu(
                message.src, message.dst, message.ptype,
                message.payload, corr_id=message.corr_id, ttl=message.ttl,
            )
            self.network.sim.schedule(
                self.seconds,
                lambda: receiver.receive(copy, sender, link),
            )
            self.counter.inc()
        return None


class DelayFaults(_Fault):
    """Suppress the on-time delivery of a fraction of matching PDUs and
    re-deliver them *seconds* later (arbitrary delay attack)."""

    __slots__ = ("seconds",)
    counter_name = "faults.delayed"

    def __init__(self, network, *, seconds: float = 0.5, **kwargs):
        super().__init__(network, **kwargs)
        self.seconds = seconds

    def on_deliver(self, link, sender, receiver, message, size):
        if self._hit(message):
            self.counter.inc()
            self.network.sim.schedule(
                self.seconds,
                lambda: receiver.receive(message, sender, link),
            )
            return DROP  # suppress the on-time delivery
        return None
