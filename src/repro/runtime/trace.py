"""The trace plane: a deterministic stream of sim-time-stamped events.

Benchmarks and the CLI can record every PDU crossing every node as a
canonical text line.  The stream is *replayable evidence*: because the
simulator is deterministic (seeded RNG, stable event ordering, RFC 6979
signatures), two identically-seeded runs must produce **byte-identical**
streams — a regression guard for the determinism that makes every
benchmark in this reproduction trustworthy.

Correlation ids are globally monotonic across a whole process, so raw
ids would differ between two runs; the stream normalizes each one to a
small per-stream span index at first sight, keeping request/response
pairing visible without breaking byte-identity.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.runtime.middleware import NodeMiddleware

__all__ = ["TraceStream", "TraceMiddleware"]


def _render(value: Any) -> str:
    """Canonical text form for one event field value."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, bytes):
        return value.hex()[:16]
    if isinstance(value, float):
        return f"{value:.9f}"
    return str(value)


class TraceStream:
    """An append-only, canonically formatted event stream."""

    __slots__ = ("clock", "events", "_seq", "_spans")

    def __init__(self, clock: Callable[[], float]):
        self.clock = clock
        self.events: list[tuple[float, int, str, str, tuple]] = []
        self._seq = 0
        self._spans: dict[int, int] = {}

    def emit(self, scope: str, event: str, **fields: Any) -> None:
        """Record one event at the current sim time."""
        self._seq += 1
        self.events.append(
            (self.clock(), self._seq, scope, event, tuple(sorted(fields.items())))
        )

    def span(self, corr_id: int) -> int:
        """The stream-local span index for a correlation id (assigned
        sequentially at first sight, so it is run-independent)."""
        span = self._spans.get(corr_id)
        if span is None:
            span = self._spans[corr_id] = len(self._spans) + 1
        return span

    def lines(self) -> list[str]:
        """The canonical text form, one line per event."""
        out = []
        for when, seq, scope, event, fields in self.events:
            parts = [f"t={when:.9f}", f"seq={seq}", f"node={scope}",
                     f"event={event}"]
            parts.extend(f"{key}={_render(value)}" for key, value in fields)
            out.append(" ".join(parts))
        return out

    def to_bytes(self) -> bytes:
        """The whole stream as bytes (for byte-identity comparison)."""
        return "\n".join(self.lines()).encode()

    def clear(self) -> None:
        """Drop all recorded events and span assignments."""
        self.events.clear()
        self._spans.clear()
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"TraceStream(events={len(self.events)})"


class TraceMiddleware(NodeMiddleware):
    """Emits a ``pdu_in``/``pdu_out`` span event per PDU per node."""

    __slots__ = ("stream",)

    def __init__(self, stream: TraceStream):
        self.stream = stream

    def inbound(self, node, pdu, sender):
        self.stream.emit(
            node.node_id,
            "pdu_in",
            ptype=pdu.ptype,
            src=pdu.src.human(),
            dst=pdu.dst.human(),
            span=self.stream.span(pdu.corr_id),
            size=pdu.size_bytes,
        )
        return None

    def outbound(self, node, pdu):
        self.stream.emit(
            node.node_id,
            "pdu_out",
            ptype=pdu.ptype,
            src=pdu.src.human(),
            dst=pdu.dst.human(),
            span=self.stream.span(pdu.corr_id),
            size=pdu.size_bytes,
        )
        return None
