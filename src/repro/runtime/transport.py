"""Transports: how PDUs move between an element and its peers.

The protocol elements (endpoints, routers) never touch links or sockets
directly; they hold a :class:`Transport` and opaque *peer* handles.  The
contract:

- ``send(peer, pdu)`` — ship one PDU toward *peer* (raises
  :class:`TransportError` when closed or unreachable,
  :class:`WireFormatError` when the PDU exceeds the frame limit);
- ``bind(on_pdu)`` — register the delivery callback
  ``on_pdu(pdu, peer)``; *peer* is identity-stable per connection, so
  protocol state keyed on it (router attachments, pending challenges)
  works the same over simulated links and TCP connections;
- ``close()`` — tear the transport down; further sends raise.

Counters (plain ints — they must never perturb simulation determinism):
``sent``, ``delivered``, ``backpressure`` (sends that queued behind a
busy line or a paused socket buffer), ``oversized`` (frames rejected by
the size limit).

Implementations:

- :class:`SimTransport` — wraps the :mod:`repro.sim.net` Link/Node
  machinery; peers are adjacent :class:`~repro.sim.net.Node` objects.
- :class:`AsyncioTransport` — speaks length-prefixed binary PDU frames
  over TCP via asyncio; peers are :class:`SocketChannel` connections
  (or in-process :class:`LocalChannel` pairs for co-located elements).
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.errors import TransportError, WireFormatError
from repro.routing.pdu import Pdu

__all__ = [
    "Transport",
    "SimTransport",
    "AsyncioTransport",
    "SocketChannel",
    "LocalChannel",
    "local_pair",
    "DEFAULT_MAX_FRAME",
    "FRAME_PDU",
    "FRAME_BANNER",
]

#: frame length prefix: u32 big-endian byte count of the body
_LEN_STRUCT = struct.Struct(">I")

#: body type tags (first body byte)
FRAME_PDU = 0x01
FRAME_BANNER = 0x02

#: default ceiling on one frame body (a 16 MiB PDU is a bug, not a load)
DEFAULT_MAX_FRAME = 16 * 1024 * 1024


class Transport:
    """Base transport: counters plus the send/deliver/close contract."""

    def __init__(self, *, max_frame: int = DEFAULT_MAX_FRAME):
        self.max_frame = max_frame
        self.closed = False
        self.on_pdu: Callable[[Pdu, Any], None] | None = None
        #: PDUs accepted for transmission
        self.sent = 0
        #: PDUs handed to the bound element
        self.delivered = 0
        #: sends that queued behind a busy line / paused write buffer
        self.backpressure = 0
        #: frames rejected by the size limit (either direction)
        self.oversized = 0

    def bind(self, on_pdu: Callable[[Pdu, Any], None]) -> "Transport":
        """Register the delivery callback ``on_pdu(pdu, peer)``."""
        self.on_pdu = on_pdu
        return self

    def send(self, peer: Any, pdu: Pdu) -> None:
        """Ship *pdu* toward *peer*."""
        raise NotImplementedError

    def deliver(self, pdu: Pdu, peer: Any) -> None:
        """Hand an arrived PDU to the bound element."""
        self.delivered += 1
        if self.on_pdu is not None:
            self.on_pdu(pdu, peer)

    def close(self) -> None:
        """Tear down; subsequent sends raise :class:`TransportError`."""
        self.closed = True

    def _check_send(self, pdu: Pdu) -> None:
        if self.closed:
            raise TransportError("transport is closed")
        if pdu.size_bytes > self.max_frame:
            self.oversized += 1
            raise WireFormatError(
                f"PDU of {pdu.size_bytes} bytes exceeds frame limit "
                f"{self.max_frame}"
            )


class SimTransport(Transport):
    """Transport over the simulated link layer.

    Peers are adjacent :class:`~repro.sim.net.Node` objects; ``send``
    charges the duplex link exactly as ``Node.send`` always did, so the
    refactor is invisible to simulation timing, RNG draws, and traces.
    """

    def __init__(self, node, *, max_frame: int = DEFAULT_MAX_FRAME):
        super().__init__(max_frame=max_frame)
        self.node = node

    def send(self, peer: Any, pdu: Pdu) -> None:
        """Transmit over the direct link to *peer*."""
        self._check_send(pdu)
        link = self.node.link_to(peer)
        if link is None:
            raise TransportError(
                f"{self.node.node_id} has no link to "
                f"{getattr(peer, 'node_id', peer)!r}"
            )
        if link._busy_until[(self.node, peer)] > self.node.sim.now:
            self.backpressure += 1
        self.sent += 1
        link.transmit(self.node, pdu, pdu.size_bytes)


class LocalChannel:
    """One end of an in-process duplex pipe between two transports.

    Used in socket mode to attach co-located elements (a process's
    server to its router) without a loopback TCP hop.  Sending on one
    end schedules delivery into the other end's transport on the shared
    runtime context, so reentrancy behaves like a real transport.
    """

    __slots__ = ("ctx", "node_id", "closed", "_peer_end", "_peer_transport")

    def __init__(self, ctx, node_id: str):
        self.ctx = ctx
        self.node_id = node_id
        self.closed = False
        self._peer_end: "LocalChannel | None" = None
        self._peer_transport: Transport | None = None

    def send_pdu(self, pdu: Pdu) -> None:
        """Deliver *pdu* into the other end's transport (async tick)."""
        if self.closed or self._peer_end is None or self._peer_end.closed:
            raise TransportError(f"local channel {self.node_id} is closed")
        transport = self._peer_transport
        other = self._peer_end
        self.ctx.schedule(0.0, transport.deliver, pdu, other)

    def close(self) -> None:
        """Close both ends of the pipe."""
        self.closed = True
        if self._peer_end is not None:
            self._peer_end.closed = True

    def __repr__(self) -> str:
        return f"LocalChannel({self.node_id})"


def local_pair(
    ctx,
    transport_a: Transport,
    transport_b: Transport,
    label_a: str = "local_a",
    label_b: str = "local_b",
) -> tuple[LocalChannel, LocalChannel]:
    """Create an in-process duplex pipe between two transports.

    Returns ``(a_end, b_end)``: element A holds ``a_end`` as its handle
    to B (sending on it delivers into ``transport_b``, which sees the
    sender as ``b_end``), and vice versa.
    """
    a_end = LocalChannel(ctx, label_a)
    b_end = LocalChannel(ctx, label_b)
    a_end._peer_end = b_end
    a_end._peer_transport = transport_b
    b_end._peer_end = a_end
    b_end._peer_transport = transport_a
    return a_end, b_end


class SocketChannel:
    """One TCP connection carrying length-prefixed binary frames.

    Frame layout: ``u32 length`` (big-endian byte count of the body)
    then the body; the first body byte is the type tag (:data:`FRAME_PDU`
    or :data:`FRAME_BANNER`).  A banner is exchanged automatically on
    connect, carrying the element's name and metadata so the receiving
    side can label the channel before any PDU flows.
    """

    def __init__(self, transport: "AsyncioTransport", label: str):
        self.transport = transport
        self.node_id = label
        self.closed = False
        #: remote element's raw GDP name + wire metadata (from its banner)
        self.remote_name_raw: bytes | None = None
        self.remote_metadata: Any = None
        self._proto = None  # asyncio.Transport, set on connection_made
        self._buffer = bytearray()
        self._paused = False
        self._banner_seen = False

    # -- outbound ----------------------------------------------------------

    def send_pdu(self, pdu: Pdu) -> None:
        """Frame and write one PDU (never blocks; the write buffer and
        the backpressure counter absorb bursts)."""
        if self.closed or self._proto is None:
            raise TransportError(f"channel {self.node_id} is closed")
        body = pdu.encode_wire()
        if self._paused or self.transport._write_buffer_full(self._proto):
            self.transport.backpressure += 1
        self._proto.write(
            _LEN_STRUCT.pack(len(body) + 1) + bytes([FRAME_PDU]) + body
        )

    def _send_banner(self) -> None:
        from repro import encoding

        banner = encoding.encode(self.transport.banner_payload())
        self._proto.write(
            _LEN_STRUCT.pack(len(banner) + 1) + bytes([FRAME_BANNER]) + banner
        )

    # -- inbound (driven by the protocol adapter) --------------------------

    def _feed(self, data: bytes) -> None:
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LEN_STRUCT.size:
                return
            (length,) = _LEN_STRUCT.unpack_from(self._buffer)
            if length > self.transport.max_frame + 1:
                self.transport.oversized += 1
                self.abort()
                return
            if len(self._buffer) < _LEN_STRUCT.size + length:
                return
            body = bytes(
                self._buffer[_LEN_STRUCT.size:_LEN_STRUCT.size + length]
            )
            del self._buffer[:_LEN_STRUCT.size + length]
            self._handle_frame(body)
            if self.closed:
                return

    def _handle_frame(self, body: bytes) -> None:
        if not body:
            self.transport._frame_errors += 1
            self.abort()
            return
        tag, content = body[0], body[1:]
        if tag == FRAME_BANNER:
            self._handle_banner(content)
        elif tag == FRAME_PDU:
            try:
                pdu = Pdu.decode_wire(content)
            except WireFormatError:
                self.transport._frame_errors += 1
                self.abort()
                return
            self.transport.deliver(pdu, self)
        else:
            self.transport._frame_errors += 1
            self.abort()

    def _handle_banner(self, content: bytes) -> None:
        from repro import encoding

        try:
            banner = encoding.decode(content)
            name_raw = banner["name"]
        except Exception:
            self.transport._frame_errors += 1
            self.abort()
            return
        self.remote_name_raw = name_raw
        self.remote_metadata = banner.get("metadata")
        label = banner.get("label")
        if label:
            self.node_id = f"chan:{label}"
        self._banner_seen = True
        self.transport._channel_ready(self)

    # -- lifecycle ---------------------------------------------------------

    def abort(self) -> None:
        """Hard-close the connection (protocol violation)."""
        self.closed = True
        if self._proto is not None:
            self._proto.close()

    def close(self) -> None:
        """Close the connection once buffered writes flush."""
        self.closed = True
        if self._proto is not None:
            self._proto.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"SocketChannel({self.node_id}, {state})"


class AsyncioTransport(Transport):
    """Length-prefixed binary PDU frames over TCP, on an asyncio loop.

    One transport per element; it may listen (server side), dial
    (client side), or both.  Peers handed to ``send`` are
    :class:`SocketChannel` connections or :class:`LocalChannel` ends.
    """

    #: pause_writing/high-water default (bytes) — small enough that the
    #: backpressure counter is observable under load
    WRITE_HIGH_WATER = 256 * 1024

    def __init__(
        self,
        ctx,
        *,
        label: str = "",
        name_raw: bytes = b"",
        metadata_wire: Any = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        write_high_water: int | None = None,
    ):
        super().__init__(max_frame=max_frame)
        self.ctx = ctx
        self.label = label
        self.name_raw = name_raw
        self.metadata_wire = metadata_wire
        self.write_high_water = (
            write_high_water
            if write_high_water is not None
            else self.WRITE_HIGH_WATER
        )
        self.channels: list[SocketChannel] = []
        #: called with each channel whose banner arrived (fleet wiring)
        self.on_channel: Callable[[SocketChannel], None] | None = None
        self._server = None
        self._frame_errors = 0

    # -- wiring ------------------------------------------------------------

    def banner_payload(self) -> dict:
        """The banner body announcing this element to a new peer."""
        payload: dict = {"name": self.name_raw, "label": self.label}
        if self.metadata_wire is not None:
            payload["metadata"] = self.metadata_wire
        return payload

    def _make_protocol(self):
        import asyncio

        channel = SocketChannel(self, f"chan:{self.label}:pending")
        transport_self = self

        class _Protocol(asyncio.Protocol):
            def connection_made(self, proto_transport):
                proto_transport.set_write_buffer_limits(
                    high=transport_self.write_high_water
                )
                channel._proto = proto_transport
                transport_self.channels.append(channel)
                channel._send_banner()

            def data_received(self, data):
                channel._feed(data)

            def pause_writing(self):
                channel._paused = True

            def resume_writing(self):
                channel._paused = False

            def connection_lost(self, exc):
                channel.closed = True
                if channel in transport_self.channels:
                    transport_self.channels.remove(channel)

        return channel, _Protocol

    def listen(self, host: str = "127.0.0.1", port: int = 0):
        """Start accepting connections; returns ``(server, port)``
        (coroutine — await on the owning loop)."""

        async def _listen():
            def factory():
                _, protocol_cls = self._make_protocol()
                return protocol_cls()

            self._server = await self.ctx.loop.create_server(
                factory, host, port
            )
            bound_port = self._server.sockets[0].getsockname()[1]
            return self._server, bound_port

        return _listen()

    def dial(self, host: str, port: int):
        """Connect to a listening transport; returns the ready channel
        (coroutine — resolves once the remote banner arrived)."""

        async def _dial():
            import asyncio

            channel, protocol_cls = self._make_protocol()
            ready = self.ctx.loop.create_future()
            previous_hook = self.on_channel

            def on_ready(chan):
                if chan is channel and not ready.done():
                    ready.set_result(chan)
                elif previous_hook is not None:
                    previous_hook(chan)

            self.on_channel = on_ready
            try:
                await self.ctx.loop.create_connection(
                    protocol_cls, host, port
                )
                await asyncio.wait_for(ready, timeout=30.0)
            finally:
                self.on_channel = previous_hook
            return channel

        return _dial()

    def _channel_ready(self, channel: SocketChannel) -> None:
        if self.on_channel is not None:
            self.on_channel(channel)

    def _write_buffer_full(self, proto_transport) -> bool:
        try:
            return (
                proto_transport.get_write_buffer_size()
                >= self.write_high_water
            )
        except Exception:
            return False

    # -- the transport contract --------------------------------------------

    def send(self, peer: Any, pdu: Pdu) -> None:
        """Frame *pdu* and write it to the peer channel."""
        self._check_send(pdu)
        self.sent += 1
        peer.send_pdu(pdu)

    def close(self) -> None:
        """Stop listening and close every channel."""
        super().close()
        if self._server is not None:
            self._server.close()
            self._server = None
        for channel in list(self.channels):
            channel.close()
        self.channels.clear()
