"""The metrics plane: uniform named counters/histograms per node.

Before this layer existed, every role counted its own way — ``Router``
kept loose ``stats_forwarded`` attributes, ``DCServer`` a ``self.stats``
dict, links a third style.  A :class:`MetricsRegistry` replaces all of
them: instruments are named ``<subsystem>.<event>`` (``router.forwarded``,
``server.appends``, ``net.bytes``) and scoped by node, so a benchmark or
the ``repro stats`` CLI can snapshot the whole network uniformly.

Instruments are plain objects with an ``inc``/``observe`` hot path (no
locks — the simulator is single-threaded and deterministic).  A registry
constructed with ``enabled=False`` hands out shared no-op instruments,
so metrics can be compiled out of a hot loop without touching call
sites.
"""

from __future__ import annotations

__all__ = ["Counter", "Histogram", "NodeMetrics", "MetricsRegistry", "NULL"]


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (default 1)."""
        self.value += n

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A named value distribution (count / total / min / max)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.reset()

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def reset(self) -> None:
        """Forget all observations."""
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    @property
    def mean(self) -> float:
        """The mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """Snapshot form: count/total/mean/min/max."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class _NullInstrument:
    """Shared no-op stand-in when a registry is disabled."""

    __slots__ = ()
    name = "<disabled>"
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass

    def summary(self) -> dict:
        return {"count": 0, "total": 0.0, "mean": 0.0, "min": None, "max": None}


NULL = _NullInstrument()


class NodeMetrics:
    """One node's scoped view into a :class:`MetricsRegistry`.

    ``metrics.counter("router.forwarded")`` creates-or-returns the
    counter registered under ``(scope, name)``.
    """

    __slots__ = ("registry", "scope")

    def __init__(self, registry: "MetricsRegistry", scope: str):
        self.registry = registry
        self.scope = scope

    def counter(self, name: str) -> Counter:
        """The scoped counter *name* (created on first use)."""
        return self.registry.counter(self.scope, name)

    def histogram(self, name: str) -> Histogram:
        """The scoped histogram *name* (created on first use)."""
        return self.registry.histogram(self.scope, name)

    def snapshot(self) -> dict:
        """This scope's slice of the registry snapshot."""
        return self.registry.snapshot().get(self.scope, {})

    def __repr__(self) -> str:
        return f"NodeMetrics({self.scope!r})"


class MetricsRegistry:
    """All instruments for one simulated world, keyed (scope, name)."""

    __slots__ = ("enabled", "_counters", "_histograms", "_views")

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[tuple[str, str], Counter] = {}
        self._histograms: dict[tuple[str, str], Histogram] = {}
        self._views: dict[str, NodeMetrics] = {}

    def node(self, scope: str) -> NodeMetrics:
        """The scoped view for *scope* (typically a node id)."""
        view = self._views.get(scope)
        if view is None:
            view = self._views[scope] = NodeMetrics(self, scope)
        return view

    def counter(self, scope: str, name: str) -> Counter:
        """The counter registered under ``(scope, name)``."""
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        key = (scope, name)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(name)
        return counter

    def histogram(self, scope: str, name: str) -> Histogram:
        """The histogram registered under ``(scope, name)``."""
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        key = (scope, name)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(name)
        return histogram

    def snapshot(self) -> dict:
        """``{scope: {name: value}}``, deterministically sorted.

        Counters snapshot to their integer value, histograms to their
        summary dict.
        """
        out: dict[str, dict] = {}
        for (scope, name), counter in sorted(self._counters.items()):
            out.setdefault(scope, {})[name] = counter.value
        for (scope, name), histogram in sorted(self._histograms.items()):
            out.setdefault(scope, {})[name] = histogram.summary()
        return {scope: out[scope] for scope in sorted(out)}

    def reset(self) -> None:
        """Zero every registered instrument (registrations survive)."""
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(enabled={self.enabled}, "
            f"instruments={len(self)})"
        )
