"""Middleware pipelines: every PDU flows through composable stages.

Two interception surfaces exist in the simulated GDP:

**Node pipelines** (:class:`NodePipeline`) — each endpoint/router owns
one; every inbound and outbound PDU passes through it.  Middlewares see
``(node, pdu, ...)`` and may pass (``None``), replace the PDU (return a
new one), or swallow it (return :data:`DROP`).  Metrics and tracing
install here.

**The delivery pipeline** (:class:`DeliveryPipeline`) — one per
:class:`~repro.sim.net.SimNetwork`, run by every link at transmit time.
This is where the paper's §IV-C threat model lives: on-path adversaries
drop, delay, corrupt, and replay messages as declared middlewares (see
:mod:`repro.runtime.faults`) instead of wrapping simulator internals.
A delivery middleware may additionally return :class:`Delay` to push
the arrival time back.

Both pipelines run middlewares in installation order, which keeps runs
deterministic; an empty pipeline is falsy so hot paths can skip it with
one cheap check.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "DROP",
    "Delay",
    "NodeMiddleware",
    "NodePipeline",
    "DeliveryMiddleware",
    "DeliveryPipeline",
    "MetricsMiddleware",
]


class _Drop:
    """Sentinel verdict: swallow the message."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<DROP>"


DROP = _Drop()


class Delay:
    """Delivery verdict: push the arrival back by *seconds*."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError("delay must be >= 0")
        self.seconds = seconds

    def __repr__(self) -> str:
        return f"Delay({self.seconds}s)"


class NodeMiddleware:
    """Base class for per-node PDU middlewares (all hooks optional).

    Hooks return ``None`` to pass the PDU on unchanged, :data:`DROP` to
    swallow it, or a replacement PDU.
    """

    __slots__ = ()

    def inbound(self, node, pdu, sender):
        """An arriving PDU, before the node processes it."""
        return None

    def outbound(self, node, pdu):
        """A departing PDU, before it hits the wire."""
        return None


class NodePipeline:
    """An ordered chain of :class:`NodeMiddleware`."""

    __slots__ = ("_middlewares",)

    def __init__(self, middlewares=()):
        self._middlewares: list[NodeMiddleware] = list(middlewares)

    def use(self, middleware: NodeMiddleware) -> NodeMiddleware:
        """Append *middleware* (returns it, for chaining)."""
        self._middlewares.append(middleware)
        return middleware

    def remove(self, middleware: NodeMiddleware) -> None:
        """Remove a previously installed middleware."""
        self._middlewares.remove(middleware)

    def run_inbound(self, node, pdu, sender):
        """Run the inbound chain; returns the (possibly replaced) PDU,
        or None when a middleware dropped it."""
        for middleware in self._middlewares:
            verdict = middleware.inbound(node, pdu, sender)
            if verdict is None:
                continue
            if verdict is DROP:
                return None
            pdu = verdict
        return pdu

    def run_outbound(self, node, pdu):
        """Run the outbound chain; same verdict semantics."""
        for middleware in self._middlewares:
            verdict = middleware.outbound(node, pdu)
            if verdict is None:
                continue
            if verdict is DROP:
                return None
            pdu = verdict
        return pdu

    def __bool__(self) -> bool:
        return bool(self._middlewares)

    def __len__(self) -> int:
        return len(self._middlewares)

    def __iter__(self):
        return iter(self._middlewares)

    def __repr__(self) -> str:
        return f"NodePipeline({[type(m).__name__ for m in self._middlewares]})"


class DeliveryMiddleware:
    """Base class for link-delivery middlewares.

    ``on_deliver`` verdicts: ``None``/``True`` pass, ``False`` or
    :data:`DROP` drop (``False`` kept for legacy delivery hooks),
    :class:`Delay` adds arrival delay, anything else replaces the
    message.
    """

    __slots__ = ()

    def on_deliver(self, link, sender, receiver, message: Any, size: int):
        """One message crossing *link*; see class docstring for verdicts."""
        return None


class _HookMiddleware(DeliveryMiddleware):
    """Adapter wrapping a legacy delivery-hook callable."""

    __slots__ = ("hook",)

    def __init__(self, hook):
        self.hook = hook

    def on_deliver(self, link, sender, receiver, message, size):
        verdict = self.hook(link, sender, receiver, message, size)
        return DROP if verdict is False else None


class DeliveryPipeline:
    """An ordered chain of :class:`DeliveryMiddleware` on one network."""

    __slots__ = ("_middlewares", "_hook_adapters")

    def __init__(self):
        self._middlewares: list[DeliveryMiddleware] = []
        self._hook_adapters: dict[Any, _HookMiddleware] = {}

    def use(self, middleware: DeliveryMiddleware) -> DeliveryMiddleware:
        """Append *middleware* (returns it, for chaining)."""
        self._middlewares.append(middleware)
        return middleware

    def remove(self, middleware: DeliveryMiddleware) -> None:
        """Remove a previously installed middleware."""
        self._middlewares.remove(middleware)

    def use_hook(self, hook) -> None:
        """Install a legacy ``(link, sender, receiver, message, size) ->
        bool | None`` delivery hook as a middleware."""
        adapter = _HookMiddleware(hook)
        self._hook_adapters[hook] = adapter
        self.use(adapter)

    def remove_hook(self, hook) -> None:
        """Remove a hook installed with :meth:`use_hook`."""
        self.remove(self._hook_adapters.pop(hook))

    def run(self, link, sender, receiver, message: Any, size: int):
        """Run the chain; returns ``(message, extra_delay)`` or None
        when the message was dropped."""
        extra_delay = 0.0
        for middleware in self._middlewares:
            verdict = middleware.on_deliver(link, sender, receiver, message, size)
            if verdict is None or verdict is True:
                continue
            if verdict is False or verdict is DROP:
                return None
            if isinstance(verdict, Delay):
                extra_delay += verdict.seconds
                continue
            message = verdict
        return message, extra_delay

    def __bool__(self) -> bool:
        return bool(self._middlewares)

    def __len__(self) -> int:
        return len(self._middlewares)

    def __repr__(self) -> str:
        return (
            f"DeliveryPipeline({[type(m).__name__ for m in self._middlewares]})"
        )


class MetricsMiddleware(NodeMiddleware):
    """Counts PDUs and bytes through a node's pipeline.

    Installs the uniform per-node instruments ``node.pdus_in``,
    ``node.pdus_out``, ``node.bytes_in``, ``node.bytes_out`` into the
    network's :class:`~repro.runtime.metrics.MetricsRegistry`.
    """

    __slots__ = ("registry",)

    def __init__(self, registry):
        self.registry = registry

    def inbound(self, node, pdu, sender):
        metrics = self.registry.node(node.node_id)
        metrics.counter("node.pdus_in").inc()
        metrics.counter("node.bytes_in").inc(pdu.size_bytes)
        return None

    def outbound(self, node, pdu):
        metrics = self.registry.node(node.node_id)
        metrics.counter("node.pdus_out").inc()
        metrics.counter("node.bytes_out").inc(pdu.size_bytes)
        return None
