"""repro — reproduction of *Global Data Plane: A Federated Vision for
Secure Data in Edge Computing* (Mor et al., ICDCS 2019).

The package implements the paper's two contributions and every substrate
they rest on:

- **DataCapsules** (:mod:`repro.capsule`): single-writer, append-only
  authenticated data structures with configurable hash-pointers, signed
  heartbeats, and verifiable read proofs.
- **Global Data Plane** (:mod:`repro.routing`, :mod:`repro.server`,
  :mod:`repro.client`): a federated flat-namespace network of GDP-routers,
  DataCapsule-servers, hierarchical GLookupServices, secure
  advertisements, and cryptographic delegations (AdCerts / RtCerts).

Supporting substrates: a from-scratch crypto stack
(:mod:`repro.crypto`), a discrete-event network simulator
(:mod:`repro.sim`), richer CAAPI interfaces (:mod:`repro.caapi`),
baseline systems for the paper's case study (:mod:`repro.baselines`),
and adversarial fault injection (:mod:`repro.adversary`).

Quickstart (see also ``examples/quickstart.py``)::

    from repro import (
        SigningKey, make_capsule_metadata, DataCapsule, CapsuleWriter,
    )

    owner = SigningKey.generate()
    writer_key = SigningKey.generate()
    metadata = make_capsule_metadata(owner, writer_key.public,
                                     pointer_strategy="skiplist")
    capsule = DataCapsule(metadata)
    writer = CapsuleWriter(capsule, writer_key)
    record, heartbeat = writer.append(b"hello, federated world")
"""

__version__ = "1.0.0"

from repro.capsule import (
    CapsuleWriter,
    DataCapsule,
    Heartbeat,
    PositionProof,
    QuasiWriter,
    RangeProof,
    Record,
    VerifyingReader,
    build_position_proof,
    build_range_proof,
)
from repro.client import ClientWriter, GdpClient, OwnerConsole
from repro.crypto import SigningKey, VerifyingKey, generate_keypair
from repro.delegation import AdCert, RtCert, ServiceChain
from repro.naming import (
    GdpName,
    Metadata,
    make_capsule_metadata,
    make_client_metadata,
    make_server_metadata,
)
from repro.routing import GdpRouter, RoutingDomain
from repro.server import DataCapsuleServer
from repro.sim import SimNetwork

__all__ = [
    "__version__",
    # crypto
    "SigningKey",
    "VerifyingKey",
    "generate_keypair",
    # naming
    "GdpName",
    "Metadata",
    "make_capsule_metadata",
    "make_server_metadata",
    "make_client_metadata",
    # capsule
    "DataCapsule",
    "Record",
    "Heartbeat",
    "CapsuleWriter",
    "QuasiWriter",
    "VerifyingReader",
    "PositionProof",
    "RangeProof",
    "build_position_proof",
    "build_range_proof",
    # delegation
    "AdCert",
    "RtCert",
    "ServiceChain",
    # network
    "SimNetwork",
    "GdpRouter",
    "RoutingDomain",
    "DataCapsuleServer",
    "GdpClient",
    "ClientWriter",
    "OwnerConsole",
]
