"""Crash-point torture harness for the segmented storage engine.

The engine's durability claims only mean something if the store is
actually killed at every boundary where a real process can die.  This
module turns :data:`~repro.server.segmented.CRASH_POINTS` into an
executable sweep:

1. :func:`build_history` mints a real signed history once (records +
   heartbeats through :class:`~repro.capsule.CapsuleWriter`).
2. :func:`count_crash_sites` dry-runs the schedule with a counting hook
   to learn how many times each crash site is reached.
3. :func:`run_crash_case` replays the schedule with a hook armed to
   kill the store at the N-th hit of one site, reopens a *fresh* store
   over the surviving files, and checks the recovery invariants:

   - **No acked loss** — every record whose append returned is present
     after reopen.
   - **No phantoms** — every recovered record was minted by the writer
     (a torn frame can only destroy data, never invent it).
   - **Chain re-verifies** — ``verify_history`` passes from the newest
     heartbeat whose record survived.
   - **Truncation logged once** — the torn tail produces exactly one
     ``tail_truncated`` event; a second reopen produces none (recovery
     converges).
   - **Persisted sync index is honest** — ``sync_leaves`` of the
     reopened store cross-checks clean against the replayed capsule.

The torture tests (``tests/torture/``) sweep every (site, hit) pair;
the hypothesis property tests (``tests/property/``) drive the same
checker over generated append/seal/compact schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capsule import CapsuleWriter, DataCapsule, Heartbeat, Record
from repro.crypto.keys import SigningKey
from repro.errors import GdpError
from repro.naming.metadata import make_capsule_metadata
from repro.server.segmented import SegmentedStore, SimulatedCrash

__all__ = [
    "CrashHook",
    "SiteCounter",
    "TortureHistory",
    "TortureResult",
    "build_history",
    "run_schedule",
    "count_crash_sites",
    "run_crash_case",
    "verify_recovery",
]


class CrashHook:
    """Kill the store at the *hit*-th arrival at *site*."""

    def __init__(self, site: str, hit: int = 1):
        self.site = site
        self.hit = hit
        self.seen = 0

    def __call__(self, site: str) -> None:
        if site == self.site:
            self.seen += 1
            if self.seen == self.hit:
                raise SimulatedCrash(f"{self.site}#{self.hit}")


class SiteCounter:
    """Count crash-site arrivals without ever crashing (the dry run)."""

    def __init__(self):
        self.counts: dict[str, int] = {}

    def __call__(self, site: str) -> None:
        self.counts[site] = self.counts.get(site, 0) + 1


@dataclass
class TortureHistory:
    """A pre-minted signed history, reusable across many crash cases
    (minting signs every heartbeat, so it is the expensive part)."""

    capsule: DataCapsule
    steps: list[tuple[dict, dict]]  # (record_wire, heartbeat_wire)
    record_digests: list[bytes]
    checkpoint_every: int

    def __len__(self) -> int:
        return len(self.steps)


def build_history(
    n_records: int,
    *,
    seed: bytes = b"torture",
    strategy: str = "checkpoint:8",
    payload_bytes: int = 24,
) -> TortureHistory:
    """Mint *n_records* signed (record, heartbeat) wire pairs."""
    owner = SigningKey.from_seed(b"torture-owner:" + seed)
    writer_key = SigningKey.from_seed(b"torture-writer:" + seed)
    metadata = make_capsule_metadata(
        owner,
        writer_key.public,
        pointer_strategy=strategy,
        extra={"torture_seed": seed},
    )
    capsule = DataCapsule(metadata)
    writer = CapsuleWriter(capsule, writer_key)
    steps = []
    digests = []
    for i in range(n_records):
        record, heartbeat = writer.append(
            (b"torture-%06d-" % i).ljust(payload_bytes, b"x")
        )
        steps.append((record.to_wire(), heartbeat.to_wire()))
        digests.append(record.digest)
    checkpoint_every = 0
    if strategy.startswith("checkpoint:"):
        checkpoint_every = int(strategy.split(":", 1)[1])
    return TortureHistory(capsule, steps, digests, checkpoint_every)


@dataclass
class ScheduleConfig:
    """Knobs for how hard the schedule works the engine."""

    segment_bytes: int = 700  # tiny: force many seals
    hot_segments: int = 1
    compact_every: int = 0  # explicit compact() every N appends (0: off)
    fsync: bool = True
    sync_index: bool = True


@dataclass
class TortureResult:
    site: str
    hit: int
    crashed: bool
    acked: int
    recovered: int
    truncations: int
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _make_store(
    root: str, tier, config: ScheduleConfig, hook=None
) -> SegmentedStore:
    return SegmentedStore(
        root,
        fsync=config.fsync,
        segment_bytes=config.segment_bytes,
        hot_segments=config.hot_segments,
        tier=tier,
        sync_index=config.sync_index,
        crash_hook=hook,
    )


def run_schedule(
    root: str,
    tier,
    history: TortureHistory,
    config: ScheduleConfig,
    hook=None,
) -> tuple[int, bool]:
    """Drive the store through the full schedule; returns
    ``(acked_records, crashed)``.  A record counts as *acked* only once
    both its frame and its heartbeat's frame were appended without the
    simulated crash firing — mirroring the server, which acknowledges
    after persist returns."""
    name = history.capsule.name
    store = _make_store(root, tier, config, hook)
    acked = 0
    crashed = False
    try:
        store.store_metadata(name, history.capsule.metadata.to_wire())
        for i, (record_wire, heartbeat_wire) in enumerate(history.steps):
            seqno = record_wire["seqno"]
            store.append_record(name, record_wire)
            store.append_heartbeat(name, heartbeat_wire)
            acked = i + 1
            if (
                history.checkpoint_every
                and seqno % history.checkpoint_every == 0
            ):
                store.note_checkpoint(name, seqno)
            if config.compact_every and (i + 1) % config.compact_every == 0:
                store.compact(name)
        store.sync()
        store.close()
    except SimulatedCrash:
        crashed = True
    return acked, crashed


def count_crash_sites(
    root: str, tier, history: TortureHistory, config: ScheduleConfig
) -> dict[str, int]:
    """Dry-run the schedule; how often is each crash site reached?"""
    counter = SiteCounter()
    acked, crashed = run_schedule(root, tier, history, config, counter)
    assert not crashed and acked == len(history)
    return counter.counts


def verify_recovery(
    root: str,
    tier,
    history: TortureHistory,
    config: ScheduleConfig,
    acked: int,
    crashed: bool,
) -> TortureResult:
    """Reopen the store cold and check every recovery invariant."""
    violations: list[str] = []
    name = history.capsule.name
    store = _make_store(root, tier, config)
    recovered_digests: set[bytes] = set()
    replica = DataCapsule(history.capsule.metadata, verify_metadata=False)
    for tag, wire in store.load_entries(name):
        try:
            if tag == "r":
                record = Record.from_wire(name, wire)
                replica.insert(record, enforce_strategy=False)
                recovered_digests.add(record.digest)
            elif tag == "h":
                replica.add_heartbeat(Heartbeat.from_wire(wire))
        except GdpError as exc:
            violations.append(f"recovered frame failed validation: {exc}")
    minted = set(history.record_digests)
    for i in range(acked):
        if history.record_digests[i] not in recovered_digests:
            violations.append(
                f"ACKED RECORD LOST: seqno {i + 1} "
                f"(acked={acked}, recovered={len(recovered_digests)})"
            )
    phantoms = recovered_digests - minted
    if phantoms:
        violations.append(f"{len(phantoms)} phantom records recovered")
    truncations = sum(
        1 for e in store.recovery_log if e["event"] == "tail_truncated"
    )
    if truncations > 1:
        violations.append(f"tail truncation logged {truncations} times")
    # The chain must re-verify from the newest heartbeat whose record
    # survived (later heartbeats may have died with the tail).
    anchor = None
    for seqno in sorted(replica.seqnos(), reverse=True):
        for heartbeat in replica.heartbeats_at(seqno):
            if heartbeat.digest in recovered_digests:
                anchor = heartbeat
                break
        if anchor is not None:
            break
    if anchor is not None:
        try:
            replica.verify_history(anchor)
        except GdpError as exc:
            violations.append(f"hash chain failed to re-verify: {exc}")
    elif acked > 0:
        violations.append("no usable heartbeat anchor survived")
    # Persisted sync index must agree with the replayed records.
    leaves = store.sync_leaves(name)
    for seqno, leaf in leaves.items():
        if replica.sync_leaf(seqno) != leaf:
            violations.append(f"persisted sync leaf diverges at {seqno}")
            break
    store.close()
    # Recovery must converge: a second reopen sees a clean tail and the
    # same record set.
    again = _make_store(root, tier, config)
    digests_again = set()
    for tag, wire in again.load_entries(name):
        if tag == "r":
            try:
                digests_again.add(Record.from_wire(name, wire).digest)
            except GdpError:
                pass
    if digests_again != recovered_digests:
        violations.append("second reopen produced a different record set")
    if any(e["event"] == "tail_truncated" for e in again.recovery_log):
        violations.append("second reopen truncated the tail again")
    again.close()
    return TortureResult(
        site="",
        hit=0,
        crashed=crashed,
        acked=acked,
        recovered=len(recovered_digests),
        truncations=truncations,
        violations=violations,
    )


def run_crash_case(
    root: str,
    tier,
    history: TortureHistory,
    config: ScheduleConfig,
    site: str,
    hit: int,
) -> TortureResult:
    """One torture case: crash at the hit-th arrival of *site*, then
    verify recovery."""
    hook = CrashHook(site, hit)
    acked, crashed = run_schedule(root, tier, history, config, hook)
    result = verify_recovery(root, tier, history, config, acked, crashed)
    result.site = site
    result.hit = hit
    return result
