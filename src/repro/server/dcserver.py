"""DataCapsule-servers: durable, available, *untrusted* storage (§IV, §VI).

"The task of DataCapsule-servers is to make information durable and
available to the appropriate readers while maintaining the integrity of
data."  A server hosts capsule replicas it holds AdCerts for, answers
reads with integrity proofs, collects durability acknowledgments from
sibling replicas, pushes subscription updates, and participates in
leaderless anti-entropy synchronization.

The server *verifies what it stores* (writer signatures, pointer shape)
— not because clients trust it, but because an honest provider protects
itself: storing a forged record would make it serve failing proofs and
look malicious ("it is important to ensure that an honest infrastructure
provider can't be framed by an adversary", §III-D).

Request ops (payload ``{"op": ..., ...}`` over T_DATA PDUs):

=============  =========================================================
``host``       begin hosting (metadata + service chain + sibling list)
``append``     writer append; ``acks`` selects the durability policy
``append_batch``  multi-record append under one tip heartbeat
``replicate``  sibling-to-sibling record propagation
``replicate_batch``  sibling-to-sibling batch propagation
``read``       one record + position proof
``read_range`` contiguous records + range proof
``latest``     newest heartbeat + tip record
``metadata``   capsule metadata + this server's delegation chain
``subscribe``  register the requester for future pushes
``unsubscribe``
``session``    authenticated ECDH handshake -> HMAC fast path
``sync_summary`` / ``sync_fetch``   full-scan anti-entropy (legacy)
``sync_root`` / ``sync_nodes`` / ``sync_fetch_batch``
               Merkle-delta anti-entropy (see replication.py)
=============  =========================================================
"""

from __future__ import annotations

from typing import Any

from repro.capsule.capsule import DataCapsule
from repro.capsule.heartbeat import Heartbeat
from repro.capsule.proofs import (
    PositionProof,
    build_position_proof,
    build_range_proof,
)
from repro.capsule.records import Record
from repro.crypto.hmac_session import Handshake, SessionKey
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.delegation.chain import ServiceChain
from repro.errors import (
    CapsuleError,
    GdpError,
    RecordNotFoundError,
    StorageError,
)
from repro.naming.metadata import Metadata, make_server_metadata
from repro.naming.names import GdpName
from repro.routing import pdu as pdutypes
from repro.routing.endpoint import Endpoint
from repro.routing.pdu import Pdu
from repro.runtime.dispatch import dispatch_op, op, opt
from repro.server.durability import AckPolicy
from repro.server.secure import mac_response, sign_response
from repro.server.storage import MemoryStore, StorageBackend
from repro.sim.engine import Future
from repro.sim.net import SimNetwork

__all__ = ["DataCapsuleServer", "HostedCapsule"]

#: how long the fronting server waits for sibling durability acks
REPLICATION_ACK_TIMEOUT = 10.0

#: bisection probes per sync_nodes request (bounds per-PDU work)
MAX_SYNC_RANGES = 64

#: default reply budget for sync_fetch_batch (bytes of records+heartbeats)
DEFAULT_SYNC_BATCH_BYTES = 64 * 1024


class HostedCapsule:
    """A capsule replica this server is delegated for."""

    __slots__ = ("capsule", "chain", "siblings", "subscribers")

    def __init__(
        self,
        capsule: DataCapsule,
        chain: ServiceChain,
        siblings: list[GdpName],
    ):
        self.capsule = capsule
        self.chain = chain
        self.siblings = list(siblings)
        self.subscribers: set[GdpName] = set()


class DataCapsuleServer(Endpoint):
    """One DataCapsule-server daemon."""

    def __init__(
        self,
        network: SimNetwork,
        node_id: str,
        *,
        key: SigningKey | None = None,
        storage: StorageBackend | None = None,
        sign_responses: bool = True,
        lease_ttl: float | None = None,
    ):
        key = key or SigningKey.from_seed(b"server:" + node_id.encode())
        metadata = make_server_metadata(
            key, key.public, extra={"node_id": node_id}
        )
        super().__init__(network, node_id, metadata, key, lease_ttl=lease_ttl)
        self.storage = storage if storage is not None else MemoryStore()
        self.sign_responses = sign_responses
        self.hosted: dict[GdpName, HostedCapsule] = {}
        self._sessions: dict[GdpName, SessionKey] = {}
        # (client, corr_id) pairs whose response must stay signed even
        # though a session now exists (the session-establishment reply
        # itself: the client has no keys until it reads it).
        self._sign_anyway: set[tuple[GdpName, int]] = set()
        self.crashed = False
        #: last recover_from_storage() report: records replayed, sync
        #: leaves seeded from the persisted segment index, and any
        #: index-vs-log integrity mismatches it surfaced
        self.last_recovery: dict = {
            "records": 0,
            "seeded_leaves": 0,
            "index_mismatches": 0,
        }
        #: drain state: a draining server refuses new data ops, finishes
        #: in-flight ones, and flushes storage before shutdown
        self.draining = False
        self._inflight = 0
        metrics = network.metrics.node(node_id)
        self._h_drain_ms = metrics.histogram("server.drain_ms")
        self._c_appends = metrics.counter("server.appends")
        self._c_replications = metrics.counter("server.replications")
        self._c_reads = metrics.counter("server.reads")
        self._c_pushes = metrics.counter("server.pushes")
        self._c_sync_rounds = metrics.counter("server.sync_rounds")

    @property
    def stats(self) -> dict:
        """Counter snapshot, keyed by the historical short names
        (registry names: ``server.appends`` etc.)."""
        return {
            "appends": self._c_appends.value,
            "replications": self._c_replications.value,
            "reads": self._c_reads.value,
            "pushes": self._c_pushes.value,
            "sync_rounds": self._c_sync_rounds.value,
        }

    # -- hosting lifecycle -------------------------------------------------

    def host_capsule(
        self,
        metadata: Metadata,
        chain: ServiceChain,
        siblings: list[GdpName] | None = None,
    ) -> HostedCapsule:
        """Start hosting a capsule (local entry point; the ``host`` op
        arrives here too).  Verifies the delegation before accepting."""
        chain.verify(now=self.sim.now)
        if chain.server != self.name:
            raise CapsuleError("delegation chain is for a different server")
        if chain.capsule != metadata.name:
            raise CapsuleError("delegation chain is for a different capsule")
        capsule = DataCapsule(metadata)
        self.storage.store_metadata(metadata.name, metadata.to_wire())
        hosted = HostedCapsule(capsule, chain, siblings or [])
        self.hosted[metadata.name] = hosted
        return hosted

    def catalog_entries(self) -> list[dict]:
        """The advertisement catalog for every hosted capsule (what goes
        into the secure advertisement's naming catalog)."""
        return [
            {"chain": hosted.chain.to_wire()}
            for hosted in self.hosted.values()
        ]

    def current_catalog(self) -> list[dict]:
        """Re-advertisements (the lease-refresh daemon) always carry the
        *live* hosting table, not the catalog of the last handshake."""
        return self.catalog_entries()

    def crash(self) -> None:
        """Kill the process: stop responding and drop all in-memory
        session state (HMAC sessions, pending RPCs, subscriber lists
        survive only until :meth:`restart` wipes them).

        The storage backend is the durable medium and survives — it
        models the disk, not the process.  Crash is distinct from a
        network partition: a partitioned server keeps its sessions and
        resumes mid-conversation; a crashed one comes back amnesiac.
        """
        self.crashed = True
        self._sessions.clear()
        self._sign_anyway.clear()
        self._pending_rpcs.clear()
        # A handshake caught mid-flight dies with the process; leaving
        # it pending would block every post-restart re-advertisement.
        self.abandon_advertisement()

    def restart(self) -> None:
        """Come back up with exactly what the storage backend kept.

        Hosted-capsule operator state (delegation chains, sibling
        lists) persists — the operator configured it — but each
        replica's in-memory :class:`DataCapsule` is rebuilt from scratch
        by replaying the storage log, and subscriber sets are dropped
        (subscribers re-subscribe; §V's subscriptions are soft state).
        Anything acknowledged pre-crash was persisted by
        :meth:`_persist` or anti-entropy, so nothing durable is lost.
        """
        self.crashed = False
        self._sessions.clear()
        self._sign_anyway.clear()
        for hosted in self.hosted.values():
            hosted.capsule = DataCapsule(hosted.capsule.metadata)
            hosted.subscribers.clear()
        self.recover_from_storage()
        # Routes lapsed (or are about to) with the advertisement lease
        # while we were down; re-advertise so the name heals promptly
        # instead of waiting for the next refresh tick.
        if self._uplink is not None:
            self._schedule_readvertise()

    def recover_from_storage(self) -> int:
        """Reload records/heartbeats from the backend into any hosted
        capsule; returns how many records were recovered.

        Backends that persist the Merkle sync index per sealed segment
        (:class:`~repro.server.segmented.SegmentedStore`) additionally
        seed each capsule's sync-leaf cache — anti-entropy after a
        restart starts from the persisted index instead of re-deriving
        leaves from history — and the seeding doubles as an integrity
        cross-check: a persisted leaf that disagrees with the replayed
        records means a sealed segment silently lost or corrupted a
        frame, which is surfaced in :attr:`last_recovery` instead of
        being masked by matching roots.
        """
        recovered = 0
        report = {"records": 0, "seeded_leaves": 0, "index_mismatches": 0}
        sync_leaves = getattr(self.storage, "sync_leaves", None)
        for name, hosted in self.hosted.items():
            capsule = hosted.capsule
            for tag, wire in self.storage.load_entries(name):
                try:
                    if tag == "r":
                        record = Record.from_wire(name, wire)
                        if capsule.insert(record, enforce_strategy=False):
                            recovered += 1
                    elif tag == "h":
                        capsule.add_heartbeat(Heartbeat.from_wire(wire))
                except GdpError:
                    continue  # corrupt frame: skip, do not crash recovery
            if sync_leaves is not None:
                try:
                    leaves = sync_leaves(name)
                except StorageError:
                    leaves = {}
                if leaves:
                    seeded, mismatched = capsule.seed_sync_leaves(leaves)
                    report["seeded_leaves"] += seeded
                    report["index_mismatches"] += mismatched
        report["records"] = recovered
        self.last_recovery = report
        return recovered

    # -- request handling ----------------------------------------------------

    def handle_message(self, message: Any, peer: Any) -> None:
        """Inbound message dispatch (overrides the base handler)."""
        if self.crashed:
            return  # a dead server is silence on the wire
        super().handle_message(message, peer)

    def drain(self, poll: float = 0.01, max_wait: float = 30.0):
        """Process body: graceful shutdown, losing no acked record.

        Stops accepting new data ops (they get an ``unavailable``
        error), waits for every in-flight op — an append is only acked
        after its durability policy is satisfied, so waiting for the
        in-flight set empties the set of acked-but-unpersisted records —
        then flushes the storage backend.  Observes the wall time spent
        in the ``server.drain_ms`` histogram and returns it.
        """
        start = self.ctx.now
        self.draining = True
        while self._inflight > 0 and self.ctx.now - start < max_wait:
            yield poll
        self.storage.sync()
        drain_ms = (self.ctx.now - start) * 1000.0
        self._h_drain_ms.observe(drain_ms)
        return drain_ms

    def on_request(self, pdu: Pdu) -> Any:
        """Serve one application request (see class docstring).

        Ops resolve through the typed dispatch registry
        (:func:`repro.runtime.dispatch.dispatch_op`): unknown ops,
        payloads failing their declared field types, and handlers
        raising :class:`GdpError` all come back as structured error
        envelopes, which are then secure-wrapped like any response.
        """
        payload = pdu.payload
        if self.draining:
            return self._wrap(
                pdu,
                None,
                {
                    "ok": False,
                    "error": "server is draining",
                    "error_kind": "unavailable",
                },
            )
        result = dispatch_op(self, pdu, payload)
        if isinstance(result, dict) and result.get("error_kind"):
            return self._wrap(pdu, None, result)
        if isinstance(result, Future):
            wrapped = self.sim.future()
            capsule_name = self._capsule_of(payload)
            self._inflight += 1

            def finish(fut: Future) -> None:
                self._inflight -= 1
                try:
                    body = fut.result()
                except GdpError as exc:
                    body = {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                wrapped.resolve(self._wrap(pdu, capsule_name, body))

            result.add_callback(finish)
            return wrapped
        return self._wrap(pdu, self._capsule_of(payload), result)

    @staticmethod
    def _capsule_of(payload: Any) -> GdpName | None:
        if isinstance(payload, dict) and isinstance(
            payload.get("capsule"), bytes
        ):
            try:
                return GdpName(payload["capsule"])
            except GdpError:
                return None
        return None

    def _wrap(self, pdu: Pdu, capsule: GdpName | None, body: Any) -> Any:
        """Apply the secure-response envelope (HMAC if a session exists,
        signature otherwise)."""
        if not self.sign_responses:
            return body
        session = self._sessions.get(pdu.src)
        if session is not None and (pdu.src, pdu.corr_id) not in self._sign_anyway:
            return mac_response(session, pdu.src, pdu.corr_id, body)
        self._sign_anyway.discard((pdu.src, pdu.corr_id))
        chain = None
        if capsule is not None and capsule in self.hosted:
            chain = self.hosted[capsule].chain
        return sign_response(
            self.key, self.metadata, chain, pdu.src, pdu.corr_id, body
        )

    def _hosted(self, payload: dict) -> HostedCapsule:
        name = GdpName(payload["capsule"])
        hosted = self.hosted.get(name)
        if hosted is None:
            raise RecordNotFoundError(
                f"capsule {name.human()} is not hosted on {self.node_id}"
            )
        return hosted

    # -- ops -------------------------------------------------------------

    @op("host", metadata=dict, chain=dict, siblings=opt(list))
    def _op_host(self, pdu: Pdu, payload: dict) -> dict:
        metadata = Metadata.from_wire(payload["metadata"])
        chain = ServiceChain.from_wire(payload["chain"])
        siblings = [GdpName(raw) for raw in payload.get("siblings", [])]
        self.host_capsule(metadata, chain, siblings)
        # The new capsule name must become routable: re-run the secure
        # advertisement with the updated naming catalog.
        self._schedule_readvertise()
        return {"ok": True, "capsule": metadata.name.raw}

    def _schedule_readvertise(self) -> None:
        """Re-advertise the full catalog, retrying while a previous
        handshake is still in flight."""
        if self._uplink is None:
            return
        if self._pending_adv is not None and not self._pending_adv.done:
            self.sim.schedule(0.05, self._schedule_readvertise)
            return
        self.advertise(self.catalog_entries())

    def _note_checkpoint(self, hosted: HostedCapsule, record: Record) -> None:
        """Tell a checkpoint-aware backend when a checkpoint record
        lands — segments wholly below it become compactable."""
        note = getattr(self.storage, "note_checkpoint", None)
        if note is None:
            return
        is_checkpoint = getattr(
            hosted.capsule.strategy, "is_checkpoint", None
        )
        if is_checkpoint is not None and is_checkpoint(record.seqno):
            note(hosted.capsule.name, record.seqno)

    def _persist(self, hosted: HostedCapsule, record: Record, heartbeat: Heartbeat) -> bool:
        """Validate + store locally; returns True when the record is new."""
        new = hosted.capsule.insert(record, heartbeat)
        if new:
            self.storage.append_entries(
                hosted.capsule.name,
                [("r", record.to_wire()), ("h", heartbeat.to_wire())],
            )
            self._note_checkpoint(hosted, record)
        return new

    def _persist_batch(
        self,
        hosted: HostedCapsule,
        records: list[Record],
        heartbeat: Heartbeat,
    ) -> list[Record]:
        """Validate + store a record run pinned by one tip heartbeat;
        returns the records that were new.  The whole run goes to the
        backend as one ``append_entries`` batch — one buffered write and
        one fsync instead of a sync per frame."""
        tip = records[-1]
        if heartbeat.seqno != tip.seqno or heartbeat.digest != tip.digest:
            from repro.errors import IntegrityError

            raise IntegrityError(
                "batch heartbeat does not sign the batch tip"
            )
        new_records = []
        entries: list[tuple[str, dict]] = []
        for record in records:
            if hosted.capsule.insert(record):
                entries.append(("r", record.to_wire()))
                new_records.append(record)
        if hosted.capsule.add_heartbeat(heartbeat, matching_record=tip):
            entries.append(("h", heartbeat.to_wire()))
        if entries:
            self.storage.append_entries(hosted.capsule.name, entries)
        for record in new_records:
            self._note_checkpoint(hosted, record)
        return new_records

    @op("append", capsule=bytes, record=dict, heartbeat=dict, acks=opt(str))
    def _op_append(self, pdu: Pdu, payload: dict) -> Any:
        hosted = self._hosted(payload)
        record = Record.from_wire(hosted.capsule.name, payload["record"])
        heartbeat = Heartbeat.from_wire(payload["heartbeat"])
        new = self._persist(hosted, record, heartbeat)
        self._c_appends.inc()
        if new:
            self._push_to_subscribers(hosted, record, heartbeat)
        policy = AckPolicy(payload.get("acks", "any"))
        replicate = self._replicate_payload(hosted, record, heartbeat)
        return self._ack_or_propagate(hosted, policy, record.seqno, replicate)

    @op(
        "append_batch",
        capsule=bytes,
        records=list,
        heartbeat=dict,
        acks=opt(str),
    )
    def _op_append_batch(self, pdu: Pdu, payload: dict) -> Any:
        """Multi-record append: a run of records under one tip heartbeat
        (the batched write path; see ClientWriter.append_stream)."""
        hosted = self._hosted(payload)
        if not payload["records"]:
            raise CapsuleError("append_batch needs at least one record")
        records = [
            Record.from_wire(hosted.capsule.name, wire)
            for wire in payload["records"]
        ]
        heartbeat = Heartbeat.from_wire(payload["heartbeat"])
        new_records = self._persist_batch(hosted, records, heartbeat)
        self._c_appends.inc(len(records))
        for record in new_records:
            self._push_to_subscribers(hosted, record, heartbeat)
        policy = AckPolicy(payload.get("acks", "any"))
        replicate = {
            "op": "replicate_batch",
            "capsule": hosted.capsule.name.raw,
            "records": [r.to_wire() for r in records],
            "heartbeat": heartbeat.to_wire(),
        }
        return self._ack_or_propagate(
            hosted, policy, records[-1].seqno, replicate,
            extra={"count": len(records)},
        )

    def _replicate_payload(self, hosted: HostedCapsule, record: Record, heartbeat: Heartbeat) -> dict:
        return {
            "op": "replicate",
            "capsule": hosted.capsule.name.raw,
            "record": record.to_wire(),
            "heartbeat": heartbeat.to_wire(),
        }

    def _ack_or_propagate(
        self,
        hosted: HostedCapsule,
        policy: AckPolicy,
        seqno: int,
        replicate: dict,
        *,
        extra: dict | None = None,
    ) -> Any:
        """Shared durability tail of the append ops: fast-path ack with
        background propagation, or synchronous ack collection."""
        replica_count = 1 + len(hosted.siblings)
        if policy.is_fast_path(replica_count) or not hosted.siblings:
            # Fast path: ack now, propagate in the background (§VI-B).
            for sibling in hosted.siblings:
                # Fire-and-forget; anti-entropy repairs anything lost.
                self.rpc(sibling, dict(replicate), timeout=None)
            return {"ok": True, "seqno": seqno, "acks": 1, **(extra or {})}
        required = policy.required_acks(replica_count)
        return self._collect_acks(hosted, replicate, seqno, required, extra)

    def _collect_acks(
        self,
        hosted: HostedCapsule,
        replicate: dict,
        seqno: int,
        required: int,
        extra: dict | None = None,
    ) -> Future:
        """Durable path: wait until *required* replicas (including us)
        have persisted the record(s), or report how far we got."""
        result = self.sim.future()
        state = {"acks": 1, "outstanding": len(hosted.siblings)}

        def check_done() -> None:
            if result.done:
                return
            if state["acks"] >= required:
                result.resolve(
                    {
                        "ok": True,
                        "seqno": seqno,
                        "acks": state["acks"],
                        **(extra or {}),
                    }
                )
            elif state["outstanding"] == 0:
                result.resolve(
                    {
                        "ok": False,
                        "error": "insufficient durability acks",
                        "seqno": seqno,
                        "acks": state["acks"],
                        "required": required,
                    }
                )

        for sibling in hosted.siblings:
            future = self.rpc(
                sibling, dict(replicate), timeout=REPLICATION_ACK_TIMEOUT
            )

            def on_ack(fut: Future) -> None:
                state["outstanding"] -= 1
                try:
                    reply = fut.result()
                    body = reply.get("body", reply)
                    if body.get("ok"):
                        state["acks"] += 1
                except GdpError:
                    pass
                except Exception:
                    pass
                check_done()

            future.add_callback(on_ack)
        check_done()
        return result

    @op("replicate", capsule=bytes, record=dict, heartbeat=dict)
    def _op_replicate(self, pdu: Pdu, payload: dict) -> dict:
        hosted = self._hosted(payload)
        record = Record.from_wire(hosted.capsule.name, payload["record"])
        heartbeat = Heartbeat.from_wire(payload["heartbeat"])
        new = self._persist(hosted, record, heartbeat)
        self._c_replications.inc()
        if new:
            self._push_to_subscribers(hosted, record, heartbeat)
        return {"ok": True, "seqno": record.seqno}

    @op("replicate_batch", capsule=bytes, records=list, heartbeat=dict)
    def _op_replicate_batch(self, pdu: Pdu, payload: dict) -> dict:
        """Sibling-to-sibling propagation of a whole append batch."""
        hosted = self._hosted(payload)
        if not payload["records"]:
            raise CapsuleError("replicate_batch needs at least one record")
        records = [
            Record.from_wire(hosted.capsule.name, wire)
            for wire in payload["records"]
        ]
        heartbeat = Heartbeat.from_wire(payload["heartbeat"])
        new_records = self._persist_batch(hosted, records, heartbeat)
        self._c_replications.inc(len(records))
        for record in new_records:
            self._push_to_subscribers(hosted, record, heartbeat)
        return {
            "ok": True,
            "seqno": records[-1].seqno,
            "count": len(records),
        }

    @op("read", capsule=bytes, seqno=int)
    def _op_read(self, pdu: Pdu, payload: dict) -> dict:
        hosted = self._hosted(payload)
        seqno = payload["seqno"]
        record = hosted.capsule.get(seqno)
        proof = build_position_proof(hosted.capsule, seqno)
        self._c_reads.inc()
        return {
            "ok": True,
            "record": record.to_wire(),
            "proof": proof.to_wire(),
        }

    @op("read_range", capsule=bytes, first=int, last=int)
    def _op_read_range(self, pdu: Pdu, payload: dict) -> dict:
        hosted = self._hosted(payload)
        first, last = payload["first"], payload["last"]
        records = hosted.capsule.read_range(first, last)
        proof = build_range_proof(hosted.capsule, first, last)
        self._c_reads.inc()
        return {
            "ok": True,
            "records": [r.to_wire() for r in records],
            "proof": proof.to_wire(),
        }

    @op("latest", capsule=bytes)
    def _op_latest(self, pdu: Pdu, payload: dict) -> dict:
        hosted = self._hosted(payload)
        heartbeat = hosted.capsule.latest_heartbeat
        if heartbeat is None:
            return {"ok": True, "empty": True}
        record = hosted.capsule.get_by_digest(heartbeat.digest)
        proof = build_position_proof(hosted.capsule, record.seqno)
        self._c_reads.inc()
        return {
            "ok": True,
            "record": record.to_wire(),
            "heartbeat": heartbeat.to_wire(),
            "proof": proof.to_wire(),
        }

    @op("metadata", capsule=bytes)
    def _op_metadata(self, pdu: Pdu, payload: dict) -> dict:
        hosted = self._hosted(payload)
        return {
            "ok": True,
            "metadata": hosted.capsule.metadata.to_wire(),
            "chain": hosted.chain.to_wire(),
        }

    @op("unhost", capsule=bytes, auth=opt(object))
    def _op_unhost(self, pdu: Pdu, payload: dict) -> dict:
        """Stop hosting a capsule — owner-authorized replica retirement
        (§VI: "Replicas can be migrated ... such placement decisions are
        made by the owner of a DataCapsule").

        Authorization: an owner signature over
        ``("gdp.unhost", capsule, this server's name)`` so an unhost
        request cannot be forged or replayed against another server.
        """
        from repro import encoding as _encoding

        hosted = self._hosted(payload)
        owner_key = hosted.capsule.metadata.owner_key
        preimage = b"gdp.unhost" + _encoding.encode(
            [hosted.capsule.name.raw, self.name.raw]
        )
        from repro.errors import AuthorizationError

        signature = payload.get("auth")
        if not isinstance(signature, bytes) or not owner_key.verify(
            preimage, signature
        ):
            raise AuthorizationError(
                "unhost requires a valid owner signature"
            )
        name = hosted.capsule.name
        del self.hosted[name]
        self.storage.delete_capsule(name)
        # Withdraw the route so traffic stops landing here.
        if self._uplink is not None:
            self.withdraw([name])
        return {"ok": True, "capsule": name.raw}

    @op("sync_now", capsule=bytes, **{"from": bytes})
    def _op_sync_now(self, pdu: Pdu, payload: dict) -> Any:
        """Owner-triggered immediate anti-entropy pull from a named
        sibling (used to warm a freshly placed replica during
        migration)."""
        from repro.server.replication import sync_once

        hosted = self._hosted(payload)
        sibling = GdpName(payload["from"])
        result = self.sim.future()
        process = self.sim.spawn(
            sync_once(self, hosted.capsule.name, sibling),
            name=f"sync_now:{self.node_id}",
        )

        def done(fut: Future) -> None:
            try:
                fetched = fut.result()
            except Exception as exc:  # noqa: BLE001 — reported to caller
                result.resolve({"ok": False, "error": str(exc)})
                return
            result.resolve({"ok": True, "fetched": fetched})

        process.completion.add_callback(done)
        return result

    @op("subscribe", capsule=bytes, subgrant=opt(object))
    def _op_subscribe(self, pdu: Pdu, payload: dict) -> dict:
        hosted = self._hosted(payload)
        # Restricted capsules require an owner-signed subscription
        # credential (§VII fn. 9: "restricting subscription to
        # DataCapsule updates ... who can join a secure multicast tree").
        if hosted.capsule.metadata.properties.get("restricted_subscribe"):
            from repro.delegation.certs import SubGrant
            from repro.errors import AuthorizationError

            grant_wire = payload.get("subgrant")
            if grant_wire is None:
                raise AuthorizationError(
                    "capsule requires a subscription credential"
                )
            grant = SubGrant.from_wire(grant_wire)
            grant.verify(
                hosted.capsule.metadata.owner_key,
                now=self.sim.now,
                capsule=hosted.capsule.name,
                subscriber=pdu.src,
            )
        hosted.subscribers.add(pdu.src)
        return {"ok": True, "from_seqno": hosted.capsule.last_seqno + 1}

    @op("unsubscribe", capsule=bytes)
    def _op_unsubscribe(self, pdu: Pdu, payload: dict) -> dict:
        hosted = self._hosted(payload)
        hosted.subscribers.discard(pdu.src)
        return {"ok": True}

    @op("session", client_key=bytes, offer=object)
    def _op_session(self, pdu: Pdu, payload: dict) -> dict:
        """Authenticated ECDH handshake (the client is the initiator)."""
        client_identity = VerifyingKey.from_bytes(payload["client_key"])
        handshake = Handshake(self.key)
        session = handshake.finish(
            payload["offer"], client_identity, initiator=False
        )
        self._sessions[pdu.src] = session
        # This response itself is still signed (the session starts with
        # the *next* message), so the client can authenticate the offer.
        self._sign_anyway.add((pdu.src, pdu.corr_id))
        return {"ok": True, "offer": handshake.offer()}

    @op("sync_summary", capsule=bytes)
    def _op_sync_summary(self, pdu: Pdu, payload: dict) -> dict:
        hosted = self._hosted(payload)
        self._c_sync_rounds.inc()
        return {"ok": True, "summary": hosted.capsule.state_summary()}

    @op("sync_fetch", capsule=bytes, digests=list)
    def _op_sync_fetch(self, pdu: Pdu, payload: dict) -> dict:
        hosted = self._hosted(payload)
        records = []
        for digest in payload["digests"]:
            try:
                records.append(hosted.capsule.get_by_digest(digest).to_wire())
            except RecordNotFoundError:
                continue
        heartbeats = [h.to_wire() for h in hosted.capsule.heartbeats()]
        return {"ok": True, "records": records, "heartbeats": heartbeats}

    # -- Merkle-delta anti-entropy (see server/replication.py) ------------

    @op("sync_root", capsule=bytes)
    def _op_sync_root(self, pdu: Pdu, payload: dict) -> dict:
        """Round opener: O(1) reply — tip seqno, record count, the
        Merkle root over the whole sync index, and the tip heartbeat
        (so the peer's frontier advances even when record sets match)."""
        hosted = self._hosted(payload)
        capsule = hosted.capsule
        self._c_sync_rounds.inc()
        last = capsule.last_seqno
        body: dict = {
            "ok": True,
            "last_seqno": last,
            "count": len(capsule),
            "root": capsule.range_root(1, last) if last else b"",
        }
        heartbeat = capsule.latest_heartbeat
        if heartbeat is not None:
            body["heartbeat"] = heartbeat.to_wire()
        return body

    @op("sync_nodes", capsule=bytes, ranges=list)
    def _op_sync_nodes(self, pdu: Pdu, payload: dict) -> dict:
        """Bisection probe: Merkle roots for the requested seqno ranges
        (``[[lo, hi], ...]``, at most ``MAX_SYNC_RANGES`` per request)."""
        hosted = self._hosted(payload)
        ranges = payload["ranges"]
        if len(ranges) > MAX_SYNC_RANGES:
            raise CapsuleError(
                f"sync_nodes accepts at most {MAX_SYNC_RANGES} ranges"
            )
        hashes = []
        for entry in ranges:
            lo, hi = int(entry[0]), int(entry[1])
            hashes.append(hosted.capsule.range_root(lo, hi))
        return {"ok": True, "hashes": hashes}

    @op("sync_fetch_batch", capsule=bytes, seqnos=list, max_bytes=opt(int))
    def _op_sync_fetch_batch(self, pdu: Pdu, payload: dict) -> dict:
        """Size-capped record transfer: records + their heartbeats for
        the requested seqnos, in request order, stopping once the reply
        would exceed ``max_bytes`` (always serving at least one seqno so
        the requester makes progress).  ``served`` lists the seqnos
        actually processed; the requester re-queues the rest."""
        from repro.routing.pdu import payload_size

        hosted = self._hosted(payload)
        max_bytes = payload.get("max_bytes") or DEFAULT_SYNC_BATCH_BYTES
        records, heartbeats, served = [], [], []
        budget = max_bytes
        for seqno in payload["seqnos"]:
            seqno = int(seqno)
            entry_records = [
                r.to_wire() for r in hosted.capsule.get_all(seqno)
            ]
            entry_heartbeats = [
                h.to_wire() for h in hosted.capsule.heartbeats_at(seqno)
            ]
            cost = payload_size([entry_records, entry_heartbeats])
            if served and cost > budget:
                break
            budget -= cost
            records.extend(entry_records)
            heartbeats.extend(entry_heartbeats)
            served.append(seqno)
        return {
            "ok": True,
            "records": records,
            "heartbeats": heartbeats,
            "served": served,
        }

    # -- subscriptions ------------------------------------------------------

    def _push_proof(
        self, hosted: HostedCapsule, record: Record, heartbeat: Heartbeat
    ):
        """The position proof accompanying a push.  Batched appends sign
        only the batch tip, so a non-tip record needs a real path proof;
        when the heartbeat pins the record directly the one-hop form
        suffices.  Returns None when no verifiable proof exists yet (the
        push is withheld — subscribers only ever see provable data)."""
        try:
            return build_position_proof(hosted.capsule, record.seqno)
        except GdpError:
            if heartbeat.digest == record.digest:
                return PositionProof(heartbeat, [record.header_wire()])
            return None

    def _push_to_subscribers(
        self, hosted: HostedCapsule, record: Record, heartbeat: Heartbeat
    ) -> None:
        """Publish a fresh record to every subscriber (§V 'subscribe'
        enables "an event-driven programming model")."""
        if not hosted.subscribers:
            return
        proof = self._push_proof(hosted, record, heartbeat)
        if proof is None:
            return
        payload = {
            "capsule": hosted.capsule.name.raw,
            "record": record.to_wire(),
            "heartbeat": heartbeat.to_wire(),
            "proof": proof.to_wire(),
        }
        for subscriber in sorted(hosted.subscribers, key=lambda n: n.raw):
            push = Pdu(self.name, subscriber, pdutypes.T_PUSH, dict(payload))
            self.send_pdu(push)
            self._c_pushes.inc()
