"""Secure responses: connectionless trust from the capsule name (§V).

"Our protocol starts the chain of trust from the name of the object
itself and quickly translates to efficient HMAC based secure
acknowledgments."

A response body is wrapped with authentication evidence in one of two
modes:

``sig``
    The server signs ``(client, corr_id, body)`` with its own key and
    attaches its metadata + the AdCert service chain.  The client
    verifies: chain links the *capsule name it asked about* to this
    server, and the signature binds this exact response to this exact
    request (corr_id) for this client — no replay, no substitution, and
    an honest provider "can't be framed by an adversary" because only it
    can produce the signature.

``hmac``
    After a one-time authenticated ECDH handshake, responses carry an
    HMAC instead — the steady-state fast path with "byte overhead
    roughly similar to TLS".

The corr_id binding is what makes this safe *connectionless*: each
request/response pair is independently verifiable, so anycast can move
the conversation between replicas at any time (§III-D).
"""

from __future__ import annotations

from typing import Any

from repro import encoding
from repro.crypto.hmac_session import SessionKey
from repro.crypto.keys import SigningKey
from repro.delegation.chain import ServiceChain
from repro.errors import IntegrityError, SignatureError
from repro.naming.metadata import Metadata
from repro.naming.names import GdpName

__all__ = [
    "sign_response",
    "verify_signed_response",
    "mac_response",
    "verify_mac_response",
]

_DOMAIN = b"gdp.response"


def _preimage(client: GdpName, corr_id: int, body: Any) -> bytes:
    return _DOMAIN + encoding.encode([client.raw, corr_id, body])


def sign_response(
    server_key: SigningKey,
    server_metadata: Metadata,
    chain: ServiceChain | None,
    client: GdpName,
    corr_id: int,
    body: Any,
) -> dict:
    """Wrap *body* in a signed secure response."""
    wrapped = {
        "body": body,
        "auth": {
            "mode": "sig",
            "server_metadata": server_metadata.to_wire(),
            "signature": server_key.sign(_preimage(client, corr_id, body)),
        },
    }
    if chain is not None:
        wrapped["auth"]["chain"] = chain.to_wire()
    return wrapped


def verify_signed_response(
    wrapped: dict,
    *,
    client: GdpName,
    corr_id: int,
    capsule: GdpName | None = None,
    now: float = 0.0,
) -> Any:
    """Verify a signed secure response; returns the body.

    When *capsule* is given, the attached service chain must prove the
    responding server is delegated for that capsule — this is what stops
    "an adversary that ... just happens to be in the path" (§III-D) from
    answering in a real server's stead.
    """
    try:
        auth = wrapped["auth"]
        body = wrapped["body"]
        if auth["mode"] != "sig":
            raise IntegrityError(f"expected sig response, got {auth['mode']!r}")
        server_metadata = Metadata.from_wire(auth["server_metadata"])
        signature = auth["signature"]
    except (KeyError, TypeError) as exc:
        raise IntegrityError(f"malformed secure response: {exc}") from exc
    server_metadata.verify()
    if not server_metadata.self_key.verify(
        _preimage(client, corr_id, body), signature
    ):
        raise SignatureError("secure response signature invalid")
    if capsule is not None and body.get("ok"):
        # Error bodies assert no capsule data, so they need no chain —
        # a replica that does not (yet) hold a record must be able to
        # say so; the signature still authenticates who said it.
        if "chain" not in auth:
            raise IntegrityError(
                "response lacks the delegation chain for the capsule"
            )
        chain = ServiceChain.from_wire(auth["chain"])
        chain.verify(now=now)
        if chain.capsule != capsule:
            raise IntegrityError("delegation chain is for another capsule")
        if chain.server != server_metadata.name:
            raise IntegrityError(
                "delegation chain names a different server than the signer"
            )
    return body


def mac_response(
    session: SessionKey, client: GdpName, corr_id: int, body: Any
) -> dict:
    """Wrap *body* with the steady-state HMAC authenticator."""
    return {
        "body": body,
        "auth": {
            "mode": "hmac",
            "mac": session.mac(_preimage(client, corr_id, body)),
        },
    }


def verify_mac_response(
    session: SessionKey, wrapped: dict, *, client: GdpName, corr_id: int
) -> Any:
    """Verify an HMAC secure response; returns the body."""
    try:
        auth = wrapped["auth"]
        body = wrapped["body"]
        if auth["mode"] != "hmac":
            raise IntegrityError(f"expected hmac response, got {auth['mode']!r}")
        mac = auth["mac"]
    except (KeyError, TypeError) as exc:
        raise IntegrityError(f"malformed secure response: {exc}") from exc
    session.check(_preimage(client, corr_id, body), mac)
    return body
