"""Durability (acknowledgment) policies (§VI-B).

"In the simplest case, the writer receives a single acknowledgment from
the closest DataCapsule-server ... applications that can not tolerate
such loss, the writer can indicate that the DataCapsule-server must
collect additional acknowledgments from other replicas and return it to
the writer."

An :class:`AckPolicy` translates the writer's durability requirement
into the number of replica acknowledgments the fronting server must
collect before replying.  ``ANY`` is the paper's fast path (ack after
local persist, propagate in the background — the window where a crash
can leave a *hole*); ``ALL`` closes the window completely; ``QUORUM``
is the usual middle ground.
"""

from __future__ import annotations

from repro.errors import DurabilityError

__all__ = ["AckPolicy", "FsyncPolicy", "ANY", "QUORUM", "ALL"]


class AckPolicy:
    """How many replicas (including the fronting server) must persist an
    append before it is acknowledged to the writer."""

    def __init__(self, spec: str):
        self.spec = spec
        if spec not in ("any", "quorum", "all") and not spec.isdigit():
            raise DurabilityError(f"unknown ack policy {spec!r}")
        if spec.isdigit() and int(spec) < 1:
            raise DurabilityError("numeric ack policy must be >= 1")

    def required_acks(self, replica_count: int) -> int:
        """Acks needed given *replica_count* total replicas."""
        if replica_count < 1:
            raise DurabilityError("capsule has no replicas")
        if self.spec == "any":
            return 1
        if self.spec == "quorum":
            return replica_count // 2 + 1
        if self.spec == "all":
            return replica_count
        return min(int(self.spec), replica_count)

    def is_fast_path(self, replica_count: int) -> bool:
        """True when the local persist alone satisfies the policy —
        the §VI-B fast path (ack immediately, propagate in the
        background), shared by the single and batched append ops."""
        return self.required_acks(replica_count) <= 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AckPolicy):
            return NotImplemented
        return self.spec == other.spec

    def __hash__(self) -> int:
        return hash(self.spec)

    def __repr__(self) -> str:
        return f"AckPolicy({self.spec!r})"


class FsyncPolicy:
    """When appended bytes must reach the durable medium.

    The ack policy above decides *who* must persist an append before it
    is acknowledged; this decides what "persist" means on each replica:

    - ``"always"`` — fsync before every append returns (an acked record
      survives power loss; the FileStore/SegmentedStore default).
    - ``"batch:N"`` — fsync once at least N bytes are pending; bounds
      the power-loss window to N bytes while amortizing the sync cost
      over a run of appends.
    - ``"drain"`` — never fsync on the append path; only an explicit
      ``StorageBackend.sync()`` (the graceful-drain lifecycle) pushes
      bytes down.  Matches ``fsync=False``: the caller has batched
      durability elsewhere.
    """

    def __init__(self, spec: str):
        self.spec = spec
        self._batch = 0
        if spec.startswith("batch:"):
            try:
                self._batch = int(spec[len("batch:") :])
            except ValueError:
                raise DurabilityError(f"bad fsync policy {spec!r}") from None
            if self._batch < 1:
                raise DurabilityError("batch fsync threshold must be >= 1")
        elif spec not in ("always", "drain"):
            raise DurabilityError(f"unknown fsync policy {spec!r}")

    def should_fsync(self, pending_bytes: int) -> bool:
        """Must the store fsync now, with *pending_bytes* not yet synced?"""
        if self.spec == "always":
            return True
        if self._batch:
            return pending_bytes >= self._batch
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FsyncPolicy):
            return NotImplemented
        return self.spec == other.spec

    def __hash__(self) -> int:
        return hash(self.spec)

    def __repr__(self) -> str:
        return f"FsyncPolicy({self.spec!r})"


ANY = AckPolicy("any")
QUORUM = AckPolicy("quorum")
ALL = AckPolicy("all")
