"""Segmented-log storage engine (ROADMAP item 3).

The paper pitches DataCapsules as "cryptographically hardened bundles"
holding entire application histories on federated edge infrastructure
(§IV); :class:`~repro.server.storage.FileStore` — one flat frame-per-
record log — stops scaling long before the billion-record capsules that
vision implies.  :class:`SegmentedStore` keeps the same
:class:`~repro.server.storage.StorageBackend` contract but organises
each capsule as a sequence of *segments*:

- The **active** (tail) segment absorbs appends through a user-space
  buffer; every frame carries a CRC32 so a crash mid-write is detected
  as a *torn frame* on reopen, and the tail is physically truncated back
  to the last intact frame (logged once in :attr:`recovery_log`).
- When the active segment reaches ``segment_bytes`` it is **sealed**:
  fsynced, made immutable, and described by a sidecar ``.idx`` document
  holding a sparse seqno→offset index (point reads without a scan) and
  the per-seqno record digests that feed the PR-4 Merkle sync index —
  so anti-entropy and restart never re-derive digests from history.
- Sealed segments are **compacted** when they fall entirely below the
  capsule's last *checkpoint* record (``note_checkpoint``): adjacent
  segments merge into one and superseded heartbeats are dropped
  (records are never dropped — the hash chain must re-verify).
- Cold sealed segments beyond the ``hot_segments`` newest are
  **tiered** to an object store (the ``baselines/s3sim`` shape: a
  flat key→blob PUT/GET/DELETE service) and read back transparently
  through an LRU byte-budgeted cache; the ``.idx`` stays local so point
  reads know which cold object to fetch.

Durability state machine (every mutation is crash-safe at each arrow;
the torture suite in ``tests/torture/`` kills the store at every named
crash point and asserts no acked record is lost):

    append:  buffer → [flush → fsync per FsyncPolicy] → ack
    seal:    fsync(seg) → write idx.tmp → rename idx → MANIFEST
    tier:    PUT object → MANIFEST(tier=object) → unlink local seg
    compact: write merged seg+idx (fresh id) → MANIFEST → unlink olds

The ``MANIFEST`` (atomic tmp+rename) is the commit point for every
multi-file transition: on open, any local segment whose id the manifest
does not list is a crashed transaction's debris and is deleted; any
segment the manifest says is tiered but still exists locally lost only
its unlink and is re-unlinked.
"""

from __future__ import annotations

import mmap
import os
import shutil
import struct
import zlib
from collections import OrderedDict
from typing import Callable, Iterator

from repro import encoding
from repro.crypto.hashing import hash_value, sha256
from repro.errors import StorageError
from repro.naming.names import GdpName
from repro.server.durability import FsyncPolicy
from repro.server.storage import (
    _TAG_HEARTBEAT,
    _TAG_METADATA,
    _TAG_RECORD,
    StorageBackend,
)

__all__ = ["SegmentedStore", "SegmentInfo", "SimulatedCrash", "CRASH_POINTS"]

_MAGIC = b"GDPSEG1\n"
_FRAME = struct.Struct(">BII")  # tag byte, payload length, crc32(payload)
_MANIFEST = "MANIFEST"

#: sidecar-index packing: (seqno, file offset) pairs and
#: (seqno, digest count) leaf headers.  The sidecar carries one leaf
#: entry per record, so these fields are packed ``struct`` runs instead
#: of canonically-encoded lists — at bench scale (tens of thousands of
#: records per segment) canonical encoding was the dominant seal cost.
_IDX_PAIR = struct.Struct(">QQ")
_IDX_LEAF = struct.Struct(">QH")
_DIGEST_LEN = 32


def _pack_pairs(pairs) -> bytes:
    return b"".join(_IDX_PAIR.pack(s, o) for s, o in pairs)


def _unpack_pairs(blob: bytes) -> list[tuple[int, int]]:
    return [
        _IDX_PAIR.unpack_from(blob, i)
        for i in range(0, len(blob), _IDX_PAIR.size)
    ]


def _pack_leaves(leaves: dict[int, list[bytes]]) -> bytes:
    out = bytearray()
    for seqno in sorted(leaves):
        digests = sorted(leaves[seqno])
        out += _IDX_LEAF.pack(seqno, len(digests))
        for digest in digests:
            out += digest
    return bytes(out)


def _unpack_leaves(blob: bytes) -> list[tuple[int, list[bytes]]]:
    leaves = []
    offset = 0
    size = len(blob)
    while offset + _IDX_LEAF.size <= size:
        seqno, count = _IDX_LEAF.unpack_from(blob, offset)
        offset += _IDX_LEAF.size
        digests = [
            blob[offset + i * _DIGEST_LEN : offset + (i + 1) * _DIGEST_LEN]
            for i in range(count)
        ]
        offset += count * _DIGEST_LEN
        leaves.append((seqno, digests))
    return leaves

#: Every site where the torture harness may kill the store.  Names are
#: ``<operation>.<boundary>``; ``append.torn`` additionally simulates a
#: power loss mid-``write`` by leaving half a frame on disk.
CRASH_POINTS = (
    "append.before",
    "append.torn",
    "append.buffered",
    "append.after",
    "seal.before",
    "seal.index_written",
    "seal.pre_manifest",
    "seal.post_manifest",
    "tier.before",
    "tier.uploaded",
    "tier.pre_unlink",
    "compact.before",
    "compact.merged",
    "compact.pre_cleanup",
)


class SimulatedCrash(Exception):
    """Raised by a crash hook to kill the store at a crash point.

    Deliberately *not* a :class:`~repro.errors.GdpError`: production
    error handling must never swallow it, so torture schedules see the
    crash exactly where it was injected.
    """


class SegmentInfo:
    """Manifest entry for one segment (mutable while active)."""

    __slots__ = ("id", "sealed", "tier", "records", "first", "last", "bytes")

    def __init__(
        self,
        id: int,
        *,
        sealed: bool = False,
        tier: str = "local",
        records: int = 0,
        first: int = 0,
        last: int = 0,
        bytes: int = len(_MAGIC),
    ):
        self.id = id
        self.sealed = sealed
        self.tier = tier
        self.records = records
        self.first = first
        self.last = last
        self.bytes = bytes

    def to_wire(self) -> dict:
        return {
            "id": self.id,
            "sealed": self.sealed,
            "tier": self.tier,
            "records": self.records,
            "first": self.first,
            "last": self.last,
            "bytes": self.bytes,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "SegmentInfo":
        return cls(
            wire["id"],
            sealed=wire["sealed"],
            tier=wire["tier"],
            records=wire["records"],
            first=wire["first"],
            last=wire["last"],
            bytes=wire["bytes"],
        )

    def __repr__(self) -> str:
        state = "sealed" if self.sealed else "active"
        return (
            f"SegmentInfo(id={self.id}, {state}, tier={self.tier}, "
            f"records={self.records}, seqnos=[{self.first},{self.last}])"
        )


class _CapsuleLog:
    """In-memory state for one capsule's segment chain."""

    __slots__ = (
        "name",
        "dir",
        "metadata",
        "checkpoint",
        "segments",
        "buffer",
        "size",
        "pending_fsync",
        "sparse",
        "extras",
        "leaves",
        "countdown",
    )

    def __init__(self, name: GdpName, directory: str):
        self.name = name
        self.dir = directory
        self.metadata: dict | None = None
        self.checkpoint = 0
        self.segments: list[SegmentInfo] = []
        self.buffer = bytearray()  # active-segment bytes not yet write()n
        self.size = 0  # active file length incl. magic and buffer
        self.pending_fsync = 0  # bytes written/buffered since last fsync
        self.reset_active_index()

    def reset_active_index(self) -> None:
        self.sparse: list[tuple[int, int]] = []
        self.extras: list[tuple[int, int]] = []
        self.leaves: dict[int, list[bytes]] = {}
        self.countdown = 0

    @property
    def active(self) -> SegmentInfo:
        return self.segments[-1]

    def manifest_wire(self) -> dict:
        return {
            "version": 1,
            "metadata": self.metadata,
            "checkpoint": self.checkpoint,
            "segments": [seg.to_wire() for seg in self.segments],
        }


def record_wire_digest(name_raw: bytes, wire: dict) -> bytes:
    """The digest of a record *wire form*, computed without constructing
    a :class:`~repro.capsule.records.Record` (no keys, no signature
    checks) — byte-identical to ``Record.digest`` because both reduce to
    ``hash_value("gdp.record", [capsule, seqno, payload_hash, ptrs])``.

    Deliberately bypasses the process-wide digest memo: hashing the
    ~100-byte header outright is cheaper than building the memo's
    content-frozen key, and the append hot path calls this once per
    record."""
    return hash_value(
        "gdp.record",
        [name_raw, wire["seqno"], sha256(wire["payload"]), wire["pointers"]],
    )


class SegmentedStore(StorageBackend):
    """Segmented-log storage engine (see module docstring).

    Layout under *root*::

        <capsule-hex>/MANIFEST        commit point (atomic rewrite)
        <capsule-hex>/seg-00000001.seg   frames (magic + tag/len/crc)
        <capsule-hex>/seg-00000001.idx   sealed-segment sidecar index

    ``fsync=True`` maps to :class:`FsyncPolicy` ``"always"`` (every
    acked append is on disk), ``False`` to ``"drain"`` (fsync only at
    seal/:meth:`sync`, matching FileStore's opt-out).
    """

    _MAX_HANDLES = 64
    _MAX_MMAPS = 8
    _MAX_INDEXES = 16

    def __init__(
        self,
        root: str,
        *,
        fsync: bool = True,
        fsync_policy: FsyncPolicy | str | None = None,
        segment_bytes: int = 1 << 20,
        sparse_every: int = 64,
        flush_bytes: int = 64 * 1024,
        hot_segments: int = 2,
        tier=None,
        tier_cache_bytes: int = 8 << 20,
        sync_index: bool = True,
        auto_compact: bool = True,
        compact_min_segments: int = 4,
        crash_hook: Callable[[str], None] | None = None,
    ):
        self.root = root
        if fsync_policy is None:
            fsync_policy = FsyncPolicy("always" if fsync else "drain")
        elif isinstance(fsync_policy, str):
            fsync_policy = FsyncPolicy(fsync_policy)
        self.fsync_policy = fsync_policy
        self.segment_bytes = segment_bytes
        self.sparse_every = sparse_every
        self.flush_bytes = flush_bytes
        self.hot_segments = hot_segments
        self.tier = tier
        self.tier_cache_bytes = tier_cache_bytes
        self.sync_index = sync_index
        self.auto_compact = auto_compact
        self.compact_min_segments = compact_min_segments
        self.crash_hook = crash_hook
        os.makedirs(root, exist_ok=True)
        self._logs: dict[GdpName, _CapsuleLog] = {}
        self._handles: "OrderedDict[GdpName, object]" = OrderedDict()
        self._mmaps: "OrderedDict[tuple, mmap.mmap]" = OrderedDict()
        self._indexes: "OrderedDict[tuple, dict]" = OrderedDict()
        self._tier_cache: "OrderedDict[str, bytes]" = OrderedDict()
        self._tier_cache_used = 0
        #: recovery / integrity events observed by this instance, in
        #: order: ``{"event": ..., "capsule": hex, ...}``
        self.recovery_log: list[dict] = []
        self._dead = False

    # -- crash-point plumbing ------------------------------------------------

    def _crashpoint(self, site: str) -> None:
        hook = self.crash_hook
        if hook is None:
            return
        try:
            hook(site)
        except SimulatedCrash:
            # The process is "dead": user-space buffers are lost, only
            # bytes already write()n survive.  Poison the instance so a
            # test bug cannot keep using it as if nothing happened.
            self._dead = True
            raise

    def _check_alive(self) -> None:
        if self._dead:
            raise StorageError("store has crashed (SimulatedCrash)")

    # -- paths / low-level io ------------------------------------------------

    def _dir(self, name: GdpName) -> str:
        return os.path.join(self.root, name.hex())

    @staticmethod
    def _seg_path(directory: str, seg_id: int) -> str:
        return os.path.join(directory, f"seg-{seg_id:08d}.seg")

    @staticmethod
    def _idx_path(directory: str, seg_id: int) -> str:
        return os.path.join(directory, f"seg-{seg_id:08d}.idx")

    def _tier_key(self, name: GdpName, seg_id: int) -> str:
        return f"{name.hex()}/seg-{seg_id:08d}.seg"

    @staticmethod
    def _write_atomic(path: str, blob: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        dir_fd = os.open(os.path.dirname(path), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def _write_manifest(self, log: _CapsuleLog) -> None:
        self._write_atomic(
            os.path.join(log.dir, _MANIFEST),
            encoding.encode(log.manifest_wire()),
        )

    def _handle(self, log: _CapsuleLog):
        fh = self._handles.get(log.name)
        if fh is not None:
            self._handles.move_to_end(log.name)
            return fh
        path = self._seg_path(log.dir, log.active.id)
        try:
            fh = open(path, "ab", buffering=0)
        except OSError as exc:
            raise StorageError(f"open failed: {exc}") from exc
        self._handles[log.name] = fh
        while len(self._handles) > self._MAX_HANDLES:
            old_name, old_fh = self._handles.popitem(last=False)
            old_log = self._logs.get(old_name)
            if old_log is not None and old_log.buffer:
                old_fh.write(bytes(old_log.buffer))
                old_log.buffer.clear()
            old_fh.close()
        return fh

    def _release_handle(self, name: GdpName) -> None:
        fh = self._handles.pop(name, None)
        if fh is not None:
            fh.close()

    def _flush(self, log: _CapsuleLog) -> None:
        if log.buffer:
            self._handle(log).write(bytes(log.buffer))
            log.buffer.clear()

    def _fsync_active(self, log: _CapsuleLog) -> None:
        self._flush(log)
        if log.pending_fsync:
            os.fsync(self._handle(log).fileno())
            log.pending_fsync = 0

    def _log_event(self, event: str, name: GdpName, **extra) -> None:
        entry = {"event": event, "capsule": name.hex(), **extra}
        self.recovery_log.append(entry)

    # -- open / recovery -----------------------------------------------------

    def _log_for(self, name: GdpName) -> _CapsuleLog | None:
        log = self._logs.get(name)
        if log is not None:
            return log
        directory = self._dir(name)
        if not os.path.isdir(directory):
            return None
        if not os.path.exists(
            os.path.join(directory, _MANIFEST)
        ) and not self._local_segment_ids(directory):
            return None  # empty dir: crash before anything durable
        log = self._open_log(name, directory)
        self._logs[name] = log
        return log

    def _require(self, name: GdpName) -> _CapsuleLog:
        log = self._log_for(name)
        if log is None:
            raise StorageError(f"capsule {name.human()} is not hosted here")
        return log

    def _local_segment_ids(self, directory: str) -> dict[int, str]:
        found = {}
        for fname in os.listdir(directory):
            if fname.startswith("seg-") and fname.endswith(".seg"):
                try:
                    found[int(fname[4:-4])] = os.path.join(directory, fname)
                except ValueError:
                    continue
        return found

    def _open_log(self, name: GdpName, directory: str) -> _CapsuleLog:
        """Recover a capsule's segment chain from disk (the recovery
        state machine: manifest → debris cleanup → tail replay)."""
        log = _CapsuleLog(name, directory)
        manifest_path = os.path.join(directory, _MANIFEST)
        # Crashed atomic rewrites leave .tmp files; they lost the race.
        for fname in os.listdir(directory):
            if fname.endswith(".tmp"):
                os.unlink(os.path.join(directory, fname))
        local = self._local_segment_ids(directory)
        if os.path.exists(manifest_path):
            with open(manifest_path, "rb") as fh:
                wire = encoding.decode(fh.read())
            log.metadata = wire["metadata"]
            log.checkpoint = wire["checkpoint"]
            log.segments = [
                SegmentInfo.from_wire(w) for w in wire["segments"]
            ]
        elif local:
            # Crash between capsule creation and the first manifest
            # write: adopt the lowest segment as the active tail and
            # recover metadata from its first frame.
            adopt = min(local)
            for seg_id, path in local.items():
                if seg_id != adopt:
                    os.unlink(path)
            log.segments = [SegmentInfo(adopt)]
            self._log_event("manifest_rebuilt", name, segment=adopt)
        else:
            raise StorageError(
                f"capsule dir {directory} has no manifest and no segments"
            )
        known = {seg.id for seg in log.segments}
        for seg_id, path in local.items():
            if seg_id not in known:
                # Debris from a crashed seal/compact that never reached
                # its manifest commit point.
                os.unlink(path)
                idx = self._idx_path(directory, seg_id)
                if os.path.exists(idx):
                    os.unlink(idx)
                self._log_event("debris_removed", name, segment=seg_id)
        for seg in log.segments:
            if seg.tier == "object" and seg.id in local:
                # Crash after PUT+manifest but before the local unlink.
                os.unlink(local[seg.id])
                self._log_event("tier_unlink_replayed", name, segment=seg.id)
        if not log.segments or log.segments[-1].sealed:
            # Crash between the seal's manifest commit and creating the
            # next active file: open a fresh tail.
            next_id = max((seg.id for seg in log.segments), default=0) + 1
            log.segments.append(SegmentInfo(next_id))
        active = log.active
        stale_idx = self._idx_path(directory, active.id)
        if os.path.exists(stale_idx):
            # An interrupted seal wrote the index but never committed
            # the manifest; the tail replay below recomputes it.
            os.unlink(stale_idx)
            self._log_event("stale_index_removed", name, segment=active.id)
        self._replay_tail(log)
        if log.metadata is None and log.segments:
            log.metadata = self._metadata_from_frames(log)
        return log

    def _replay_tail(self, log: _CapsuleLog) -> None:
        """Replay the active segment, truncating at the first torn or
        corrupt frame, and rebuild its in-memory index."""
        path = self._seg_path(log.dir, log.active.id)
        if not os.path.exists(path):
            with open(path, "wb") as fh:
                fh.write(_MAGIC)
                fh.flush()
                os.fsync(fh.fileno())
            log.size = len(_MAGIC)
            return
        with open(path, "rb") as fh:
            data = fh.read()
        good = len(_MAGIC)
        active = log.active
        log.reset_active_index()
        active.records = 0
        active.first = 0
        active.last = 0
        if data[: len(_MAGIC)] != _MAGIC:
            good = 0  # torn creation: not even the magic survived
        else:
            offset = len(_MAGIC)
            size = len(data)
            while offset + _FRAME.size <= size:
                tag, length, crc = _FRAME.unpack_from(data, offset)
                end = offset + _FRAME.size + length
                if end > size:
                    break  # torn payload
                payload = data[offset + _FRAME.size : end]
                if zlib.crc32(payload) != crc:
                    break  # corrupt frame: everything after is suspect
                if chr(tag) == _TAG_RECORD:
                    self._index_entry(
                        log, _TAG_RECORD, encoding.decode(payload), offset
                    )
                offset = end
                good = offset
        if good < len(data) or len(data) < len(_MAGIC):
            # The second clause catches a 0-byte (or sub-magic) active
            # file — a crash between creation and the magic write —
            # which must still get the header rewritten.
            dropped = len(data) - good
            with open(path, "r+b") as fh:
                fh.truncate(good)
                if good == 0:
                    fh.write(_MAGIC)
                    good = len(_MAGIC)
                fh.flush()
                os.fsync(fh.fileno())
            self._log_event(
                "tail_truncated",
                log.name,
                segment=log.active.id,
                dropped_bytes=dropped,
                offset=good,
            )
        log.size = good
        log.active.bytes = good
        log.pending_fsync = 0

    def _metadata_from_frames(self, log: _CapsuleLog) -> dict | None:
        """Recover metadata from the first frame of the oldest segment
        (used only when a creation-time crash lost the manifest)."""
        buf = self._segment_buffer(log, log.segments[0])
        for tag, payload, _ in _iter_frames(buf):
            if tag == _TAG_METADATA:
                return encoding.decode(payload)
            break
        return None

    # -- StorageBackend contract ---------------------------------------------

    def store_metadata(self, name: GdpName, metadata_wire: dict) -> None:
        """Persist capsule metadata (idempotent); creates the capsule's
        segment chain on first call."""
        self._check_alive()
        log = self._log_for(name)
        if log is not None:
            if log.metadata is None:
                log.metadata = metadata_wire
                self._write_manifest(log)
            return
        directory = self._dir(name)
        os.makedirs(directory, exist_ok=True)
        log = _CapsuleLog(name, directory)
        log.metadata = metadata_wire
        log.segments = [SegmentInfo(1)]
        path = self._seg_path(directory, 1)
        blob = encoding.encode(metadata_wire)
        frame = _FRAME.pack(ord(_TAG_METADATA), len(blob), zlib.crc32(blob))
        with open(path, "wb") as fh:
            fh.write(_MAGIC + frame + blob)
            fh.flush()
            os.fsync(fh.fileno())
        log.size = len(_MAGIC) + _FRAME.size + len(blob)
        log.active.bytes = log.size
        self._write_manifest(log)
        self._logs[name] = log

    def load_metadata(self, name: GdpName) -> dict | None:
        """The stored metadata wire form, or None."""
        log = self._log_for(name)
        return None if log is None else log.metadata

    def append_record(self, name: GdpName, record_wire: dict) -> None:
        """Persist one record wire form."""
        self._append_entries(name, [(_TAG_RECORD, record_wire)])

    def append_heartbeat(self, name: GdpName, heartbeat_wire: dict) -> None:
        """Persist one heartbeat wire form."""
        self._append_entries(name, [(_TAG_HEARTBEAT, heartbeat_wire)])

    def append_entries(
        self, name: GdpName, entries: list[tuple[str, dict]]
    ) -> int:
        """Persist a run of ``(tag, wire)`` entries with one buffered
        write and (under ``FsyncPolicy("always")``) one fsync — the
        batched-append and anti-entropy fast path."""
        for tag, _ in entries:
            if tag not in (_TAG_RECORD, _TAG_HEARTBEAT):
                raise StorageError(f"cannot batch-append tag {tag!r}")
        return self._append_entries(name, entries)

    def _append_entries(
        self, name: GdpName, entries: list[tuple[str, dict]]
    ) -> int:
        self._check_alive()
        log = self._require(name)
        self._crashpoint("append.before")
        chunk = bytearray()
        appended = 0

        def commit() -> None:
            """Move the staged chunk into the active tail's buffer."""
            nonlocal chunk
            if not chunk:
                return
            log.buffer += chunk
            log.size += len(chunk)
            log.active.bytes = log.size
            log.pending_fsync += len(chunk)
            chunk = bytearray()

        sync_index = self.sync_index
        name_raw = name.raw
        hooked = self.crash_hook is not None
        segment_bytes = self.segment_bytes
        for tag, wire in entries:
            blob = encoding.encode(wire)
            digest = None
            if sync_index and tag == _TAG_RECORD:
                bucket = log.leaves.get(wire["seqno"])
                if bucket is not None:
                    digest = record_wire_digest(name_raw, wire)
                    if digest in bucket:
                        continue  # duplicate already in the tail
            frame = _FRAME.pack(ord(tag[0]), len(blob), zlib.crc32(blob))
            offset = log.size + len(chunk)
            if hooked:
                try:
                    self._crashpoint("append.torn")
                except SimulatedCrash:
                    # Power loss mid-write: whatever was buffered plus
                    # half of this frame reaches the platter, then
                    # lights out.
                    fh = self._handle(log)
                    if log.buffer:
                        fh.write(bytes(log.buffer))
                        log.buffer.clear()
                    torn = (bytes(chunk) + frame + blob)[: len(chunk) + 7]
                    fh.write(torn)
                    raise
            chunk += frame
            chunk += blob
            self._index_entry(log, tag, wire, offset, digest)
            appended += 1
            if log.size + len(chunk) >= segment_bytes:
                # Roll over mid-batch: a replication burst pushed
                # through append_entries must not grow one unbounded
                # segment just because it arrived as a single call.
                commit()
                self._seal(log)
        commit()
        self._crashpoint("append.buffered")
        policy = self.fsync_policy
        if policy.should_fsync(log.pending_fsync):
            self._fsync_active(log)
        elif len(log.buffer) >= self.flush_bytes:
            self._flush(log)
        self._crashpoint("append.after")
        return appended

    def _index_entry(
        self,
        log: _CapsuleLog,
        tag: str,
        wire: dict,
        offset: int,
        digest: bytes | None = None,
    ) -> None:
        """Fold one record into the active segment's in-memory index
        (shared by the append path and tail replay).  *digest* is the
        record digest when the caller already computed it for the
        duplicate check — hashing is the append path's largest
        per-record cost, so it is never paid twice."""
        if tag != _TAG_RECORD:
            return
        seqno = wire["seqno"]
        active = log.active
        active.records += 1
        if active.first == 0 or seqno < active.first:
            active.first = seqno
        if seqno >= active.last:
            if log.countdown == 0:
                log.sparse.append((seqno, offset))
                log.countdown = self.sparse_every
            log.countdown -= 1
            active.last = seqno
        else:
            log.extras.append((seqno, offset))
        if self.sync_index:
            if digest is None:
                digest = record_wire_digest(log.name.raw, wire)
            bucket = log.leaves.setdefault(seqno, [])
            if digest not in bucket:
                bucket.append(digest)

    # -- sealing / tiering / compaction --------------------------------------

    def _index_wire(self, log: _CapsuleLog) -> dict:
        active = log.active
        return {
            "segment": active.id,
            "records": active.records,
            "first": active.first,
            "last": active.last,
            "bytes": log.size,
            "sparse": _pack_pairs(log.sparse),
            "extras": _pack_pairs(log.extras),
            "leaves": _pack_leaves(log.leaves),
        }

    def _seal(self, log: _CapsuleLog) -> None:
        """Seal the active segment and open a fresh tail (crash-safe:
        the manifest rewrite is the commit point)."""
        self._crashpoint("seal.before")
        self._fsync_active(log)
        active = log.active
        idx_path = self._idx_path(log.dir, active.id)
        self._write_atomic(idx_path, encoding.encode(self._index_wire(log)))
        self._crashpoint("seal.index_written")
        active.sealed = True
        active.bytes = log.size
        next_id = max(seg.id for seg in log.segments) + 1
        log.segments.append(SegmentInfo(next_id))
        self._crashpoint("seal.pre_manifest")
        self._write_manifest(log)
        self._crashpoint("seal.post_manifest")
        self._release_handle(log.name)
        path = self._seg_path(log.dir, next_id)
        with open(path, "wb") as fh:
            fh.write(_MAGIC)
            fh.flush()
            os.fsync(fh.fileno())
        log.size = len(_MAGIC)
        log.pending_fsync = 0
        log.reset_active_index()
        if self.auto_compact and log.checkpoint:
            self._maybe_compact(log)
        if self.tier is not None:
            self._maybe_tier(log)

    def _maybe_tier(self, log: _CapsuleLog) -> None:
        sealed_local = [
            seg
            for seg in log.segments
            if seg.sealed and seg.tier == "local"
        ]
        for seg in sealed_local[: -self.hot_segments or None]:
            self._tier_segment(log, seg)

    def _tier_segment(self, log: _CapsuleLog, seg: SegmentInfo) -> None:
        self._crashpoint("tier.before")
        path = self._seg_path(log.dir, seg.id)
        with open(path, "rb") as fh:
            blob = fh.read()
        key = self._tier_key(log.name, seg.id)
        self.tier.put(key, blob)
        self._crashpoint("tier.uploaded")
        seg.tier = "object"
        self._write_manifest(log)
        self._crashpoint("tier.pre_unlink")
        self._drop_mmap(log.name, seg.id)
        os.unlink(path)
        self._log_event("segment_tiered", log.name, segment=seg.id)

    def note_checkpoint(self, name: GdpName, seqno: int) -> None:
        """Record that *seqno* is a checkpoint record: every segment
        wholly below it is eligible for compaction.  Persisted lazily —
        the next manifest rewrite carries it; losing it to a crash only
        delays compaction."""
        log = self._require(name)
        if seqno > log.checkpoint:
            log.checkpoint = seqno

    def _compact_run(self, log: _CapsuleLog) -> list[SegmentInfo]:
        """The first maximal *contiguous* run of sealed local segments
        wholly below the checkpoint — contiguity keeps load_entries'
        write order intact across the merge."""
        run: list[SegmentInfo] = []
        for seg in log.segments:
            if (
                seg.sealed
                and seg.tier == "local"
                and seg.last <= log.checkpoint
                and seg.records > 0
            ):
                run.append(seg)
            elif run:
                break
            elif seg.tier != "object":
                break  # a non-eligible local segment ends any hope
        return run

    def _maybe_compact(self, log: _CapsuleLog) -> None:
        run = self._compact_run(log)
        if len(run) >= self.compact_min_segments:
            self._compact(log, run)

    def compact(self, name: GdpName) -> int:
        """Merge the contiguous run of sealed local segments below the
        last noted checkpoint into one; returns segments merged."""
        self._check_alive()
        log = self._require(name)
        run = self._compact_run(log)
        if len(run) < 2:
            return 0
        return self._compact(log, run)

    def _compact(self, log: _CapsuleLog, eligible: list[SegmentInfo]) -> int:
        """Merge *eligible* (sealed, local, all below the checkpoint)
        into one fresh segment, dropping superseded heartbeats."""
        self._crashpoint("compact.before")
        merged_id = max(seg.id for seg in log.segments) + 1
        frames = bytearray(_MAGIC)
        merged = SegmentInfo(merged_id, sealed=True)
        sparse: list[list[int]] = []
        extras: list[list[int]] = []
        leaves: dict[int, list[bytes]] = {}
        countdown = 0
        # Heartbeats below the checkpoint are superseded by the newest
        # one among the merged segments: the chain strategies all build
        # position proofs from any later heartbeat, so only the newest
        # anchor needs to survive (records are never dropped).
        scanned = []
        for seg in eligible:
            buf = self._segment_buffer(log, seg)
            for tag, payload, _ in _iter_frames(buf):
                scanned.append((tag, payload))
        hb_indices = [
            i for i, (tag, _) in enumerate(scanned) if tag == _TAG_HEARTBEAT
        ]
        last_hb_offset = hb_indices[-1] if hb_indices else None
        for i, (tag, payload) in enumerate(scanned):
            if tag == _TAG_HEARTBEAT and i != last_hb_offset:
                continue
            offset = len(frames)
            frames += _FRAME.pack(ord(tag), len(payload), zlib.crc32(payload))
            frames += payload
            if tag != _TAG_RECORD:
                continue
            wire = encoding.decode(payload)
            seqno = wire["seqno"]
            merged.records += 1
            if merged.first == 0 or seqno < merged.first:
                merged.first = seqno
            if seqno >= merged.last:
                if countdown == 0:
                    sparse.append([seqno, offset])
                    countdown = self.sparse_every
                countdown -= 1
                merged.last = seqno
            else:
                extras.append([seqno, offset])
            if self.sync_index:
                digest = record_wire_digest(log.name.raw, wire)
                bucket = leaves.setdefault(seqno, [])
                if digest not in bucket:
                    bucket.append(digest)
        merged.bytes = len(frames)
        seg_path = self._seg_path(log.dir, merged_id)
        with open(seg_path, "wb") as fh:
            fh.write(bytes(frames))
            fh.flush()
            os.fsync(fh.fileno())
        idx_wire = {
            "segment": merged_id,
            "records": merged.records,
            "first": merged.first,
            "last": merged.last,
            "bytes": merged.bytes,
            "sparse": _pack_pairs(sparse),
            "extras": _pack_pairs(extras),
            "leaves": _pack_leaves(leaves),
        }
        self._write_atomic(
            self._idx_path(log.dir, merged_id), encoding.encode(idx_wire)
        )
        self._crashpoint("compact.merged")
        merged_ids = {seg.id for seg in eligible}
        position = log.segments.index(eligible[0])
        log.segments = [
            seg for seg in log.segments if seg.id not in merged_ids
        ]
        log.segments.insert(position, merged)
        self._write_manifest(log)
        self._crashpoint("compact.pre_cleanup")
        for seg_id in merged_ids:
            self._drop_mmap(log.name, seg_id)
            self._indexes.pop((log.name, seg_id), None)
            for path in (
                self._seg_path(log.dir, seg_id),
                self._idx_path(log.dir, seg_id),
            ):
                if os.path.exists(path):
                    os.unlink(path)
        self._log_event(
            "compacted",
            log.name,
            merged=sorted(merged_ids),
            into=merged_id,
            records=merged.records,
        )
        return len(merged_ids)

    # -- reads ---------------------------------------------------------------

    def _drop_mmap(self, name: GdpName, seg_id: int) -> None:
        # Drop the cache reference only — never .close(): a live
        # load_entries snapshot may still read through the mapping
        # (valid even after the file is unlinked); the OS unmaps when
        # the last reference is collected.
        self._mmaps.pop((name, seg_id), None)

    def _segment_buffer(self, log: _CapsuleLog, seg: SegmentInfo):
        """The full byte content of a segment: mmap for local sealed
        files, tier read-through (LRU byte-budget cache) for cold ones,
        a flushed file read for the active tail."""
        if not seg.sealed:
            self._flush(log)
            with open(self._seg_path(log.dir, seg.id), "rb") as fh:
                return fh.read()
        if seg.tier == "object":
            key = self._tier_key(log.name, seg.id)
            cached = self._tier_cache.get(key)
            if cached is not None:
                self._tier_cache.move_to_end(key)
                return cached
            blob = self.tier.get(key)
            if blob is None:
                raise StorageError(f"tiered segment missing: {key}")
            self._tier_cache[key] = blob
            self._tier_cache_used += len(blob)
            while self._tier_cache_used > self.tier_cache_bytes and len(
                self._tier_cache
            ) > 1:
                _, old = self._tier_cache.popitem(last=False)
                self._tier_cache_used -= len(old)
            return blob
        cache_key = (log.name, seg.id)
        mapped = self._mmaps.get(cache_key)
        if mapped is not None:
            self._mmaps.move_to_end(cache_key)
            return mapped
        with open(self._seg_path(log.dir, seg.id), "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        self._mmaps[cache_key] = mapped
        while len(self._mmaps) > self._MAX_MMAPS:
            self._mmaps.popitem(last=False)  # GC unmaps; see _drop_mmap
        return mapped

    def load_entries(self, name: GdpName) -> Iterator[tuple[str, dict]]:
        """Yield (tag, wire) entries in write order across segments.

        Snapshot semantics: the segment list and every segment's bytes
        are captured when this is *called* — appends racing the
        iteration are not seen (sealed segments are immutable; the tail
        is flushed and read once; an unlinked-under-us local file stays
        readable through its mmap).  Decoding is lazy, so a 10M-record
        capsule never materializes all wires at once.
        """
        log = self._log_for(name)
        if log is None:
            return iter(())
        buffers = [
            (seg.id, self._segment_buffer(log, seg))
            for seg in list(log.segments)
        ]

        def entries() -> Iterator[tuple[str, dict]]:
            for seg_id, buf in buffers:
                for tag, payload, offset in _iter_frames(buf):
                    if zlib.crc32(payload) != _crc_at(buf, offset):
                        # Sealed-frame rot: stop this segment (the rest
                        # is suspect) but keep later segments; the
                        # recovery cross-check in the server surfaces
                        # the gap as an integrity event.
                        self._log_event(
                            "corrupt_frame_skipped",
                            name,
                            segment=seg_id,
                            offset=offset,
                        )
                        break
                    yield tag, encoding.decode(payload)

        return entries()

    def read_record(self, name: GdpName, seqno: int) -> dict | None:
        """Point-read one record wire by seqno (newest match wins):
        sparse-index seek within the owning segment instead of a scan —
        the ROADMAP's "random access via per-segment indexes"."""
        log = self._log_for(name)
        if log is None:
            return None
        for seg in reversed(log.segments):
            if seg.records == 0 or not (seg.first <= seqno <= seg.last):
                continue
            if seg.sealed:
                idx = self._segment_index(log, seg)
                start = _sparse_seek(idx["sparse"], seqno)
                extras = dict((s, o) for s, o in idx["extras"])
            else:
                start = _sparse_seek(log.sparse, seqno)
                extras = dict(log.extras)
            exact = extras.get(seqno)
            buf = self._segment_buffer(log, seg)
            if exact is not None:
                wire = _decode_frame_at(buf, exact)
                if wire is not None and wire.get("seqno") == seqno:
                    return wire
            if start is None:
                continue
            for tag, payload, _ in _iter_frames(buf, start):
                if tag != _TAG_RECORD:
                    continue
                wire = encoding.decode(payload)
                found = wire["seqno"]
                if found == seqno:
                    return wire
                if found > seqno:
                    break
        return None

    def _segment_index(self, log: _CapsuleLog, seg: SegmentInfo) -> dict:
        key = (log.name, seg.id)
        idx = self._indexes.get(key)
        if idx is not None:
            self._indexes.move_to_end(key)
            return idx
        path = self._idx_path(log.dir, seg.id)
        try:
            with open(path, "rb") as fh:
                idx = encoding.decode(fh.read())
        except OSError as exc:
            raise StorageError(f"index read failed: {exc}") from exc
        # Unpack the struct-packed fields once at load; consumers see
        # plain (seqno, offset) pairs and (seqno, digests) leaves.
        idx["sparse"] = _unpack_pairs(idx["sparse"])
        idx["extras"] = _unpack_pairs(idx["extras"])
        idx["leaves"] = _unpack_leaves(idx["leaves"])
        self._indexes[key] = idx
        while len(self._indexes) > self._MAX_INDEXES:
            self._indexes.popitem(last=False)
        return idx

    def sync_leaves(self, name: GdpName) -> dict[int, bytes]:
        """The persisted Merkle sync-index leaves for every seqno whose
        records live wholly in sealed segments: ``seqno -> b"".join(``
        sorted digests``)``, exactly :meth:`DataCapsule.sync_leaf`'s
        value.  Seqnos with records still in the active tail are
        omitted (the capsule computes those lazily), so a seeded cache
        can never mask a tail divergence."""
        log = self._log_for(name)
        if log is None or not self.sync_index:
            return {}
        merged: dict[int, set[bytes]] = {}
        for seg in log.segments:
            if not seg.sealed or seg.records == 0:
                continue
            idx = self._segment_index(log, seg)
            for seqno, digests in idx["leaves"]:
                merged.setdefault(seqno, set()).update(digests)
        for seqno in log.leaves:
            merged.pop(seqno, None)
        return {
            seqno: b"".join(sorted(digests))
            for seqno, digests in merged.items()
        }

    # -- misc contract -------------------------------------------------------

    def list_capsules(self) -> list[GdpName]:
        """Names of all capsules with stored state."""
        names = []
        for entry in sorted(os.listdir(self.root)):
            if not os.path.isdir(os.path.join(self.root, entry)):
                continue
            try:
                names.append(GdpName.from_hex(entry))
            except Exception:
                continue
        return names

    def delete_capsule(self, name: GdpName) -> None:
        """Remove all state for a capsule, including tiered objects."""
        self._check_alive()
        log = self._logs.pop(name, None)
        self._release_handle(name)
        directory = self._dir(name)
        segments = log.segments if log is not None else []
        if log is None and os.path.isdir(directory):
            try:
                log = self._open_log(name, directory)
                segments = log.segments
            except StorageError:
                segments = []
        for seg in segments:
            self._drop_mmap(name, seg.id)
            self._indexes.pop((name, seg.id), None)
            if seg.tier == "object" and self.tier is not None:
                key = self._tier_key(name, seg.id)
                old = self._tier_cache.pop(key, None)
                if old is not None:
                    self._tier_cache_used -= len(old)
                self.tier.delete(key)
        shutil.rmtree(directory, ignore_errors=True)

    def segments(self, name: GdpName) -> list[SegmentInfo]:
        """Snapshot of the capsule's segment chain (tests/bench)."""
        log = self._require(name)
        return list(log.segments)

    def sync(self) -> None:
        """Flush and fsync every open tail (the drain path: even under
        ``FsyncPolicy("drain")`` nothing buffered survives in volatile
        memory after a sync)."""
        self._check_alive()
        for log in self._logs.values():
            if log.name in self._handles or log.buffer or log.pending_fsync:
                self._fsync_active(log)

    def close(self) -> None:
        """Flush buffers and release every OS resource; the store can
        keep being used (handles reopen lazily)."""
        for log in self._logs.values():
            if log.buffer:
                self._flush(log)
        for fh in self._handles.values():
            fh.close()
        self._handles.clear()
        self._mmaps.clear()  # GC unmaps; see _drop_mmap


def _iter_frames(buf, start: int = len(_MAGIC)):
    """Yield ``(tag, payload, frame_offset)`` for intact frames; stops
    at the first torn frame (CRC is *not* checked here — callers that
    care verify it, keeping the sealed-segment hot path cheap)."""
    size = len(buf)
    offset = start
    while offset + _FRAME.size <= size:
        tag, length, _ = _FRAME.unpack_from(buf, offset)
        end = offset + _FRAME.size + length
        if end > size:
            break
        yield chr(tag), bytes(buf[offset + _FRAME.size : end]), offset
        offset = end


def _crc_at(buf, offset: int) -> int:
    _, _, crc = _FRAME.unpack_from(buf, offset)
    return crc


def _decode_frame_at(buf, offset: int) -> dict | None:
    if offset + _FRAME.size > len(buf):
        return None
    tag, length, crc = _FRAME.unpack_from(buf, offset)
    end = offset + _FRAME.size + length
    if end > len(buf):
        return None
    payload = bytes(buf[offset + _FRAME.size : end])
    if zlib.crc32(payload) != crc:
        return None
    return encoding.decode(payload)


def _sparse_seek(sparse, seqno: int) -> int | None:
    """Offset of the last sparse entry at-or-below *seqno* (binary
    search), or None when the segment's indexed range starts above."""
    lo, hi = 0, len(sparse)
    while lo < hi:
        mid = (lo + hi) // 2
        if sparse[mid][0] <= seqno:
            lo = mid + 1
        else:
            hi = mid
    if lo == 0:
        return None
    return sparse[lo - 1][1]
