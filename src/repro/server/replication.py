"""Leaderless anti-entropy replication (§V-A, §VI-B).

"For any missing records, DataCapsule-servers can synchronize their
state in the background. This effectively leads us to a leaderless
replication design, which is much more efficient in presence of
failures."

The protocol is classic state-based CRDT anti-entropy: a server
periodically picks a sibling replica, exchanges compact state summaries
(seqno -> digests), fetches whatever it is missing, and inserts the
records through the normal validation path.  Because capsule state is a
join-semilattice (record-set union), rounds are idempotent and
order-independent; transient *holes* left by the single-ack fast path
heal as soon as any replica that holds the record is reachable.
"""

from __future__ import annotations

from typing import Generator

from repro.capsule.heartbeat import Heartbeat
from repro.capsule.records import Record
from repro.errors import GdpError
from repro.naming.names import GdpName
from repro.server.dcserver import DataCapsuleServer, HostedCapsule

__all__ = ["AntiEntropyDaemon", "sync_once"]


def sync_once(
    server: DataCapsuleServer,
    capsule_name: GdpName,
    sibling: GdpName,
    *,
    timeout: float = 15.0,
) -> Generator:
    """One synchronization round with one sibling (a sim process body);
    returns the number of records fetched."""
    hosted = server.hosted[capsule_name]
    try:
        reply = yield server.rpc(
            sibling,
            {"op": "sync_summary", "capsule": capsule_name.raw},
            timeout=timeout,
        )
    except GdpError:
        return 0
    body = reply.get("body", reply)
    if not body.get("ok"):
        return 0
    missing = hosted.capsule.missing_from(body["summary"])
    if not missing:
        # Still absorb heartbeats we might lack (frontier can advance
        # even when record sets match).
        return 0
    try:
        reply = yield server.rpc(
            sibling,
            {
                "op": "sync_fetch",
                "capsule": capsule_name.raw,
                "digests": missing,
            },
            timeout=2 * timeout,
        )
    except GdpError:
        return 0
    body = reply.get("body", reply)
    if not body.get("ok"):
        return 0
    fetched = 0
    for record_wire in body.get("records", []):
        try:
            record = Record.from_wire(capsule_name, record_wire)
            if hosted.capsule.insert(record, enforce_strategy=False):
                server.storage.append_record(capsule_name, record.to_wire())
                fetched += 1
        except GdpError:
            continue  # a malicious sibling cannot poison us
    for heartbeat_wire in body.get("heartbeats", []):
        try:
            heartbeat = Heartbeat.from_wire(heartbeat_wire)
            if hosted.capsule.add_heartbeat(heartbeat):
                server.storage.append_heartbeat(
                    capsule_name, heartbeat.to_wire()
                )
        except GdpError:
            continue
    return fetched


class AntiEntropyDaemon:
    """Background process syncing every hosted capsule round-robin.

    ``interval`` is the pause between rounds; each round syncs each
    capsule with one sibling (rotating through siblings so full pairwise
    coverage happens over successive rounds).
    """

    def __init__(self, server: DataCapsuleServer, interval: float = 5.0):
        self.server = server
        self.interval = interval
        self.rounds = 0
        self.records_fetched = 0
        self._running = False

    def start(self) -> None:
        """Start the background process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.server.sim.spawn(self._loop(), name=f"antientropy:{self.server.node_id}")

    def stop(self) -> None:
        """Stop after the current round."""
        self._running = False

    def _loop(self) -> Generator:
        turn = 0
        while self._running:
            yield self.interval
            if self.server.crashed:
                continue
            for capsule_name in list(self.server.hosted):
                hosted: HostedCapsule = self.server.hosted[capsule_name]
                if not hosted.siblings:
                    continue
                sibling = hosted.siblings[turn % len(hosted.siblings)]
                # A gossip round must not outwait its own period, or a
                # dead sibling head-of-line-blocks the daemon.
                fetched = yield from sync_once(
                    self.server, capsule_name, sibling,
                    timeout=max(self.interval, 1.0),
                )
                self.records_fetched += fetched
            self.rounds += 1
            turn += 1
