"""Leaderless anti-entropy replication (§V-A, §VI-B) — Merkle-delta.

"For any missing records, DataCapsule-servers can synchronize their
state in the background. This effectively leads us to a leaderless
replication design, which is much more efficient in presence of
failures."

The original protocol shipped a full seqno->digest map every round and
one record per fetch entry — O(capsule length) bytes per round, hopeless
at scale.  The protocol here is bandwidth-proportional to *divergence*:

1. ``sync_root`` — the peer answers with its tip seqno and one Merkle
   root over its whole sync index (see
   :meth:`~repro.capsule.capsule.DataCapsule.range_root`).  Matching
   roots end the round after ~100 bytes on the wire.
2. ``sync_nodes`` — on mismatch, the shared prefix is binary-bisected:
   each round asks for the roots of the current divergent subranges
   (at most ``SyncConfig.max_ranges`` per request) and keeps only the
   halves that differ, down to single seqnos.  O(log n) round trips,
   O(d·log n) hashes for d divergent records.
3. ``sync_fetch_batch`` — divergent seqnos plus the missing suffix are
   fetched in size-capped record batches with a windowed in-flight
   limit and deterministic exponential retry/backoff.

Records and their heartbeats are inserted through the normal validation
path (a malicious sibling cannot poison us), and per-(capsule, peer)
:class:`SyncSession` bookkeeping feeds the daemon's stats.  The old
full-scan protocol remains as :func:`full_sync_once` — the baseline the
replication bench pairs against (``repro bench --suite replication``).

Because capsule state is a join-semilattice (record-set union), rounds
stay idempotent and order-independent; transient *holes* left by the
single-ack fast path heal as soon as any replica that holds the record
is reachable.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Generator

from repro.capsule.heartbeat import Heartbeat
from repro.capsule.records import Record
from repro.errors import GdpError
from repro.naming.names import GdpName
from repro.server.dcserver import DataCapsuleServer, HostedCapsule

__all__ = [
    "AntiEntropyDaemon",
    "SyncConfig",
    "SyncSession",
    "sync_once",
    "full_sync_once",
]


@dataclass(frozen=True)
class SyncConfig:
    """Tunables for one delta-sync round."""

    #: max seqnos requested per fetch batch
    batch_records: int = 64
    #: server-side reply budget per batch (bytes of records+heartbeats)
    batch_bytes: int = 64 * 1024
    #: fetch batches kept in flight concurrently
    window: int = 4
    #: bisection probes per sync_nodes request
    max_ranges: int = 64
    #: bisection depth safety valve (2^64 seqnos is beyond any capsule)
    max_rounds: int = 64
    #: per-batch retry attempts after the first failure
    max_retries: int = 2
    #: deterministic exponential backoff: base * 2^attempt, capped
    backoff_base: float = 0.25
    backoff_max: float = 4.0


DEFAULT_CONFIG = SyncConfig()


@dataclass
class SyncSession:
    """Per-(capsule, peer) sync bookkeeping kept across rounds."""

    capsule: GdpName
    peer: GdpName
    rounds: int = 0
    records_fetched: int = 0
    heartbeats_fetched: int = 0
    batches: int = 0
    retries: int = 0
    failures: int = 0
    last_synced: float = field(default=-1.0)


def _reply_body(reply) -> dict | None:
    body = reply.get("body", reply) if isinstance(reply, dict) else None
    if not isinstance(body, dict) or not body.get("ok"):
        return None
    return body


def _absorb(
    server: DataCapsuleServer,
    hosted: HostedCapsule,
    body: dict,
    session: SyncSession | None,
) -> int:
    """Insert fetched records/heartbeats through validation; returns how
    many records were new."""
    capsule_name = hosted.capsule.name
    fetched = 0
    entries: list[tuple[str, dict]] = []
    for record_wire in body.get("records", []):
        try:
            record = Record.from_wire(capsule_name, record_wire)
            if hosted.capsule.insert(record, enforce_strategy=False):
                entries.append(("r", record.to_wire()))
                fetched += 1
        except GdpError:
            continue  # a malicious sibling cannot poison us
    for heartbeat_wire in body.get("heartbeats", []):
        try:
            heartbeat = Heartbeat.from_wire(heartbeat_wire)
            if hosted.capsule.add_heartbeat(heartbeat):
                entries.append(("h", heartbeat.to_wire()))
                if session is not None:
                    session.heartbeats_fetched += 1
        except GdpError:
            continue
    if entries:
        # One buffered write (and one fsync) for the whole validated
        # batch instead of a storage round trip per frame.
        server.storage.append_entries(capsule_name, entries)
    return fetched


def _bisect(
    server: DataCapsuleServer,
    capsule_name: GdpName,
    sibling: GdpName,
    capsule,
    common: int,
    timeout: float,
    config: SyncConfig,
    session: SyncSession | None,
) -> Generator:
    """Find the divergent seqnos in the shared prefix ``[1, common]``
    (already known to mismatch) by binary bisection over range roots."""
    if common == 1:
        return [1]
    divergent: list[int] = []
    worklist: list[tuple[int, int]] = [(1, common)]
    rounds = 0
    while worklist and rounds < config.max_rounds:
        rounds += 1
        probes: list[tuple[int, int]] = []
        for lo, hi in worklist:
            mid = (lo + hi) // 2
            probes.append((lo, mid))
            probes.append((mid + 1, hi))
        worklist = []
        # One round trip per level: every probe chunk of this level is
        # in flight at once (bisection is only sequential across levels).
        inflight = []
        for start in range(0, len(probes), config.max_ranges):
            chunk = probes[start:start + config.max_ranges]
            inflight.append((chunk, server.rpc(
                sibling,
                {
                    "op": "sync_nodes",
                    "capsule": capsule_name.raw,
                    "ranges": [[lo, hi] for lo, hi in chunk],
                },
                timeout=timeout,
            )))
        failed = False
        for chunk, future in inflight:
            try:
                reply = yield future
                body = _reply_body(reply)
            except GdpError:
                body = None
            hashes = body.get("hashes", []) if body is not None else None
            if hashes is None or len(hashes) != len(chunk):
                if session is not None:
                    session.failures += 1
                failed = True
                continue
            for (lo, hi), remote_root in zip(chunk, hashes):
                if remote_root == capsule.range_root(lo, hi):
                    continue
                if lo == hi:
                    divergent.append(lo)
                else:
                    worklist.append((lo, hi))
        if failed:
            # Partial result: unrefined ranges heal on a later round.
            break
    return sorted(divergent)


def _fetch_batches(
    server: DataCapsuleServer,
    hosted: HostedCapsule,
    sibling: GdpName,
    seqnos: list[int],
    timeout: float,
    config: SyncConfig,
    session: SyncSession | None,
) -> Generator:
    """Windowed, size-capped, retried record transfer; returns how many
    records were fetched."""
    capsule_name = hosted.capsule.name
    pending: deque = deque()
    for start in range(0, len(seqnos), config.batch_records):
        pending.append((seqnos[start:start + config.batch_records], 0))
    inflight: deque = deque()
    fetched = 0
    while pending or inflight:
        while pending and len(inflight) < config.window:
            chunk, attempt = pending.popleft()
            future = server.rpc(
                sibling,
                {
                    "op": "sync_fetch_batch",
                    "capsule": capsule_name.raw,
                    "seqnos": list(chunk),
                    "max_bytes": config.batch_bytes,
                },
                timeout=timeout,
            )
            inflight.append((chunk, attempt, future))
            if session is not None:
                session.batches += 1
        chunk, attempt, future = inflight.popleft()
        try:
            reply = yield future
            body = _reply_body(reply)
        except GdpError:
            body = None
        if body is None:
            if attempt < config.max_retries:
                if session is not None:
                    session.retries += 1
                yield min(
                    config.backoff_base * (2 ** attempt),
                    config.backoff_max,
                )
                pending.append((chunk, attempt + 1))
            elif session is not None:
                session.failures += 1
            continue
        fetched += _absorb(server, hosted, body, session)
        served = set(body.get("served", chunk))
        leftover = [s for s in chunk if s not in served]
        # The server always serves at least one seqno, so a leftover
        # equal to the whole chunk means a misbehaving peer: drop it
        # rather than loop forever.
        if leftover and len(leftover) < len(chunk):
            pending.append((leftover, 0))
    return fetched


def sync_once(
    server: DataCapsuleServer,
    capsule_name: GdpName,
    sibling: GdpName,
    *,
    timeout: float = 15.0,
    config: SyncConfig | None = None,
    session: SyncSession | None = None,
) -> Generator:
    """One Merkle-delta synchronization round with one sibling (a sim
    process body); returns the number of records fetched."""
    config = config or DEFAULT_CONFIG
    hosted = server.hosted[capsule_name]
    capsule = hosted.capsule
    if session is not None:
        session.rounds += 1
    try:
        reply = yield server.rpc(
            sibling,
            {"op": "sync_root", "capsule": capsule_name.raw},
            timeout=timeout,
        )
    except GdpError:
        if session is not None:
            session.failures += 1
        return 0
    body = _reply_body(reply)
    if body is None:
        if session is not None:
            session.failures += 1
        return 0
    # The tip heartbeat rides on the root reply: the frontier advances
    # even when the record sets already match.
    heartbeat_wire = body.get("heartbeat")
    if heartbeat_wire is not None:
        try:
            heartbeat = Heartbeat.from_wire(heartbeat_wire)
            if capsule.add_heartbeat(heartbeat):
                server.storage.append_heartbeat(
                    capsule_name, heartbeat.to_wire()
                )
        except GdpError:
            pass
    remote_last = int(body.get("last_seqno", 0))
    local_last = capsule.last_seqno
    common = min(local_last, remote_last)
    # The suffix the peer has beyond us is missing by construction.
    candidates = list(range(common + 1, remote_last + 1))
    if common > 0:
        if remote_last == common:
            # The peer's advertised root already covers exactly [1, common].
            remote_common_root = body.get("root")
        else:
            try:
                reply = yield server.rpc(
                    sibling,
                    {
                        "op": "sync_nodes",
                        "capsule": capsule_name.raw,
                        "ranges": [[1, common]],
                    },
                    timeout=timeout,
                )
            except GdpError:
                if session is not None:
                    session.failures += 1
                return 0
            node_body = _reply_body(reply)
            if node_body is None or len(node_body.get("hashes", [])) != 1:
                if session is not None:
                    session.failures += 1
                return 0
            remote_common_root = node_body["hashes"][0]
        if remote_common_root != capsule.range_root(1, common):
            divergent = yield from _bisect(
                server, capsule_name, sibling, capsule,
                common, timeout, config, session,
            )
            candidates = divergent + candidates
    if not candidates:
        if session is not None:
            session.last_synced = server.sim.now
        return 0
    fetched = yield from _fetch_batches(
        server, hosted, sibling, candidates, timeout, config, session
    )
    if session is not None:
        session.records_fetched += fetched
        session.last_synced = server.sim.now
    return fetched


def full_sync_once(
    server: DataCapsuleServer,
    capsule_name: GdpName,
    sibling: GdpName,
    *,
    timeout: float = 15.0,
) -> Generator:
    """The original full-scan protocol: the peer ships its complete
    seqno->digest summary, then every missing record in one reply plus
    every heartbeat it has.  O(capsule length) bytes per round — kept as
    the paired-trial baseline for the replication bench, and as a wire
    -compatibility fallback for pre-delta peers."""
    hosted = server.hosted[capsule_name]
    try:
        reply = yield server.rpc(
            sibling,
            {"op": "sync_summary", "capsule": capsule_name.raw},
            timeout=timeout,
        )
    except GdpError:
        return 0
    body = _reply_body(reply)
    if body is None:
        return 0
    missing = hosted.capsule.missing_from(body["summary"])
    if not missing:
        return 0
    try:
        reply = yield server.rpc(
            sibling,
            {
                "op": "sync_fetch",
                "capsule": capsule_name.raw,
                "digests": missing,
            },
            timeout=2 * timeout,
        )
    except GdpError:
        return 0
    body = _reply_body(reply)
    if body is None:
        return 0
    return _absorb(server, hosted, body, None)


class AntiEntropyDaemon:
    """Background process syncing every hosted capsule round-robin.

    ``interval`` is the nominal pause between rounds; each round syncs
    each capsule with one sibling (rotating through siblings so full
    pairwise coverage happens over successive rounds).

    ``jitter`` desynchronizes the fleet: every pause is drawn uniformly
    from ``interval * [1 - jitter/2, 1 + jitter/2]`` using a dedicated
    seeded RNG (``rng``; defaults to one derived from the server's node
    id), so replicas with the same interval stop firing — and hitting
    the same peers — in lockstep, while simtest replays stay
    byte-identical.
    """

    def __init__(
        self,
        server: DataCapsuleServer,
        interval: float = 5.0,
        *,
        jitter: float = 0.25,
        rng: random.Random | None = None,
        config: SyncConfig | None = None,
    ):
        self.server = server
        self.interval = interval
        self.jitter = jitter
        self.rng = rng or random.Random(f"antientropy:{server.node_id}")
        self.config = config or DEFAULT_CONFIG
        self.rounds = 0
        self.records_fetched = 0
        self.sessions: dict[tuple[GdpName, GdpName], SyncSession] = {}
        self._running = False

    def session_for(
        self, capsule_name: GdpName, sibling: GdpName
    ) -> SyncSession:
        """The persistent per-(capsule, peer) session (created lazily)."""
        key = (capsule_name, sibling)
        session = self.sessions.get(key)
        if session is None:
            session = SyncSession(capsule=capsule_name, peer=sibling)
            self.sessions[key] = session
        return session

    def start(self) -> None:
        """Start the background process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.server.sim.spawn(self._loop(), name=f"antientropy:{self.server.node_id}")

    def stop(self) -> None:
        """Stop after the current round."""
        self._running = False

    def _next_delay(self) -> float:
        if self.jitter <= 0:
            return self.interval
        spread = self.jitter * (self.rng.random() - 0.5)
        return self.interval * (1.0 + spread)

    def _loop(self) -> Generator:
        turn = 0
        while self._running:
            yield self._next_delay()
            if self.server.crashed:
                continue
            for capsule_name in list(self.server.hosted):
                hosted: HostedCapsule = self.server.hosted[capsule_name]
                if not hosted.siblings:
                    continue
                sibling = hosted.siblings[turn % len(hosted.siblings)]
                # A gossip round must not outwait its own period, or a
                # dead sibling head-of-line-blocks the daemon.
                fetched = yield from sync_once(
                    self.server, capsule_name, sibling,
                    timeout=max(self.interval, 1.0),
                    config=self.config,
                    session=self.session_for(capsule_name, sibling),
                )
                self.records_fetched += fetched
            self.rounds += 1
            turn += 1
