"""DataCapsule-servers: storage, durability policies, secure responses,
and leaderless anti-entropy replication."""

from repro.server.dcserver import DataCapsuleServer, HostedCapsule
from repro.server.durability import ALL, ANY, QUORUM, AckPolicy, FsyncPolicy
from repro.server.segmented import (
    CRASH_POINTS,
    SegmentedStore,
    SegmentInfo,
    SimulatedCrash,
)
from repro.server.replication import (
    AntiEntropyDaemon,
    SyncConfig,
    SyncSession,
    full_sync_once,
    sync_once,
)
from repro.server.secure import (
    mac_response,
    sign_response,
    verify_mac_response,
    verify_signed_response,
)
from repro.server.storage import FileStore, MemoryStore, StorageBackend

__all__ = [
    "DataCapsuleServer",
    "HostedCapsule",
    "AckPolicy",
    "ANY",
    "QUORUM",
    "ALL",
    "AntiEntropyDaemon",
    "SyncConfig",
    "SyncSession",
    "sync_once",
    "full_sync_once",
    "FsyncPolicy",
    "StorageBackend",
    "MemoryStore",
    "FileStore",
    "SegmentedStore",
    "SegmentInfo",
    "SimulatedCrash",
    "CRASH_POINTS",
    "sign_response",
    "verify_signed_response",
    "mac_response",
    "verify_mac_response",
]
