"""Storage backends for DataCapsule-servers.

The paper's server "uses SQLite for the back-end storage; each
DataCapsule is stored in its own separate SQLite database" (§VIII) so
random reads are efficient.  Here the same contract is met by two
backends behind one interface:

- :class:`MemoryStore` — dict-backed, for simulations and tests.
- :class:`FileStore` — one append-only log file per capsule
  (length-prefixed canonical-encoded entries) plus an in-memory index
  rebuilt on open; crash-restart tests use it to show that a restarted
  server recovers exactly the records it had acknowledged.

Backends store *wire forms* (dicts of bytes/ints), not live objects —
whatever comes back is re-validated by the capsule layer, so a corrupt
disk shows up as an integrity error, not silent data loss.
"""

from __future__ import annotations

import os
import struct
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Iterator

from repro import encoding
from repro.errors import StorageError
from repro.naming.names import GdpName

__all__ = ["StorageBackend", "MemoryStore", "FileStore", "SegmentedStore"]

_TAG_METADATA = "m"
_TAG_RECORD = "r"
_TAG_HEARTBEAT = "h"


class StorageBackend(ABC):
    """Per-server persistent storage for capsule wire data."""

    @abstractmethod
    def store_metadata(self, name: GdpName, metadata_wire: dict) -> None:
        """Persist capsule metadata (idempotent)."""

    @abstractmethod
    def load_metadata(self, name: GdpName) -> dict | None:
        """The stored metadata wire form, or None."""

    @abstractmethod
    def append_record(self, name: GdpName, record_wire: dict) -> None:
        """Persist one record."""

    @abstractmethod
    def append_heartbeat(self, name: GdpName, heartbeat_wire: dict) -> None:
        """Persist one heartbeat."""

    def append_entries(
        self, name: GdpName, entries: list[tuple[str, dict]]
    ) -> int:
        """Persist a run of ``(tag, wire)`` entries ('r'/'h') in order;
        returns how many were appended.  Backends with buffered frames
        override this to coalesce the run into one write (and one fsync)
        — the batched-append and anti-entropy fast path; the default is
        a plain loop with identical semantics."""
        for tag, wire in entries:
            if tag == _TAG_RECORD:
                self.append_record(name, wire)
            elif tag == _TAG_HEARTBEAT:
                self.append_heartbeat(name, wire)
            else:
                raise StorageError(f"cannot batch-append tag {tag!r}")
        return len(entries)

    @abstractmethod
    def load_entries(self, name: GdpName) -> Iterator[tuple[str, dict]]:
        """Yield ``(tag, wire)`` for every stored entry of a capsule, in
        write order; tags are 'm'/'r'/'h'.

        Conformance contract (asserted by the cross-backend suite):
        write order is preserved even under interleaved branch appends
        (two records at the same seqno come back in the order they were
        appended), and the iterator is a *snapshot at call time* —
        entries appended after ``load_entries`` returns are not seen by
        that iterator."""

    @abstractmethod
    def list_capsules(self) -> list[GdpName]:
        """Names of all capsules with stored state."""

    @abstractmethod
    def delete_capsule(self, name: GdpName) -> None:
        """Remove all state for a capsule."""

    def sync(self) -> None:
        """Flush everything buffered to the durable medium (no-op for
        backends that persist synchronously)."""


class MemoryStore(StorageBackend):
    """Dict-backed storage for simulations and tests.

    Like every :class:`StorageBackend` it models the server's *durable*
    medium: :meth:`DataCapsuleServer.crash` wipes the in-memory capsule
    and session state but leaves the backend intact, and ``restart``
    replays it.  (Simulated crash-restart therefore behaves the same
    over MemoryStore and FileStore; FileStore additionally survives
    real process death, which the FileStore tests exercise.)"""

    def __init__(self):
        self._data: dict[GdpName, list[tuple[str, dict]]] = {}

    def store_metadata(self, name: GdpName, metadata_wire: dict) -> None:
        """Persist capsule metadata (idempotent)."""
        log = self._data.setdefault(name, [])
        if not any(tag == _TAG_METADATA for tag, _ in log):
            log.append((_TAG_METADATA, metadata_wire))

    def load_metadata(self, name: GdpName) -> dict | None:
        """The stored metadata wire form, or None."""
        for tag, wire in self._data.get(name, []):
            if tag == _TAG_METADATA:
                return wire
        return None

    def append_record(self, name: GdpName, record_wire: dict) -> None:
        """Persist one record wire form."""
        self._require(name).append((_TAG_RECORD, record_wire))

    def append_heartbeat(self, name: GdpName, heartbeat_wire: dict) -> None:
        """Persist one heartbeat wire form."""
        self._require(name).append((_TAG_HEARTBEAT, heartbeat_wire))

    def _require(self, name: GdpName) -> list:
        try:
            return self._data[name]
        except KeyError:
            raise StorageError(
                f"capsule {name.human()} is not hosted here"
            ) from None

    def load_entries(self, name: GdpName) -> Iterator[tuple[str, dict]]:
        """Yield (tag, wire) entries in write order.

        Returns an iterator over a snapshot *tuple* of the stored
        entries — sharing the wire dicts (recovery re-validates through
        ``from_wire``) but not the list, so appends racing the iteration
        cannot leak into it (the cross-backend conformance contract;
        previously this iterated the live list)."""
        return iter(tuple(self._data.get(name, ())))

    def list_capsules(self) -> list[GdpName]:
        """Names of all capsules with stored state."""
        return sorted(self._data)

    def delete_capsule(self, name: GdpName) -> None:
        """Remove all state for a capsule."""
        self._data.pop(name, None)


class FileStore(StorageBackend):
    """One append-only log file per capsule under *root*.

    Entry framing: 1 tag byte + u32 big-endian length + canonical
    encoding.  A torn final entry (crash mid-write) is detected by the
    length check and discarded on load.

    Hot-path notes (profiled via ``repro bench``): append handles are
    kept open in a small LRU pool instead of re-opening the log for
    every record, each frame goes out in a single buffered ``write``,
    and hosting checks hit an in-memory set instead of ``stat``-ing the
    log per append.  ``fsync=False`` trades the per-append disk sync for
    throughput where the caller batches durability elsewhere (the
    default stays ``True``: an acknowledged append must survive a
    crash).
    """

    _MAX_HANDLES = 64

    def __init__(self, root: str, *, fsync: bool = True):
        self.root = root
        self.fsync = fsync
        os.makedirs(root, exist_ok=True)
        self._handles: "OrderedDict[GdpName, object]" = OrderedDict()
        self._hosted: set[GdpName] = set()

    def _path(self, name: GdpName) -> str:
        return os.path.join(self.root, name.hex() + ".dclog")

    def _handle(self, name: GdpName):
        fh = self._handles.get(name)
        if fh is not None:
            self._handles.move_to_end(name)
            return fh
        try:
            fh = open(self._path(name), "ab")
        except OSError as exc:
            raise StorageError(f"open failed: {exc}") from exc
        self._handles[name] = fh
        while len(self._handles) > self._MAX_HANDLES:
            _, old = self._handles.popitem(last=False)
            old.close()
        return fh

    def _release(self, name: GdpName) -> None:
        fh = self._handles.pop(name, None)
        if fh is not None:
            fh.close()

    def _hosts(self, name: GdpName) -> bool:
        if name in self._hosted:
            return True
        if os.path.exists(self._path(name)):
            self._hosted.add(name)
            return True
        return False

    def _append(self, name: GdpName, tag: str, wire: dict) -> None:
        blob = encoding.encode(wire)
        frame = tag.encode("ascii") + struct.pack(">I", len(blob)) + blob
        try:
            fh = self._handle(name)
            fh.write(frame)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        except OSError as exc:
            raise StorageError(f"write failed: {exc}") from exc

    def store_metadata(self, name: GdpName, metadata_wire: dict) -> None:
        """Persist capsule metadata (idempotent)."""
        if self.load_metadata(name) is None:
            self._append(name, _TAG_METADATA, metadata_wire)
            self._hosted.add(name)

    def load_metadata(self, name: GdpName) -> dict | None:
        """The stored metadata wire form, or None."""
        for tag, wire in self.load_entries(name):
            if tag == _TAG_METADATA:
                return wire
        return None

    def append_record(self, name: GdpName, record_wire: dict) -> None:
        """Persist one record wire form."""
        if not self._hosts(name):
            raise StorageError(f"capsule {name.human()} is not hosted here")
        self._append(name, _TAG_RECORD, record_wire)

    def append_heartbeat(self, name: GdpName, heartbeat_wire: dict) -> None:
        """Persist one heartbeat wire form."""
        if not self._hosts(name):
            raise StorageError(f"capsule {name.human()} is not hosted here")
        self._append(name, _TAG_HEARTBEAT, heartbeat_wire)

    def append_entries(
        self, name: GdpName, entries: list[tuple[str, dict]]
    ) -> int:
        """Persist a run of entries as one buffered write and (with
        ``fsync=True``) one disk sync, instead of a sync per frame."""
        if not entries:
            return 0
        if not self._hosts(name):
            raise StorageError(f"capsule {name.human()} is not hosted here")
        chunk = bytearray()
        for tag, wire in entries:
            if tag not in (_TAG_RECORD, _TAG_HEARTBEAT):
                raise StorageError(f"cannot batch-append tag {tag!r}")
            blob = encoding.encode(wire)
            chunk += tag.encode("ascii")
            chunk += struct.pack(">I", len(blob))
            chunk += blob
        try:
            fh = self._handle(name)
            fh.write(bytes(chunk))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        except OSError as exc:
            raise StorageError(f"write failed: {exc}") from exc
        return len(entries)

    def load_entries(self, name: GdpName) -> Iterator[tuple[str, dict]]:
        """Yield (tag, wire) entries in write order.

        The file bytes are read *now* (snapshot at call time — the
        conformance contract; previously the read happened lazily at
        the first ``next()``, so frames appended in between leaked into
        the iteration); decoding stays lazy."""
        # An open append handle may hold buffered frames; push them to
        # the OS so this read sees everything written so far.
        fh = self._handles.get(name)
        if fh is not None:
            fh.flush()
        path = self._path(name)
        if not os.path.exists(path):
            return iter(())
        try:
            with open(path, "rb") as reader:
                data = reader.read()
        except OSError as exc:
            raise StorageError(f"read failed: {exc}") from exc

        def entries() -> Iterator[tuple[str, dict]]:
            offset = 0
            size = len(data)
            while offset + 5 <= size:
                tag = chr(data[offset])
                (length,) = struct.unpack_from(">I", data, offset + 1)
                end = offset + 5 + length
                if end > size:
                    break  # torn payload: crash mid-write; drop it
                yield tag, encoding.decode(data[offset + 5 : end])
                offset = end

        return entries()

    def list_capsules(self) -> list[GdpName]:
        """Names of all capsules with stored state."""
        names = []
        for filename in sorted(os.listdir(self.root)):
            if filename.endswith(".dclog"):
                names.append(GdpName.from_hex(filename[: -len(".dclog")]))
        return names

    def delete_capsule(self, name: GdpName) -> None:
        """Remove all state for a capsule."""
        self._release(name)
        self._hosted.discard(name)
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            pass

    def sync(self) -> None:
        """Flush and fsync every pooled append handle (the drain path:
        even with ``fsync=False`` appends, nothing buffered survives in
        volatile memory after a sync)."""
        for fh in self._handles.values():
            fh.flush()
            os.fsync(fh.fileno())

    def close(self) -> None:
        """Close any pooled append handles (flushing buffered frames)."""
        for fh in self._handles.values():
            fh.close()
        self._handles.clear()


# The segmented-log engine lives in its own module (it is an order of
# magnitude more machinery than the flat backends) but is part of this
# package's public surface; the bottom-of-file import avoids a cycle.
from repro.server.segmented import SegmentedStore  # noqa: E402
