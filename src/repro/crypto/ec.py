"""Elliptic-curve group arithmetic over NIST P-256 (secp256r1).

The paper's signatures are ECDSA ("because of smaller key sizes", §V);
this module is the from-scratch substrate beneath :mod:`repro.crypto.ecdsa`.
It implements constant-structure (not constant-time — this is a research
reproduction, not a production TLS stack) point arithmetic using Jacobian
projective coordinates for speed, with affine conversion only at the edges.

Only the operations ECDSA needs are exposed: scalar multiplication,
double-scalar multiplication (for verification), point addition, and
point (de)serialization in SEC1 form.

Acceleration layer
------------------
Profiling shows ``scalar_mult`` dominating end-to-end wall-clock (every
append heartbeat, read proof, advertisement, and delegation check bottoms
out here), so three precomputation strategies sit behind the public
entry points:

- a process-wide *fixed-base comb* for the generator (built lazily on
  first use): with width ``w`` the table holds ``m * 2^(w*i) * G`` for
  every window ``i`` and digit ``m``, turning a 256-doubling ladder into
  ``ceil(256/w)`` mixed additions with no doublings at all;
- bounded per-point comb tables for *hot* public keys (writer keys,
  router identities verify thousands of times) — built once a point has
  been used :data:`PROMOTE_AFTER` times, evicted LRU;
- Shamir/Strauss simultaneous multiplication for ``u1*G + u2*Q`` (the
  ECDSA verify shape) interleaving both scalars over one shared doubling
  ladder when ``Q`` has no table yet.

All accelerated paths are bit-identical to the reference ladder
(:func:`scalar_mult_naive`), which is kept both as the fallback for cold
points and as the cross-check oracle for property tests.  Set the
environment variable ``GDP_CRYPTO_ACCEL=0`` (or call
:func:`repro.crypto.cache.set_accel_enabled`) to force the naive paths.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.crypto import cache as _cache

__all__ = [
    "P",
    "N",
    "Gx",
    "Gy",
    "Point",
    "INFINITY",
    "GENERATOR",
    "point_add",
    "scalar_mult",
    "scalar_mult_naive",
    "double_scalar_base_mult",
    "is_on_curve",
    "encode_point",
    "decode_point",
]

# NIST P-256 domain parameters (FIPS 186-4, D.1.2.3).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
Gx = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
Gy = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5


class Point:
    """An affine point on P-256, or the point at infinity (``x is None``)."""

    __slots__ = ("x", "y")

    def __init__(self, x: Optional[int], y: Optional[int]):
        self.x = x
        self.y = y

    @property
    def is_infinity(self) -> bool:
        """Whether this is the point at infinity."""
        return self.x is None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        if self.is_infinity:
            return "Point(infinity)"
        return f"Point(x={self.x:#x}, y={self.y:#x})"


INFINITY = Point(None, None)
GENERATOR = Point(Gx, Gy)


def is_on_curve(point: Point) -> bool:
    """True iff *point* satisfies y^2 = x^3 + ax + b (mod p) or is infinity."""
    if point.is_infinity:
        return True
    x, y = point.x, point.y
    if not (0 <= x < P and 0 <= y < P):
        return False
    return (y * y - (x * x * x + A * x + B)) % P == 0


# -- Jacobian projective arithmetic ----------------------------------------
# A Jacobian point (X, Y, Z) represents affine (X/Z^2, Y/Z^3); infinity has
# Z == 0.  Formulas from Hankerson, Menezes & Vanstone, "Guide to Elliptic
# Curve Cryptography", 3.2.2, specialized for a = -3.

_JPoint = tuple[int, int, int]
_JINF: _JPoint = (1, 1, 0)


def _to_jacobian(point: Point) -> _JPoint:
    if point.is_infinity:
        return _JINF
    return (point.x, point.y, 1)


def _from_jacobian(jp: _JPoint) -> Point:
    X, Y, Z = jp
    if Z == 0:
        return INFINITY
    # pow(Z, -1, P) (extended gcd) is ~10x faster than the Fermat
    # exponentiation pow(Z, P-2, P) on CPython.
    z_inv = pow(Z, -1, P)
    z_inv2 = z_inv * z_inv % P
    return Point(X * z_inv2 % P, Y * z_inv2 * z_inv % P)


def _jdouble(jp: _JPoint) -> _JPoint:
    X1, Y1, Z1 = jp
    if Z1 == 0 or Y1 == 0:
        return _JINF
    # a = -3 optimization: M = 3(X1 - Z1^2)(X1 + Z1^2)
    Z1_2 = Z1 * Z1 % P
    M = 3 * (X1 - Z1_2) * (X1 + Z1_2) % P
    Y1_2 = Y1 * Y1 % P
    S = 4 * X1 * Y1_2 % P
    X3 = (M * M - 2 * S) % P
    Y3 = (M * (S - X3) - 8 * Y1_2 * Y1_2) % P
    Z3 = 2 * Y1 * Z1 % P
    return (X3, Y3, Z3)


def _jadd(p1: _JPoint, p2: _JPoint) -> _JPoint:
    X1, Y1, Z1 = p1
    X2, Y2, Z2 = p2
    if Z1 == 0:
        return p2
    if Z2 == 0:
        return p1
    Z1_2 = Z1 * Z1 % P
    Z2_2 = Z2 * Z2 % P
    U1 = X1 * Z2_2 % P
    U2 = X2 * Z1_2 % P
    S1 = Y1 * Z2_2 * Z2 % P
    S2 = Y2 * Z1_2 * Z1 % P
    if U1 == U2:
        if S1 != S2:
            return _JINF
        return _jdouble(p1)
    H = (U2 - U1) % P
    R = (S2 - S1) % P
    H2 = H * H % P
    H3 = H2 * H % P
    U1H2 = U1 * H2 % P
    X3 = (R * R - H3 - 2 * U1H2) % P
    Y3 = (R * (U1H2 - X3) - S1 * H3) % P
    Z3 = H * Z1 * Z2 % P
    return (X3, Y3, Z3)


def _jmadd(jp: _JPoint, ax: int, ay: int) -> _JPoint:
    """Mixed addition: Jacobian *jp* + affine ``(ax, ay)`` (i.e. Z2 = 1).

    Saves ~5 field multiplications over the general :func:`_jadd`; the
    comb and Strauss ladders below keep their tables in affine form
    precisely so every addition takes this path.
    """
    X1, Y1, Z1 = jp
    if Z1 == 0:
        return (ax, ay, 1)
    Z1_2 = Z1 * Z1 % P
    U2 = ax * Z1_2 % P
    S2 = ay * Z1_2 * Z1 % P
    if U2 == X1:
        if S2 != Y1:
            return _JINF
        return _jdouble(jp)
    H = (U2 - X1) % P
    R = (S2 - Y1) % P
    H2 = H * H % P
    H3 = H2 * H % P
    U1H2 = X1 * H2 % P
    X3 = (R * R - H3 - 2 * U1H2) % P
    Y3 = (R * (U1H2 - X3) - Y1 * H3) % P
    Z3 = H * Z1 % P
    return (X3, Y3, Z3)


def _batch_affine(jpoints: list[_JPoint]) -> list[tuple[int, int]]:
    """Normalize many Jacobian points to affine ``(x, y)`` pairs with a
    single field inversion (Montgomery's batch-inversion trick).

    All inputs must be finite (comb tables never contain infinity: the
    curve group has prime order, so no small multiple of a valid base
    point is the identity).
    """
    n = len(jpoints)
    prefix = [1] * n
    acc = 1
    for i in range(n):
        prefix[i] = acc
        acc = acc * jpoints[i][2] % P
    inv = pow(acc, -1, P)
    out: list[tuple[int, int]] = [(0, 0)] * n
    for i in range(n - 1, -1, -1):
        X, Y, Z = jpoints[i]
        z_inv = prefix[i] * inv % P
        inv = inv * Z % P
        z_inv2 = z_inv * z_inv % P
        out[i] = (X * z_inv2 % P, Y * z_inv2 * z_inv % P)
    return out


def point_add(p1: Point, p2: Point) -> Point:
    """Affine point addition (handles infinity and doubling)."""
    return _from_jacobian(_jadd(_to_jacobian(p1), _to_jacobian(p2)))


def scalar_mult_naive(k: int, point: Point) -> Point:
    """Compute ``k * point`` via a 4-bit fixed-window method.

    The reference implementation: no shared state, no precomputation
    beyond the per-call window table.  Kept as the fallback for cold
    points and as the oracle the accelerated paths are property-tested
    against.
    """
    k %= N
    if k == 0 or point.is_infinity:
        return INFINITY
    base = _to_jacobian(point)
    # Precompute 1..15 multiples of the base.
    table: list[_JPoint] = [_JINF, base]
    for i in range(2, 16):
        table.append(_jadd(table[i - 1], base))
    acc = _JINF
    for shift in range(k.bit_length() + (4 - k.bit_length() % 4) % 4 - 4, -1, -4):
        acc = _jdouble(_jdouble(_jdouble(_jdouble(acc))))
        window = (k >> shift) & 0xF
        if window:
            acc = _jadd(acc, table[window])
    return _from_jacobian(acc)


# -- comb precomputation ----------------------------------------------------
# A width-w comb table for base B stores, for every window index i and
# digit m in 1..2^w-1, the affine point m * 2^(w*i) * B.  k*B is then the
# sum over windows of table[i][digit_i(k)] — pure mixed additions, zero
# doublings, at the cost of building (and keeping) the table.

COMB_WIDTH_BASE = 8  #: comb width for the generator (one table per process)
COMB_WIDTH_POINT = 5  #: comb width for cached hot points (cheaper build)
POINT_TABLE_MAX = 32  #: LRU bound on per-point comb tables
PROMOTE_AFTER = 2  #: uses of a point before its comb table is built

_CombTable = list  # list[window] of list[digit-1] of (x, y)


def _build_comb(point: Point, width: int) -> _CombTable:
    """Build the comb table for *point* (see comment above)."""
    windows = -(-256 // width)  # ceil: scalars are < N < 2^256
    size = (1 << width) - 1
    flat: list[_JPoint] = []
    current = _to_jacobian(point)
    for i in range(windows):
        row = [current]
        for _ in range(size - 1):
            row.append(_jadd(row[-1], current))
        flat.extend(row)
        if i + 1 < windows:
            for _ in range(width):
                current = _jdouble(current)
    affine = _batch_affine(flat)
    return [affine[i * size : (i + 1) * size] for i in range(windows)]


def _comb_mult(k: int, table: _CombTable, width: int, acc: _JPoint = _JINF) -> _JPoint:
    """``acc + k * base`` where *table* is the comb for ``base``; *k*
    must already be reduced mod N."""
    mask = (1 << width) - 1
    i = 0
    while k:
        digit = k & mask
        if digit:
            ax, ay = table[i][digit - 1]
            acc = _jmadd(acc, ax, ay)
        k >>= width
        i += 1
    return acc


_BASE_COMB: _CombTable | None = None

#: per-point comb tables, LRU-bounded, keyed by affine coordinates
_POINT_COMBS: OrderedDict[tuple[int, int], _CombTable] = OrderedDict()
#: use counters for not-yet-promoted points (bounded alongside the combs)
_POINT_HEAT: OrderedDict[tuple[int, int], int] = OrderedDict()


def _base_comb() -> _CombTable:
    global _BASE_COMB
    if _BASE_COMB is None:
        _BASE_COMB = _build_comb(GENERATOR, COMB_WIDTH_BASE)
    return _BASE_COMB


def _point_comb(point: Point) -> _CombTable | None:
    """The cached comb for *point*, building it once the point is hot;
    ``None`` while the point is still cold."""
    key = (point.x, point.y)
    table = _POINT_COMBS.get(key)
    if table is not None:
        _POINT_COMBS.move_to_end(key)
        return table
    heat = _POINT_HEAT.get(key, 0) + 1
    if heat < PROMOTE_AFTER:
        _POINT_HEAT[key] = heat
        _POINT_HEAT.move_to_end(key)
        while len(_POINT_HEAT) > 4 * POINT_TABLE_MAX:
            _POINT_HEAT.popitem(last=False)
        return None
    _POINT_HEAT.pop(key, None)
    table = _build_comb(point, COMB_WIDTH_POINT)
    _POINT_COMBS[key] = table
    while len(_POINT_COMBS) > POINT_TABLE_MAX:
        _POINT_COMBS.popitem(last=False)
    return table


def clear_point_tables() -> None:
    """Drop all cached per-point comb tables and heat counters (tests)."""
    _POINT_COMBS.clear()
    _POINT_HEAT.clear()


def scalar_mult(k: int, point: Point) -> Point:
    """Compute ``k * point``.

    Dispatches to the fixed-base comb for the generator, a cached comb
    for hot points, or the reference ladder for cold points; all three
    produce bit-identical results.
    """
    k %= N
    if k == 0 or point.is_infinity:
        return INFINITY
    if _cache.accel_enabled():
        if point.x == Gx and point.y == Gy:
            return _from_jacobian(_comb_mult(k, _base_comb(), COMB_WIDTH_BASE))
        table = _point_comb(point)
        if table is not None:
            return _from_jacobian(_comb_mult(k, table, COMB_WIDTH_POINT))
    return scalar_mult_naive(k, point)


def _double_scalar_jacobian(u1: int, u2: int, point: Point) -> _JPoint:
    """``u1*G + u2*point`` in Jacobian form — the ECDSA verify shape.

    With a comb table available for *point* both halves are pure mixed
    additions; otherwise Strauss interleaving shares one doubling ladder
    between the two scalars (half the doublings of two separate mults).
    """
    u1 %= N
    u2 %= N
    if not _cache.accel_enabled():
        return _to_jacobian(
            point_add(
                scalar_mult_naive(u1, GENERATOR), scalar_mult_naive(u2, point)
            )
        )
    if u2 == 0 or point.is_infinity:
        return _comb_mult(u1, _base_comb(), COMB_WIDTH_BASE)
    table = _point_comb(point)
    if table is not None:
        acc = _comb_mult(u1, _base_comb(), COMB_WIDTH_BASE)
        return _comb_mult(u2, table, COMB_WIDTH_POINT, acc)
    # Strauss/Shamir: 4-bit windows of both scalars over one ladder.
    # G's small multiples come straight from the first window of the
    # base comb (entries 1..15 of window 0 are 1..15 * G).
    g_table = _base_comb()[0]
    q_flat: list[_JPoint] = [_to_jacobian(point)]
    for _ in range(14):
        q_flat.append(_jadd(q_flat[-1], q_flat[0]))
    q_table = _batch_affine(q_flat)
    acc = _JINF
    top = max(u1.bit_length(), u2.bit_length())
    top += (4 - top % 4) % 4
    for shift in range(top - 4, -1, -4):
        acc = _jdouble(_jdouble(_jdouble(_jdouble(acc))))
        w1 = (u1 >> shift) & 0xF
        if w1:
            acc = _jmadd(acc, *g_table[w1 - 1])
        w2 = (u2 >> shift) & 0xF
        if w2:
            acc = _jmadd(acc, *q_table[w2 - 1])
    return acc


def double_scalar_base_mult(u1: int, u2: int, point: Point) -> Point:
    """``u1*G + u2*point`` as an affine :class:`Point`."""
    return _from_jacobian(_double_scalar_jacobian(u1, u2, point))


def encode_point(point: Point) -> bytes:
    """SEC1 compressed encoding (33 bytes); infinity encodes as ``b"\\x00"``."""
    if point.is_infinity:
        return b"\x00"
    prefix = 0x03 if point.y & 1 else 0x02
    return bytes([prefix]) + point.x.to_bytes(32, "big")


def decode_point(data: bytes) -> Point:
    """Decode a SEC1 compressed (or uncompressed) point; validates curve
    membership."""
    if data == b"\x00":
        return INFINITY
    if len(data) == 33 and data[0] in (0x02, 0x03):
        x = int.from_bytes(data[1:], "big")
        if x >= P:
            raise ValueError("point x-coordinate out of range")
        alpha = (pow(x, 3, P) + A * x + B) % P
        # p ≡ 3 (mod 4) so sqrt is alpha^((p+1)/4).
        y = pow(alpha, (P + 1) // 4, P)
        if y * y % P != alpha:
            raise ValueError("point is not on the curve")
        if (y & 1) != (data[0] & 1):
            y = P - y
        return Point(x, y)
    if len(data) == 65 and data[0] == 0x04:
        x = int.from_bytes(data[1:33], "big")
        y = int.from_bytes(data[33:], "big")
        point = Point(x, y)
        if not is_on_curve(point):
            raise ValueError("point is not on the curve")
        return point
    raise ValueError(f"malformed point encoding ({len(data)} bytes)")
