"""Elliptic-curve group arithmetic over NIST P-256 (secp256r1).

The paper's signatures are ECDSA ("because of smaller key sizes", §V);
this module is the from-scratch substrate beneath :mod:`repro.crypto.ecdsa`.
It implements constant-structure (not constant-time — this is a research
reproduction, not a production TLS stack) point arithmetic using Jacobian
projective coordinates for speed, with affine conversion only at the edges.

Only the operations ECDSA needs are exposed: scalar multiplication,
point addition, and point (de)serialization in SEC1 form.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "P",
    "N",
    "Gx",
    "Gy",
    "Point",
    "INFINITY",
    "GENERATOR",
    "point_add",
    "scalar_mult",
    "is_on_curve",
    "encode_point",
    "decode_point",
]

# NIST P-256 domain parameters (FIPS 186-4, D.1.2.3).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
Gx = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
Gy = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5


class Point:
    """An affine point on P-256, or the point at infinity (``x is None``)."""

    __slots__ = ("x", "y")

    def __init__(self, x: Optional[int], y: Optional[int]):
        self.x = x
        self.y = y

    @property
    def is_infinity(self) -> bool:
        """Whether this is the point at infinity."""
        return self.x is None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        if self.is_infinity:
            return "Point(infinity)"
        return f"Point(x={self.x:#x}, y={self.y:#x})"


INFINITY = Point(None, None)
GENERATOR = Point(Gx, Gy)


def is_on_curve(point: Point) -> bool:
    """True iff *point* satisfies y^2 = x^3 + ax + b (mod p) or is infinity."""
    if point.is_infinity:
        return True
    x, y = point.x, point.y
    if not (0 <= x < P and 0 <= y < P):
        return False
    return (y * y - (x * x * x + A * x + B)) % P == 0


# -- Jacobian projective arithmetic ----------------------------------------
# A Jacobian point (X, Y, Z) represents affine (X/Z^2, Y/Z^3); infinity has
# Z == 0.  Formulas from Hankerson, Menezes & Vanstone, "Guide to Elliptic
# Curve Cryptography", 3.2.2, specialized for a = -3.

_JPoint = tuple[int, int, int]
_JINF: _JPoint = (1, 1, 0)


def _to_jacobian(point: Point) -> _JPoint:
    if point.is_infinity:
        return _JINF
    return (point.x, point.y, 1)


def _from_jacobian(jp: _JPoint) -> Point:
    X, Y, Z = jp
    if Z == 0:
        return INFINITY
    z_inv = pow(Z, P - 2, P)
    z_inv2 = z_inv * z_inv % P
    return Point(X * z_inv2 % P, Y * z_inv2 * z_inv % P)


def _jdouble(jp: _JPoint) -> _JPoint:
    X1, Y1, Z1 = jp
    if Z1 == 0 or Y1 == 0:
        return _JINF
    # a = -3 optimization: M = 3(X1 - Z1^2)(X1 + Z1^2)
    Z1_2 = Z1 * Z1 % P
    M = 3 * (X1 - Z1_2) * (X1 + Z1_2) % P
    Y1_2 = Y1 * Y1 % P
    S = 4 * X1 * Y1_2 % P
    X3 = (M * M - 2 * S) % P
    Y3 = (M * (S - X3) - 8 * Y1_2 * Y1_2) % P
    Z3 = 2 * Y1 * Z1 % P
    return (X3, Y3, Z3)


def _jadd(p1: _JPoint, p2: _JPoint) -> _JPoint:
    X1, Y1, Z1 = p1
    X2, Y2, Z2 = p2
    if Z1 == 0:
        return p2
    if Z2 == 0:
        return p1
    Z1_2 = Z1 * Z1 % P
    Z2_2 = Z2 * Z2 % P
    U1 = X1 * Z2_2 % P
    U2 = X2 * Z1_2 % P
    S1 = Y1 * Z2_2 * Z2 % P
    S2 = Y2 * Z1_2 * Z1 % P
    if U1 == U2:
        if S1 != S2:
            return _JINF
        return _jdouble(p1)
    H = (U2 - U1) % P
    R = (S2 - S1) % P
    H2 = H * H % P
    H3 = H2 * H % P
    U1H2 = U1 * H2 % P
    X3 = (R * R - H3 - 2 * U1H2) % P
    Y3 = (R * (U1H2 - X3) - S1 * H3) % P
    Z3 = H * Z1 * Z2 % P
    return (X3, Y3, Z3)


def point_add(p1: Point, p2: Point) -> Point:
    """Affine point addition (handles infinity and doubling)."""
    return _from_jacobian(_jadd(_to_jacobian(p1), _to_jacobian(p2)))


def scalar_mult(k: int, point: Point) -> Point:
    """Compute ``k * point`` via a 4-bit fixed-window method."""
    k %= N
    if k == 0 or point.is_infinity:
        return INFINITY
    base = _to_jacobian(point)
    # Precompute 1..15 multiples of the base.
    table: list[_JPoint] = [_JINF, base]
    for i in range(2, 16):
        table.append(_jadd(table[i - 1], base))
    acc = _JINF
    for shift in range(k.bit_length() + (4 - k.bit_length() % 4) % 4 - 4, -1, -4):
        acc = _jdouble(_jdouble(_jdouble(_jdouble(acc))))
        window = (k >> shift) & 0xF
        if window:
            acc = _jadd(acc, table[window])
    return _from_jacobian(acc)


def encode_point(point: Point) -> bytes:
    """SEC1 compressed encoding (33 bytes); infinity encodes as ``b"\\x00"``."""
    if point.is_infinity:
        return b"\x00"
    prefix = 0x03 if point.y & 1 else 0x02
    return bytes([prefix]) + point.x.to_bytes(32, "big")


def decode_point(data: bytes) -> Point:
    """Decode a SEC1 compressed (or uncompressed) point; validates curve
    membership."""
    if data == b"\x00":
        return INFINITY
    if len(data) == 33 and data[0] in (0x02, 0x03):
        x = int.from_bytes(data[1:], "big")
        if x >= P:
            raise ValueError("point x-coordinate out of range")
        alpha = (pow(x, 3, P) + A * x + B) % P
        # p ≡ 3 (mod 4) so sqrt is alpha^((p+1)/4).
        y = pow(alpha, (P + 1) // 4, P)
        if y * y % P != alpha:
            raise ValueError("point is not on the curve")
        if (y & 1) != (data[0] & 1):
            y = P - y
        return Point(x, y)
    if len(data) == 65 and data[0] == 0x04:
        x = int.from_bytes(data[1:33], "big")
        y = int.from_bytes(data[33:], "big")
        point = Point(x, y)
        if not is_on_curve(point):
            raise ValueError("point is not on the curve")
        return point
    raise ValueError(f"malformed point encoding ({len(data)} bytes)")
