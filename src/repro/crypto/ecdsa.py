"""ECDSA over P-256 with RFC 6979 deterministic nonces.

Deterministic nonces make signing reproducible (important for tests and
for replayable simulations) and eliminate the classic nonce-reuse key
leak.  Signatures are encoded as fixed-width 64-byte ``r || s`` with the
low-S normalization, so each message/key pair has exactly one valid
encoding produced by this signer.  Verification accepts any valid ``s``
by default; passing ``require_low_s=True`` additionally rejects the
high-S malleation (strict mode — used by the simtest oracles, where any
signature *we* did not produce in canonical form is suspect).

Hot-path notes: signing uses the fixed-base comb behind
:func:`ec.scalar_mult`; verification computes ``u1*G + u2*Q`` in one
Shamir/Strauss pass (:func:`ec._double_scalar_jacobian`) and compares
``r`` against the Jacobian result directly, avoiding the final field
inversion entirely.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro.crypto import ec
from repro.errors import SignatureError

__all__ = ["sign", "verify", "verify_prehashed", "is_low_s", "SIGNATURE_LEN"]

SIGNATURE_LEN = 64
_ORDER_BYTES = 32


def _bits2int(data: bytes) -> int:
    """RFC 6979 bits2int for a 256-bit order."""
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - 256
    if excess > 0:
        value >>= excess
    return value


def _int2octets(value: int) -> bytes:
    return value.to_bytes(_ORDER_BYTES, "big")


def _bits2octets(data: bytes) -> bytes:
    value = _bits2int(data) % ec.N
    return _int2octets(value)


def _rfc6979_nonce(private_key: int, digest: bytes) -> int:
    """Deterministic nonce per RFC 6979 §3.2 with HMAC-SHA256."""
    holder = b"\x01" * 32
    key = b"\x00" * 32
    seed = _int2octets(private_key) + _bits2octets(digest)
    key = _hmac.new(key, holder + b"\x00" + seed, hashlib.sha256).digest()
    holder = _hmac.new(key, holder, hashlib.sha256).digest()
    key = _hmac.new(key, holder + b"\x01" + seed, hashlib.sha256).digest()
    holder = _hmac.new(key, holder, hashlib.sha256).digest()
    while True:
        holder = _hmac.new(key, holder, hashlib.sha256).digest()
        k = _bits2int(holder)
        if 1 <= k < ec.N:
            return k
        key = _hmac.new(key, holder + b"\x00", hashlib.sha256).digest()
        holder = _hmac.new(key, holder, hashlib.sha256).digest()


def sign(private_key: int, message: bytes) -> bytes:
    """Sign *message* (hashed internally with SHA-256); returns 64-byte
    ``r || s`` with low-S normalization."""
    if not 1 <= private_key < ec.N:
        raise SignatureError("private key out of range")
    digest = hashlib.sha256(message).digest()
    z = _bits2int(digest)
    while True:
        k = _rfc6979_nonce(private_key, digest)
        point = ec.scalar_mult(k, ec.GENERATOR)
        r = point.x % ec.N
        if r == 0:
            digest = hashlib.sha256(digest).digest()
            continue
        k_inv = pow(k, -1, ec.N)
        s = k_inv * (z + r * private_key) % ec.N
        if s == 0:
            digest = hashlib.sha256(digest).digest()
            continue
        if s > ec.N // 2:
            s = ec.N - s
        return _int2octets(r) + _int2octets(s)


def is_low_s(signature: bytes) -> bool:
    """Whether a 64-byte signature's ``s`` half is in canonical low-S
    form (what :func:`sign` emits)."""
    if len(signature) != SIGNATURE_LEN:
        return False
    s = int.from_bytes(signature[_ORDER_BYTES:], "big")
    return 1 <= s <= ec.N // 2


def verify_prehashed(
    public_key: ec.Point,
    digest: bytes,
    signature: bytes,
    *,
    require_low_s: bool = False,
) -> bool:
    """Verify against an already-computed SHA-256 *digest* (the caching
    layer hashes the message once for its cache key; this entry point
    lets it avoid hashing twice)."""
    if len(signature) != SIGNATURE_LEN:
        return False
    if public_key.is_infinity or not ec.is_on_curve(public_key):
        return False
    r = int.from_bytes(signature[:_ORDER_BYTES], "big")
    s = int.from_bytes(signature[_ORDER_BYTES:], "big")
    if not (1 <= r < ec.N and 1 <= s < ec.N):
        return False
    if require_low_s and s > ec.N // 2:
        return False
    z = _bits2int(digest)
    s_inv = pow(s, -1, ec.N)
    u1 = z * s_inv % ec.N
    u2 = r * s_inv % ec.N
    X, Y, Z = ec._double_scalar_jacobian(u1, u2, public_key)
    if Z == 0:
        return False
    # r == x(R) mod N without converting R to affine: the affine x is
    # X/Z^2 mod P, and since P < 2N the only candidates for x are r and
    # r + N.  Cross-multiplying avoids the field inversion.
    Z2 = Z * Z % ec.P
    if (r * Z2 - X) % ec.P == 0:
        return True
    return r + ec.N < ec.P and ((r + ec.N) * Z2 - X) % ec.P == 0


def verify(
    public_key: ec.Point,
    message: bytes,
    signature: bytes,
    *,
    require_low_s: bool = False,
) -> bool:
    """Verify a 64-byte ``r || s`` signature; returns ``True``/``False``
    (malformed inputs return ``False`` rather than raising, so callers can
    treat garbage from the network uniformly).  ``require_low_s`` enables
    strict mode: only the canonical low-S encoding is accepted."""
    digest = hashlib.sha256(message).digest()
    return verify_prehashed(
        public_key, digest, signature, require_low_s=require_low_s
    )
