"""ECDSA over P-256 with RFC 6979 deterministic nonces.

Deterministic nonces make signing reproducible (important for tests and
for replayable simulations) and eliminate the classic nonce-reuse key
leak.  Signatures are encoded as fixed-width 64-byte ``r || s`` with the
low-S normalization, so each message/key pair has exactly one valid
encoding produced by this signer (verification accepts any valid ``s``).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro.crypto import ec
from repro.errors import SignatureError

__all__ = ["sign", "verify", "SIGNATURE_LEN"]

SIGNATURE_LEN = 64
_ORDER_BYTES = 32


def _bits2int(data: bytes) -> int:
    """RFC 6979 bits2int for a 256-bit order."""
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - 256
    if excess > 0:
        value >>= excess
    return value


def _int2octets(value: int) -> bytes:
    return value.to_bytes(_ORDER_BYTES, "big")


def _bits2octets(data: bytes) -> bytes:
    value = _bits2int(data) % ec.N
    return _int2octets(value)


def _rfc6979_nonce(private_key: int, digest: bytes) -> int:
    """Deterministic nonce per RFC 6979 §3.2 with HMAC-SHA256."""
    holder = b"\x01" * 32
    key = b"\x00" * 32
    seed = _int2octets(private_key) + _bits2octets(digest)
    key = _hmac.new(key, holder + b"\x00" + seed, hashlib.sha256).digest()
    holder = _hmac.new(key, holder, hashlib.sha256).digest()
    key = _hmac.new(key, holder + b"\x01" + seed, hashlib.sha256).digest()
    holder = _hmac.new(key, holder, hashlib.sha256).digest()
    while True:
        holder = _hmac.new(key, holder, hashlib.sha256).digest()
        k = _bits2int(holder)
        if 1 <= k < ec.N:
            return k
        key = _hmac.new(key, holder + b"\x00", hashlib.sha256).digest()
        holder = _hmac.new(key, holder, hashlib.sha256).digest()


def sign(private_key: int, message: bytes) -> bytes:
    """Sign *message* (hashed internally with SHA-256); returns 64-byte
    ``r || s`` with low-S normalization."""
    if not 1 <= private_key < ec.N:
        raise SignatureError("private key out of range")
    digest = hashlib.sha256(message).digest()
    z = _bits2int(digest)
    while True:
        k = _rfc6979_nonce(private_key, digest)
        point = ec.scalar_mult(k, ec.GENERATOR)
        r = point.x % ec.N
        if r == 0:
            digest = hashlib.sha256(digest).digest()
            continue
        k_inv = pow(k, ec.N - 2, ec.N)
        s = k_inv * (z + r * private_key) % ec.N
        if s == 0:
            digest = hashlib.sha256(digest).digest()
            continue
        if s > ec.N // 2:
            s = ec.N - s
        return _int2octets(r) + _int2octets(s)


def verify(public_key: ec.Point, message: bytes, signature: bytes) -> bool:
    """Verify a 64-byte ``r || s`` signature; returns ``True``/``False``
    (malformed inputs return ``False`` rather than raising, so callers can
    treat garbage from the network uniformly)."""
    if len(signature) != SIGNATURE_LEN:
        return False
    if public_key.is_infinity or not ec.is_on_curve(public_key):
        return False
    r = int.from_bytes(signature[:_ORDER_BYTES], "big")
    s = int.from_bytes(signature[_ORDER_BYTES:], "big")
    if not (1 <= r < ec.N and 1 <= s < ec.N):
        return False
    digest = hashlib.sha256(message).digest()
    z = _bits2int(digest)
    s_inv = pow(s, ec.N - 2, ec.N)
    u1 = z * s_inv % ec.N
    u2 = r * s_inv % ec.N
    point = ec.point_add(
        ec.scalar_mult(u1, ec.GENERATOR), ec.scalar_mult(u2, public_key)
    )
    if point.is_infinity:
        return False
    return point.x % ec.N == r
