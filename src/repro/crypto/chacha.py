"""ChaCha20 stream cipher (RFC 7539) with encrypt-then-MAC sealing.

The paper keeps confidentiality with the data owner: "read access control
is maintained by selective sharing of decryption keys" (§V), and
"encryption provides the final level of defense in the case when the
entire infrastructure is compromised" (§V fn. 7).  This module supplies
the symmetric layer: ChaCha20 keystream encryption plus HMAC-SHA256
authentication (encrypt-then-MAC), both built from scratch / stdlib since
no external crypto package is used.

Performance note: this is pure Python; throughput is adequate for record
payloads in tests and simulations (~MB/s), not for bulk video.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import secrets
import struct

from repro.errors import IntegrityError

__all__ = ["chacha20_xor", "seal", "open_sealed", "KEY_LEN", "NONCE_LEN"]

KEY_LEN = 32
NONCE_LEN = 12
_MAC_LEN = 32


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & 0xFFFFFFFF
    state[d] ^= state[a]
    state[d] = ((state[d] << 16) | (state[d] >> 16)) & 0xFFFFFFFF
    state[c] = (state[c] + state[d]) & 0xFFFFFFFF
    state[b] ^= state[c]
    state[b] = ((state[b] << 12) | (state[b] >> 20)) & 0xFFFFFFFF
    state[a] = (state[a] + state[b]) & 0xFFFFFFFF
    state[d] ^= state[a]
    state[d] = ((state[d] << 8) | (state[d] >> 24)) & 0xFFFFFFFF
    state[c] = (state[c] + state[d]) & 0xFFFFFFFF
    state[b] ^= state[c]
    state[b] = ((state[b] << 7) | (state[b] >> 25)) & 0xFFFFFFFF


def _block(key_words: tuple[int, ...], counter: int, nonce_words: tuple[int, ...]) -> bytes:
    state = [
        0x61707865, 0x3320646E, 0x79622D32, 0x6B206574,
        *key_words,
        counter,
        *nonce_words,
    ]
    working = list(state)
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    return struct.pack(
        "<16I", *((w + s) & 0xFFFFFFFF for w, s in zip(working, state))
    )


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, counter: int = 1) -> bytes:
    """XOR *data* with the ChaCha20 keystream (encryption == decryption)."""
    if len(key) != KEY_LEN:
        raise ValueError(f"key must be {KEY_LEN} bytes")
    if len(nonce) != NONCE_LEN:
        raise ValueError(f"nonce must be {NONCE_LEN} bytes")
    key_words = struct.unpack("<8I", key)
    nonce_words = struct.unpack("<3I", nonce)
    out = bytearray()
    for block_index in range((len(data) + 63) // 64):
        keystream = _block(key_words, counter + block_index, nonce_words)
        chunk = data[block_index * 64 : block_index * 64 + 64]
        out += bytes(a ^ b for a, b in zip(chunk, keystream))
    return bytes(out)


def _mac_key(key: bytes, nonce: bytes) -> bytes:
    # Block 0 of the keystream is reserved for the MAC key (as in
    # ChaCha20-Poly1305's one-time-key construction).
    return _block(struct.unpack("<8I", key), 0, struct.unpack("<3I", nonce))[:32]


def seal(key: bytes, plaintext: bytes, associated_data: bytes = b"") -> bytes:
    """Encrypt-then-MAC: returns ``nonce || ciphertext || mac``."""
    nonce = secrets.token_bytes(NONCE_LEN)
    ciphertext = chacha20_xor(key, nonce, plaintext)
    mac = _hmac.new(
        _mac_key(key, nonce), associated_data + nonce + ciphertext, hashlib.sha256
    ).digest()
    return nonce + ciphertext + mac


def open_sealed(key: bytes, sealed: bytes, associated_data: bytes = b"") -> bytes:
    """Verify and decrypt a :func:`seal` output; raises
    :class:`IntegrityError` on any tampering."""
    if len(sealed) < NONCE_LEN + _MAC_LEN:
        raise IntegrityError("sealed blob too short")
    nonce = sealed[:NONCE_LEN]
    ciphertext = sealed[NONCE_LEN:-_MAC_LEN]
    mac = sealed[-_MAC_LEN:]
    expected = _hmac.new(
        _mac_key(key, nonce), associated_data + nonce + ciphertext, hashlib.sha256
    ).digest()
    if not _hmac.compare_digest(expected, mac):
        raise IntegrityError("sealed blob MAC mismatch")
    return chacha20_xor(key, nonce, ciphertext)
