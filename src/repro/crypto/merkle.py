"""Merkle hash trees with inclusion proofs.

The paper's DataCapsule proofs are primarily hash-*chain* based, but §V
notes that "a reader can also get cryptographic proofs for specific
records ... in a similar way as the well-known Merkle hash trees".  The
tree here backs checkpoint records (a checkpoint commits to a Merkle root
over all records up to it, giving O(log n) inclusion proofs against a
single signed point) and the naming catalogs used by secure
advertisements.

Leaves are domain-separated from interior nodes (0x00 / 0x01 prefixes) to
prevent second-preimage splicing attacks.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.errors import IntegrityError

__all__ = ["leaf_hash", "node_hash", "MerkleTree", "InclusionProof"]

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"
EMPTY_ROOT = hashlib.sha256(b"gdp.merkle.empty").digest()


def leaf_hash(data: bytes) -> bytes:
    """Domain-separated leaf hash."""
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    """Domain-separated interior-node hash."""
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


class InclusionProof:
    """Audit path proving a leaf is in a tree with a known root."""

    __slots__ = ("index", "tree_size", "path")

    def __init__(self, index: int, tree_size: int, path: Sequence[bytes]):
        self.index = index
        self.tree_size = tree_size
        self.path = list(path)

    def to_wire(self) -> dict:
        """Wire-encodable representation."""
        return {
            "index": self.index,
            "tree_size": self.tree_size,
            "path": list(self.path),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "InclusionProof":
        """Rebuild from a wire form; raises on malformed input."""
        return cls(wire["index"], wire["tree_size"], wire["path"])

    def verify(self, leaf_data: bytes, root: bytes) -> None:
        """Raise :class:`IntegrityError` unless this path links
        ``leaf_data`` at ``index`` to ``root`` in a tree of
        ``tree_size`` leaves."""
        if not 0 <= self.index < self.tree_size:
            raise IntegrityError("inclusion proof index out of range")
        expected_len = _audit_path_length(self.index, self.tree_size)
        if len(self.path) != expected_len:
            raise IntegrityError(
                f"inclusion proof length {len(self.path)} != expected "
                f"{expected_len}"
            )
        node = leaf_hash(leaf_data)
        index, size = self.index, self.tree_size
        consumed = 0
        while size > 1:
            if index % 2 == 1:
                node = node_hash(self.path[consumed], node)
                consumed += 1
            elif index + 1 < size:
                node = node_hash(node, self.path[consumed])
                consumed += 1
            # else: promoted right-spine node — rises a level with no
            # sibling, so no path element is consumed.
            index //= 2
            size = (size + 1) // 2
        if node != root:
            raise IntegrityError("inclusion proof does not match root")


def _audit_path_length(index: int, size: int) -> int:
    """Number of siblings on the audit path for ``index`` in ``size``
    leaves, where right-spine nodes are promoted (no padding leaves)."""
    length = 0
    while size > 1:
        if index % 2 == 1 or index + 1 < size:
            length += 1
        index //= 2
        size = (size + 1) // 2
    return length


class MerkleTree:
    """An append-only Merkle tree over byte-string leaves.

    Right-spine nodes are *promoted* rather than padded, matching RFC 6962
    shape semantics: the root of ``n`` leaves is well-defined for any
    ``n >= 0`` and appending never changes an existing leaf's hash.
    """

    def __init__(self, leaves: Iterable[bytes] = ()):
        self._leaves: list[bytes] = [leaf_hash(leaf) for leaf in leaves]

    def __len__(self) -> int:
        return len(self._leaves)

    def append(self, data: bytes) -> int:
        """Append a leaf; returns its index."""
        self._leaves.append(leaf_hash(data))
        return len(self._leaves) - 1

    def root(self, size: int | None = None) -> bytes:
        """Root over the first *size* leaves (default: all)."""
        size = len(self._leaves) if size is None else size
        if not 0 <= size <= len(self._leaves):
            raise ValueError(f"size {size} out of range")
        if size == 0:
            return EMPTY_ROOT
        level = self._leaves[:size]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(node_hash(level[i], level[i + 1]))
            if len(level) % 2 == 1:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def prove(self, index: int, size: int | None = None) -> InclusionProof:
        """Inclusion proof for leaf *index* within the first *size* leaves."""
        size = len(self._leaves) if size is None else size
        if not 0 <= index < size <= len(self._leaves):
            raise ValueError(f"index {index} / size {size} out of range")
        path: list[bytes] = []
        level = self._leaves[:size]
        position = index
        while len(level) > 1:
            if position % 2 == 1:
                path.append(level[position - 1])
            elif position + 1 < len(level):
                path.append(level[position + 1])
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(node_hash(level[i], level[i + 1]))
            if len(level) % 2 == 1:
                nxt.append(level[-1])
            level = nxt
            position //= 2
        return InclusionProof(index, size, path)
