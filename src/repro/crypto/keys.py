"""Key-pair objects wrapping the raw ECDSA substrate.

A :class:`SigningKey` is held by writers, owners, servers, and routers; a
:class:`VerifyingKey` travels inside metadata, certificates, and
advertisements.  Verifying keys serialize to the 33-byte SEC1 compressed
form, which is the representation hashed into flat GDP names.
"""

from __future__ import annotations

import hashlib
import secrets
from typing import Optional

from repro.crypto import cache as _cache
from repro.crypto import ec, ecdsa
from repro.errors import SignatureError

__all__ = ["SigningKey", "VerifyingKey", "generate_keypair"]


class VerifyingKey:
    """An ECDSA public key (immutable)."""

    __slots__ = ("_point", "_encoded")

    def __init__(self, point: ec.Point):
        if point.is_infinity or not ec.is_on_curve(point):
            raise SignatureError("invalid public key point")
        self._point = point
        self._encoded = ec.encode_point(point)

    @property
    def point(self) -> ec.Point:
        """The underlying curve point."""
        return self._point

    def to_bytes(self) -> bytes:
        """SEC1 compressed encoding (33 bytes)."""
        return self._encoded

    @classmethod
    def from_bytes(cls, data: bytes) -> "VerifyingKey":
        """Deserialize from bytes; raises on malformed input."""
        try:
            return cls(ec.decode_point(bytes(data)))
        except ValueError as exc:
            raise SignatureError(f"malformed public key: {exc}") from exc

    def verify(
        self, message: bytes, signature: bytes, *, require_low_s: bool = False
    ) -> bool:
        """True iff *signature* is a valid ECDSA signature on *message*.

        Successful verifications are memoized process-wide on the exact
        ``(key, digest, signature)`` triple (see
        :mod:`repro.crypto.cache`), so anti-entropy merges and repeated
        proof checks never re-ladder a signature already proven good.
        ``require_low_s`` (strict mode) is checked *before* the cache:
        a high-S signature is rejected here even if its triple verified
        under the permissive mode.
        """
        if require_low_s and not ecdsa.is_low_s(signature):
            return False
        digest = hashlib.sha256(message).digest()
        if _cache.verify_cache_hit(self._encoded, digest, signature):
            return True
        _cache.count_verify()
        ok = ecdsa.verify_prehashed(self._point, digest, signature)
        if ok:
            _cache.remember_verified(self._encoded, digest, signature)
        return ok

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VerifyingKey):
            return NotImplemented
        return self._encoded == other._encoded

    def __hash__(self) -> int:
        return hash(self._encoded)

    def __repr__(self) -> str:
        return f"VerifyingKey({self._encoded.hex()[:16]}...)"


class SigningKey:
    """An ECDSA private key with its cached public half."""

    __slots__ = ("_secret", "_public")

    def __init__(self, secret: int):
        if not 1 <= secret < ec.N:
            raise SignatureError("private scalar out of range")
        self._secret = secret
        self._public = VerifyingKey(ec.scalar_mult(secret, ec.GENERATOR))

    @classmethod
    def generate(cls, rng: Optional[secrets.SystemRandom] = None) -> "SigningKey":
        """Generate a fresh key; pass a seeded ``random.Random``-like *rng*
        for reproducible test fixtures."""
        if rng is None:
            secret = secrets.randbelow(ec.N - 1) + 1
        else:
            secret = rng.randrange(1, ec.N)
        return cls(secret)

    @classmethod
    def from_seed(cls, seed: bytes) -> "SigningKey":
        """Derive a key deterministically from *seed* (test fixtures and
        simulation reproducibility; do not use for production keys)."""
        import hashlib

        counter = 0
        while True:
            digest = hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
            candidate = int.from_bytes(digest, "big")
            if 1 <= candidate < ec.N:
                return cls(candidate)
            counter += 1

    @property
    def public(self) -> VerifyingKey:
        """The corresponding verifying (public) key."""
        return self._public

    def sign(self, message: bytes) -> bytes:
        """Sign *message*; returns the 64-byte ``r || s`` signature."""
        _cache.count_sign()
        signature = ecdsa.sign(self._secret, message)
        # Our own signatures are valid by construction: prime the verify
        # cache so the local round-trip (sign, then validate on insert)
        # costs one ladder, not two.
        _cache.remember_verified(
            self._public.to_bytes(), hashlib.sha256(message).digest(), signature
        )
        return signature

    def to_bytes(self) -> bytes:
        """Raw 32-byte big-endian secret scalar."""
        return self._secret.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "SigningKey":
        """Deserialize from bytes; raises on malformed input."""
        if len(data) != 32:
            raise SignatureError("private key must be 32 bytes")
        return cls(int.from_bytes(data, "big"))

    def __repr__(self) -> str:
        return f"SigningKey(public={self._public.to_bytes().hex()[:16]}...)"


def generate_keypair() -> SigningKey:
    """Convenience wrapper for :meth:`SigningKey.generate`."""
    return SigningKey.generate()
