"""Cryptographic substrate: SHA-256 hashing, pure-Python ECDSA P-256
(with a comb-table/Shamir acceleration layer, see :mod:`repro.crypto.ec`),
process-wide signature/digest memoization (:mod:`repro.crypto.cache`),
HMAC sessions, and Merkle trees.

Built from scratch per the reproduction's "implement every substrate"
rule; the only primitives taken from the standard library are
``hashlib.sha256`` and ``hmac`` (which the paper also treats as given).
"""

from repro.crypto import cache
from repro.crypto.hashing import HASH_LEN, HashPointer, hash_value, sha256
from repro.crypto.hmac_session import Handshake, SessionKey, hkdf
from repro.crypto.keys import SigningKey, VerifyingKey, generate_keypair
from repro.crypto.merkle import InclusionProof, MerkleTree, leaf_hash, node_hash

__all__ = [
    "HASH_LEN",
    "HashPointer",
    "cache",
    "hash_value",
    "sha256",
    "SigningKey",
    "VerifyingKey",
    "generate_keypair",
    "Handshake",
    "SessionKey",
    "hkdf",
    "MerkleTree",
    "InclusionProof",
    "leaf_hash",
    "node_hash",
]
