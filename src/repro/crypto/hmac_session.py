"""HMAC session keys for secure responses (§V, "Secure Responses").

The paper's steady-state optimization: a client and a DataCapsule-server
establish a shared secret alongside the first signed request/response,
then authenticate subsequent messages with HMAC instead of signatures,
"achiev[ing] a steady state byte overhead roughly similar to TLS".

The handshake here is an ephemeral ECDH on P-256 authenticated by the
parties' long-term ECDSA keys (the server's key is reachable from the
capsule name via its AdCert chain, so the chain of trust starts "from the
name of the object itself").  Key derivation is HKDF-SHA256 (RFC 5869)
implemented on the stdlib ``hmac``.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import secrets

from repro.crypto import ec
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.errors import IntegrityError, SignatureError

__all__ = ["hkdf", "SessionKey", "Handshake"]

MAC_LEN = 32


def hkdf(ikm: bytes, salt: bytes, info: bytes, length: int = 32) -> bytes:
    """HKDF-SHA256 extract-and-expand (RFC 5869)."""
    prk = _hmac.new(salt or b"\x00" * 32, ikm, hashlib.sha256).digest()
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = _hmac.new(
            prk, block + info + bytes([counter]), hashlib.sha256
        ).digest()
        okm += block
        counter += 1
    return okm[:length]


class SessionKey:
    """A directional pair of HMAC keys derived from a handshake."""

    __slots__ = ("send_key", "recv_key")

    def __init__(self, send_key: bytes, recv_key: bytes):
        self.send_key = send_key
        self.recv_key = recv_key

    def mac(self, message: bytes) -> bytes:
        """Authenticate an outgoing message."""
        return _hmac.new(self.send_key, message, hashlib.sha256).digest()

    def check(self, message: bytes, tag: bytes) -> None:
        """Verify an incoming message's MAC; raises
        :class:`IntegrityError` on mismatch."""
        expected = _hmac.new(self.recv_key, message, hashlib.sha256).digest()
        if not _hmac.compare_digest(expected, tag):
            raise IntegrityError("HMAC verification failed")


class Handshake:
    """One side of an authenticated ephemeral-ECDH key exchange.

    Usage (client side)::

        hs = Handshake(client_signing_key)
        offer = hs.offer()                      # send to server
        session = hs.finish(server_reply, server_verifying_key)

    The *offer* is the ephemeral public point plus a signature over it by
    the party's long-term key, binding the ephemeral key to an identity.
    """

    def __init__(self, identity: SigningKey, _ephemeral: int | None = None):
        self._identity = identity
        self._eph_secret = (
            _ephemeral
            if _ephemeral is not None
            else secrets.randbelow(ec.N - 1) + 1
        )
        self._eph_public = ec.scalar_mult(self._eph_secret, ec.GENERATOR)

    def offer(self) -> dict:
        """The signed ephemeral-key offer to send to the peer."""
        eph_bytes = ec.encode_point(self._eph_public)
        return {
            "ephemeral": eph_bytes,
            "identity": self._identity.public.to_bytes(),
            "signature": self._identity.sign(b"gdp.handshake" + eph_bytes),
        }

    @staticmethod
    def _verify_offer(offer: dict, expected_identity: VerifyingKey) -> ec.Point:
        identity = VerifyingKey.from_bytes(offer["identity"])
        if identity != expected_identity:
            raise SignatureError("handshake identity mismatch")
        if not identity.verify(
            b"gdp.handshake" + offer["ephemeral"], offer["signature"]
        ):
            raise SignatureError("handshake signature invalid")
        try:
            return ec.decode_point(offer["ephemeral"])
        except ValueError as exc:
            raise SignatureError(f"bad ephemeral point: {exc}") from exc

    def finish(
        self, peer_offer: dict, peer_identity: VerifyingKey, initiator: bool
    ) -> SessionKey:
        """Complete the exchange with the peer's offer.

        ``initiator`` disambiguates the directional keys: the initiator's
        send key is the responder's recv key and vice versa.
        """
        peer_point = self._verify_offer(peer_offer, peer_identity)
        shared = ec.scalar_mult(self._eph_secret, peer_point)
        if shared.is_infinity:
            raise SignatureError("degenerate ECDH shared secret")
        ikm = shared.x.to_bytes(32, "big")
        salt = bytes(
            a ^ b
            for a, b in zip(
                hashlib.sha256(self._identity.public.to_bytes()).digest(),
                hashlib.sha256(peer_identity.to_bytes()).digest(),
            )
        )
        key_i2r = hkdf(ikm, salt, b"gdp.session.i2r")
        key_r2i = hkdf(ikm, salt, b"gdp.session.r2i")
        if initiator:
            return SessionKey(send_key=key_i2r, recv_key=key_r2i)
        return SessionKey(send_key=key_r2i, recv_key=key_i2r)
