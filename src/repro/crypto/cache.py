"""Process-wide bounded caches for the crypto hot path.

Two memoization layers sit here, shared by every subsystem that signs,
verifies, or hashes:

- the **signature cache**: ECDSA verification is a pure function of
  ``(public key, message digest, signature)``, and the same triple is
  re-verified on every anti-entropy merge, ``verify_history`` walk, and
  proof check.  A triple that verified once per process is never
  re-laddered.  Only *successes* are remembered, so a forged signature
  can never turn into a hit — it always re-verifies (and fails).
- the **record-digest cache**: record digests are a pure function of the
  header content ``(capsule, seqno, payload_hash, pointers)``.  Caching
  them means ``merge_from``, the simtest oracles, proof verification,
  and storage replay stop re-encoding the same immutable objects.
  Tampered content necessarily changes the key, so a corrupted record
  can never inherit a cached digest.

Both caches are LRU-bounded (a long-running server must not grow without
bound) and instrumented: module-level counters (``crypto.sign``,
``crypto.verify``, ``crypto.verify_cached``, ``crypto.encode``,
``crypto.encode_cached``) are always collected and can additionally be
mirrored into a :class:`~repro.runtime.metrics.MetricsRegistry` via
:func:`bind_metrics` (``SimNetwork.enable_node_metrics`` does this under
the ``crypto`` scope).

The environment variable ``GDP_CRYPTO_ACCEL=0`` — or
:func:`set_accel_enabled` at runtime — disables both caches *and* the
precomputed-table paths in :mod:`repro.crypto.ec`, forcing the naive
reference implementations (used by benchmarks to measure the speedup and
by property tests to cross-check bit-identity).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Optional

__all__ = [
    "LruCache",
    "accel_enabled",
    "set_accel_enabled",
    "verify_cache_hit",
    "remember_verified",
    "record_digest",
    "counters",
    "bind_metrics",
    "reset",
]


class LruCache:
    """A dict with least-recently-used eviction at *maxsize* entries."""

    __slots__ = ("maxsize", "_data")

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    def get(self, key: Any) -> Any:
        """The cached value (refreshing recency), or ``None``."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: Any, value: Any) -> None:
        """Insert/overwrite *key*, evicting the oldest entry if full."""
        data = self._data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __repr__(self) -> str:
        return f"LruCache({len(self._data)}/{self.maxsize})"


_enabled = os.environ.get("GDP_CRYPTO_ACCEL", "1") != "0"

VERIFY_CACHE_SIZE = 8192
DIGEST_CACHE_SIZE = 16384

_VERIFIED: LruCache = LruCache(VERIFY_CACHE_SIZE)
_DIGESTS: LruCache = LruCache(DIGEST_CACHE_SIZE)

_COUNTERS: dict[str, int] = {
    "crypto.sign": 0,
    "crypto.verify": 0,
    "crypto.verify_cached": 0,
    "crypto.encode": 0,
    "crypto.encode_cached": 0,
}

#: optional mirror into a MetricsRegistry scope (last binding wins)
_sink = None


def accel_enabled() -> bool:
    """Whether the accelerated/cached crypto paths are active."""
    return _enabled


def set_accel_enabled(flag: bool) -> None:
    """Force the accelerated (True) or naive (False) crypto paths;
    disabling also clears the caches so stale hits cannot leak back in
    when re-enabled mid-test."""
    global _enabled
    _enabled = bool(flag)
    if not _enabled:
        _VERIFIED.clear()
        _DIGESTS.clear()


def bind_metrics(node_metrics) -> None:
    """Mirror the crypto counters into *node_metrics* (a
    :class:`~repro.runtime.metrics.NodeMetrics`, typically
    ``registry.node("crypto")``); pass ``None`` to unbind."""
    global _sink
    _sink = node_metrics


def _inc(name: str) -> None:
    _COUNTERS[name] += 1
    if _sink is not None:
        _sink.counter(name).inc()


def count_sign() -> None:
    """Record one ECDSA signing operation."""
    _inc("crypto.sign")


def counters() -> dict[str, int]:
    """A snapshot of the module counters."""
    return dict(_COUNTERS)


def reset() -> None:
    """Clear caches and zero counters (test isolation)."""
    _VERIFIED.clear()
    _DIGESTS.clear()
    for name in _COUNTERS:
        _COUNTERS[name] = 0


# -- signature memoization ---------------------------------------------------


def verify_cache_hit(pub: bytes, digest: bytes, signature: bytes) -> bool:
    """True iff this exact triple already verified successfully this
    process.  Counts a ``crypto.verify_cached`` hit; a miss counts
    nothing (the caller counts the real verification)."""
    if not _enabled:
        return False
    if _VERIFIED.get((pub, digest, signature)):
        _inc("crypto.verify_cached")
        return True
    return False


def remember_verified(pub: bytes, digest: bytes, signature: bytes) -> None:
    """Remember a *successful* verification.  Failures are deliberately
    never cached — correctness does not depend on it (the triple keys the
    exact inputs) but caching only successes makes "a cache can never
    accept a forgery" hold by construction."""
    if _enabled:
        _VERIFIED.put((pub, digest, signature), True)


def count_verify() -> None:
    """Record one real (non-cached) ECDSA verification."""
    _inc("crypto.verify")


# -- record-digest memoization ------------------------------------------------


def _freeze(value: Any) -> Optional[tuple]:
    """Recursively convert wire lists to hashable tuples; ``None`` when
    the value contains something unhashable-by-content (caller then
    bypasses the cache)."""
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            frozen = _freeze(item)
            if frozen is None:
                return None
            out.append(frozen)
        return ("L", tuple(out))
    if isinstance(value, (bytes, int, str, bool)) or value is None:
        return ("V", value)
    return None


def record_digest(
    capsule_raw: bytes, seqno: int, payload_hash: bytes, pointers: list
) -> bytes:
    """The domain-separated digest of a record header, memoized on the
    full header content (so one record is encoded once per process, no
    matter how many replicas, proofs, or oracles touch it)."""
    from repro.crypto.hashing import hash_value

    key = None
    if _enabled:
        frozen = _freeze(pointers)
        if frozen is not None:
            key = (capsule_raw, seqno, payload_hash, frozen)
            cached = _DIGESTS.get(key)
            if cached is not None:
                _inc("crypto.encode_cached")
                return cached
    _inc("crypto.encode")
    digest = hash_value(
        "gdp.record", [capsule_raw, seqno, payload_hash, pointers]
    )
    if key is not None:
        _DIGESTS.put(key, digest)
    return digest
