"""SHA-256 hashing helpers and typed hash-pointers.

Per the paper (§V), "unless otherwise specified, 'hash' refers to a SHA256
hash function".  This module centralizes hashing so every subsystem uses
the same domain-separated construction: each hash is computed over a
domain tag plus the canonical encoding of the value, which prevents
cross-protocol collisions (e.g. a record hash can never be confused with
a metadata hash).
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro import encoding

__all__ = [
    "HASH_LEN",
    "sha256",
    "hash_value",
    "HashPointer",
]

HASH_LEN = 32


def sha256(data: bytes) -> bytes:
    """Raw SHA-256 digest of *data*."""
    return hashlib.sha256(data).digest()


def hash_value(domain: str, value: Any) -> bytes:
    """Domain-separated SHA-256 over the canonical encoding of *value*.

    ``domain`` is a short ASCII label such as ``"gdp.record"``; it is
    length-prefixed so that no choice of domains can collide.
    """
    tag = domain.encode("ascii")
    preimage = bytes([len(tag)]) + tag + encoding.encode(value)
    return hashlib.sha256(preimage).digest()


class HashPointer:
    """A hash-pointer: the (sequence number, digest) of a prior record.

    The digest binds the pointed-to record's full content and *its* hash
    pointers, so a chain of pointers transitively attests the entire
    history (§V-A).  Instances are immutable and hashable so they can be
    used in sets during proof verification.
    """

    __slots__ = ("seqno", "digest")

    def __init__(self, seqno: int, digest: bytes):
        if seqno < 0:
            raise ValueError(f"seqno must be non-negative, got {seqno}")
        if len(digest) != HASH_LEN:
            raise ValueError(
                f"digest must be {HASH_LEN} bytes, got {len(digest)}"
            )
        object.__setattr__(self, "seqno", seqno)
        object.__setattr__(self, "digest", bytes(digest))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("HashPointer is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashPointer):
            return NotImplemented
        return self.seqno == other.seqno and self.digest == other.digest

    def __hash__(self) -> int:
        return hash((self.seqno, self.digest))

    def __repr__(self) -> str:
        return f"HashPointer(seqno={self.seqno}, digest={self.digest.hex()[:12]}...)"

    def to_wire(self) -> list:
        """Encodable representation for inclusion in signed structures."""
        return [self.seqno, self.digest]

    @classmethod
    def from_wire(cls, wire: Any) -> "HashPointer":
        """Rebuild from a wire form; raises on malformed input."""
        if (
            not isinstance(wire, list)
            or len(wire) != 2
            or not isinstance(wire[0], int)
            or not isinstance(wire[1], bytes)
        ):
            raise ValueError(f"malformed hash pointer: {wire!r}")
        return cls(wire[0], wire[1])
