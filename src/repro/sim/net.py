"""Simulated network: nodes, duplex links, and PDU delivery.

Links model the three quantities that drive the paper's numbers:
propagation latency, serialization bandwidth, and loss.  Bandwidth is
modelled per direction with a *busy-until* horizon: each transmitted
message occupies the line for ``size / bandwidth`` seconds, so sustained
throughput saturates exactly at the configured line rate — which is what
lets Figure 6's rate-vs-PDU-size curve and Figure 8's
residential-uplink-bound write times come out with the right shape.

Nodes address each other by attachment; routing above this layer is the
GDP's job (flat names), not the link layer's.

The network also owns the shared runtime plane (see
:mod:`repro.runtime`): a :class:`~repro.runtime.metrics.MetricsRegistry`
every node scopes its counters into, a delivery middleware pipeline that
every link runs (fault injection installs here), and the optional
deterministic trace stream.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.runtime.metrics import MetricsRegistry
from repro.runtime.middleware import (
    DeliveryPipeline,
    MetricsMiddleware,
    NodeMiddleware,
    NodePipeline,
)
from repro.runtime.trace import TraceMiddleware, TraceStream
from repro.sim.engine import Simulator

__all__ = ["SimNetwork", "Node", "Link"]


class Node:
    """Base class for anything attached to the network.

    Subclasses override :meth:`receive`.  ``node_id`` is a human label
    (distinct from GDP names, which live at the routing layer).
    """

    def __init__(self, network: "SimNetwork", node_id: str):
        self.network = network
        self.node_id = node_id
        self.links: list["Link"] = []
        network._register(self)

    @property
    def sim(self) -> Simulator:
        """The owning simulator."""
        return self.network.sim

    @property
    def ctx(self) -> Simulator:
        """The owning runtime context (the simulator, in sim mode)."""
        return self.network.ctx

    def link_to(self, other: "Node") -> "Link | None":
        """The direct link to *other*, or None."""
        for link in self.links:
            if link.peer(self) is other:
                return link
        return None

    def neighbors(self) -> list["Node"]:
        """Directly linked peer nodes."""
        return [link.peer(self) for link in self.links]

    def send(self, target: "Node", message: Any, size: int) -> None:
        """Send over the direct link to *target* (must be adjacent)."""
        link = self.link_to(target)
        if link is None:
            raise ValueError(f"{self.node_id} has no link to {target.node_id}")
        link.transmit(self, message, size)

    def receive(self, message: Any, sender: "Node", link: "Link") -> None:
        """Handle an arriving message; override in subclasses."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.node_id})"


class Link:
    """A duplex point-to-point link with asymmetric capacity.

    ``bandwidth_ab`` carries traffic A->B, ``bandwidth_ba`` B->A (both in
    bytes/second) — asymmetry models residential up/down links.  ``loss``
    is an i.i.d. drop probability applied per message, drawn from the
    network's seeded RNG.

    Per-link counters live in the network metrics registry under the
    scope ``link:<a>~<b>`` (names ``net.sent`` / ``net.dropped`` /
    ``net.bytes``); the historical ``stats_*`` attributes remain as
    read-only views.
    """

    def __init__(
        self,
        network: "SimNetwork",
        a: Node,
        b: Node,
        latency: float,
        bandwidth_ab: float,
        bandwidth_ba: float | None = None,
        loss: float = 0.0,
    ):
        if latency < 0:
            raise ValueError("latency must be >= 0")
        if bandwidth_ab <= 0:
            raise ValueError("bandwidth must be > 0")
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        self.network = network
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = {
            (a, b): bandwidth_ab,
            (b, a): bandwidth_ba if bandwidth_ba is not None else bandwidth_ab,
        }
        self.loss = loss
        self._busy_until = {(a, b): 0.0, (b, a): 0.0}
        self.up = True
        metrics = network.metrics.node(f"link:{a.node_id}~{b.node_id}")
        self._c_sent = metrics.counter("net.sent")
        self._c_dropped = metrics.counter("net.dropped")
        self._c_bytes = metrics.counter("net.bytes")
        self._c_delivered = metrics.counter("net.delivered")
        a.links.append(self)
        b.links.append(self)

    # -- backwards-compatible counter views --------------------------------

    @property
    def stats_sent(self) -> int:
        """Messages offered to the link (registry: ``net.sent``)."""
        return self._c_sent.value

    @property
    def stats_dropped(self) -> int:
        """Messages lost or suppressed (registry: ``net.dropped``)."""
        return self._c_dropped.value

    @property
    def stats_bytes(self) -> int:
        """Bytes serialized onto the line (registry: ``net.bytes``)."""
        return self._c_bytes.value

    @property
    def stats_delivered(self) -> int:
        """Messages handed to the receiver (registry: ``net.delivered``).

        Conservation invariant (checked by the simtest ``conservation``
        oracle): at quiesce, ``net.sent == net.dropped + net.delivered``
        on every link — a message offered to a link is either dropped
        (link down, loss, fault middleware) or delivered, never lost
        silently.
        """
        return self._c_delivered.value

    def peer(self, node: Node) -> Node:
        """The node on the other end of this link."""
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node.node_id} is not on this link")

    def transmit(self, sender: Node, message: Any, size: int) -> None:
        """Queue *message* (of *size* bytes) for delivery to the peer."""
        if size < 0:
            raise ValueError("message size must be >= 0")
        sim = self.network.sim
        receiver = self.peer(sender)
        direction = (sender, receiver)
        self._c_sent.inc()
        if not self.up:
            self._c_dropped.inc()
            return
        if self.loss and self.network.rng.random() < self.loss:
            self._c_dropped.inc()
            return
        self._c_bytes.inc(size)
        serialization = size / self.bandwidth[direction]
        start = max(sim.now, self._busy_until[direction])
        self._busy_until[direction] = start + serialization
        arrival_delay = (start + serialization + self.latency) - sim.now
        pipeline = self.network.delivery
        if pipeline:
            processed = pipeline.run(self, sender, receiver, message, size)
            if processed is None:
                self._c_dropped.inc()
                return
            message, extra_delay = processed
            arrival_delay += extra_delay
        sim.schedule(
            arrival_delay, self._deliver, receiver, message, sender
        )

    def _deliver(self, receiver: Node, message: Any, sender: Node) -> None:
        if not self.up:
            self._c_dropped.inc()
            return
        self._c_delivered.inc()
        receiver.receive(message, sender, self)

    def fail(self) -> None:
        """Take the link down (partition); queued deliveries are dropped."""
        self.up = False

    def recover(self) -> None:
        """Bring the link back up."""
        self.up = True

    def __repr__(self) -> str:
        return (
            f"Link({self.a.node_id}<->{self.b.node_id}, "
            f"{self.latency * 1000:.1f}ms)"
        )


class SimNetwork:
    """The network: a simulator plus nodes, links, and a seeded RNG.

    The network owns the shared runtime plane:

    - ``metrics`` — the :class:`MetricsRegistry` every node and link
      scopes its named counters into (``metrics_enabled=False`` makes
      all instruments no-ops for zero-overhead hot loops);
    - ``delivery`` — the link-level middleware pipeline (fault
      injection; ``add_delivery_hook`` remains as a thin legacy shim);
    - node middlewares — installed with :meth:`install_node_middleware`,
      seeded into every node pipeline created via :meth:`node_pipeline`
      (tracing via :meth:`enable_tracing`, generic PDU counting via
      :meth:`enable_node_metrics`).
    """

    def __init__(self, seed: int = 0, *, metrics_enabled: bool = True):
        self.sim = Simulator()
        self.rng = random.Random(seed)
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        self.metrics = MetricsRegistry(enabled=metrics_enabled)
        self.delivery = DeliveryPipeline()
        self.tracer: TraceStream | None = None
        self._node_middlewares: list[NodeMiddleware] = []

    @property
    def ctx(self) -> Simulator:
        """The runtime context (the simulator itself in sim mode; see
        :class:`~repro.runtime.context.RuntimeContext`)."""
        return self.sim

    def _register(self, node: Node) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node

    def transport_for(self, node: Node, **kwargs):
        """A :class:`~repro.runtime.transport.SimTransport` for *node*
        (peers are adjacent nodes; sends charge the duplex links)."""
        from repro.runtime.transport import SimTransport

        return SimTransport(node, **kwargs)

    def connect(
        self,
        a: Node,
        b: Node,
        *,
        latency: float,
        bandwidth: float,
        bandwidth_up: float | None = None,
        loss: float = 0.0,
    ) -> Link:
        """Create a duplex link; ``bandwidth`` is the A->B (download
        from A's perspective is B->A) rate, ``bandwidth_up`` overrides
        the reverse direction for asymmetric links."""
        link = Link(
            self, a, b, latency, bandwidth, bandwidth_up, loss
        )
        self.links.append(link)
        return link

    def bytes_on_wire(self) -> int:
        """Total bytes serialized onto every link so far — the
        bandwidth-weighted transfer cost the replication bench and the
        O(missing)-bytes property test measure."""
        return sum(link.stats_bytes for link in self.links)

    # -- the node middleware plane -----------------------------------------

    def node_pipeline(self) -> NodePipeline:
        """A fresh per-node pipeline pre-seeded with the network-wide
        node middlewares (called by endpoint/router constructors)."""
        return NodePipeline(self._node_middlewares)

    def install_node_middleware(self, middleware: NodeMiddleware) -> NodeMiddleware:
        """Install *middleware* on every existing node pipeline and on
        every pipeline created afterwards."""
        self._node_middlewares.append(middleware)
        for node in self.nodes.values():
            pipeline = getattr(node, "pipeline", None)
            if pipeline is not None:
                pipeline.use(middleware)
        return middleware

    def remove_node_middleware(self, middleware: NodeMiddleware) -> None:
        """Undo :meth:`install_node_middleware`."""
        self._node_middlewares.remove(middleware)
        for node in self.nodes.values():
            pipeline = getattr(node, "pipeline", None)
            if pipeline is not None and middleware in pipeline:
                pipeline.remove(middleware)

    def enable_tracing(self) -> TraceStream:
        """Turn on the deterministic trace stream (idempotent); every
        PDU through every node pipeline becomes a span event."""
        if self.tracer is None:
            self.tracer = TraceStream(clock=lambda: self.sim.now)
            self.install_node_middleware(TraceMiddleware(self.tracer))
        return self.tracer

    def enable_node_metrics(self) -> None:
        """Count PDUs/bytes through every node pipeline into the
        registry (``node.pdus_in`` etc.; idempotent).  Also mirrors the
        process-wide crypto cache counters (``crypto.sign``,
        ``crypto.verify``, ``crypto.verify_cached``, ...) into this
        registry's ``crypto`` scope — last network to enable wins, which
        is fine for the single-threaded simulator."""
        from repro.crypto import cache as crypto_cache

        crypto_cache.bind_metrics(self.metrics.node("crypto"))
        for middleware in self._node_middlewares:
            if isinstance(middleware, MetricsMiddleware):
                return
        self.install_node_middleware(MetricsMiddleware(self.metrics))

    # -- legacy delivery hooks ----------------------------------------------

    def add_delivery_hook(
        self, hook: Callable[[Link, Node, Node, Any, int], bool | None]
    ) -> None:
        """Install a delivery interception hook (legacy shim over the
        delivery middleware pipeline)."""
        self.delivery.use_hook(hook)

    def remove_delivery_hook(self, hook: Callable) -> None:
        """Remove a previously installed hook."""
        self.delivery.remove_hook(hook)
