"""Deterministic discrete-event simulation engine.

The paper's evaluation ran on real EC2 instances and a residential
uplink; this engine is the substitute substrate (DESIGN.md §2): it gives
the reproduction a controllable notion of time, latency, bandwidth, and
failure, with fully deterministic execution (seeded RNG, stable event
ordering) so every benchmark run is replayable.

Two programming styles are supported:

- **Callbacks**: ``sim.schedule(delay, fn, *args)`` — used by routers and
  servers reacting to PDUs.
- **Processes**: generator coroutines that ``yield`` either a float
  (sleep that many simulated seconds) or a :class:`Future` (resume when
  it resolves) — used by clients, replication daemons, and benchmarks.

Time is a float in seconds.  Events scheduled at equal times fire in
schedule order (a monotonically increasing tiebreaker), which is what
makes runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import TimeoutError_

__all__ = ["Simulator", "Future", "Process"]


class Future:
    """A one-shot value a process can wait on."""

    __slots__ = ("sim", "_value", "_error", "_done", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._error: BaseException | None = None
        self._done = False
        self._waiters: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        """Whether the future has resolved or failed."""
        return self._done

    def result(self) -> Any:
        """The resolved value; raises the stored error if failed."""
        if not self._done:
            raise RuntimeError("future is not resolved yet")
        if self._error is not None:
            raise self._error
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Resolve with *value* (idempotent; later calls ignored)."""
        if self._done:
            return
        self._done = True
        self._value = value
        for waiter in self._waiters:
            self.sim.schedule(0.0, waiter, self)
        self._waiters.clear()

    def fail(self, error: BaseException) -> None:
        """Fail with *error* (idempotent; later calls ignored)."""
        if self._done:
            return
        self._done = True
        self._error = error
        for waiter in self._waiters:
            self.sim.schedule(0.0, waiter, self)
        self._waiters.clear()

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        """Invoke *fn* with this future once it settles."""
        if self._done:
            self.sim.schedule(0.0, fn, self)
        else:
            self._waiters.append(fn)


class Process:
    """A generator coroutine driven by the simulator.

    The generator may ``yield``:
    - ``float | int`` — sleep that many simulated seconds;
    - :class:`Future` — resume (with its value, or its exception thrown
      in) when it resolves;
    - ``None`` — yield the scheduler for one tick.

    The process itself exposes a :class:`Future` (``.completion``)
    resolving with the generator's return value.
    """

    __slots__ = ("sim", "generator", "completion", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        self.sim = sim
        self.generator = generator
        self.completion = Future(sim)
        self.name = name or getattr(generator, "__name__", "process")
        sim.schedule(0.0, self._step, None, None)

    def _step(self, send_value: Any, throw_error: BaseException | None) -> None:
        try:
            if throw_error is not None:
                yielded = self.generator.throw(throw_error)
            else:
                yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self.completion.resolve(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
            self.completion.fail(exc)
            return
        if yielded is None:
            self.sim.schedule(0.0, self._step, None, None)
        elif isinstance(yielded, (int, float)):
            self.sim.schedule(float(yielded), self._step, None, None)
        elif isinstance(yielded, Future):
            yielded.add_callback(self._on_future)
        else:
            self.sim.schedule(
                0.0,
                self._step,
                None,
                TypeError(f"process yielded unsupported {yielded!r}"),
            )

    def _on_future(self, future: Future) -> None:
        try:
            value = future.result()
        except BaseException as exc:  # noqa: BLE001 — forwarded into process
            self._step(None, exc)
            return
        self._step(value, None)


class Simulator:
    """The event loop: a priority queue over (time, seq) keys."""

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current (simulated) time."""
        return self._now

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` *delay* simulated seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, fn, args))

    def future(self) -> Future:
        """Create a new unresolved :class:`Future`."""
        return Future(self)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a process coroutine; returns the Process (await its
        ``.completion``)."""
        return Process(self, generator, name)

    def timeout(self, future: Future, deadline: float, what: str = "") -> Future:
        """A future that resolves like *future* but fails with
        :class:`TimeoutError_` if *deadline* seconds pass first."""
        wrapped = self.future()

        def on_done(fut: Future) -> None:
            if wrapped.done:
                return
            try:
                wrapped.resolve(fut.result())
            except BaseException as exc:  # noqa: BLE001
                wrapped.fail(exc)

        def on_deadline() -> None:
            if not wrapped.done:
                wrapped.fail(
                    TimeoutError_(f"timed out after {deadline}s: {what}")
                )

        future.add_callback(on_done)
        self.schedule(deadline, on_deadline)
        return wrapped

    def gather(self, futures: Iterable[Future]) -> Future:
        """Future resolving with a list of all results (fails fast on the
        first failure)."""
        futures = list(futures)
        combined = self.future()
        if not futures:
            combined.resolve([])
            return combined
        remaining = {"count": len(futures)}
        results: list[Any] = [None] * len(futures)

        def make_callback(index: int) -> Callable[[Future], None]:
            def callback(fut: Future) -> None:
                if combined.done:
                    return
                try:
                    results[index] = fut.result()
                except BaseException as exc:  # noqa: BLE001
                    combined.fail(exc)
                    return
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    combined.resolve(results)

            return callback

        for i, fut in enumerate(futures):
            fut.add_callback(make_callback(i))
        return combined

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _, fn, args = heapq.heappop(self._queue)
        self._now = when
        fn(*args)
        return True

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> None:
        """Drain the event queue, optionally stopping the clock at
        *until* (events beyond it remain queued)."""
        executed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            self.step()
            executed += 1
            if executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events — livelock?"
                )
        if until is not None:
            self._now = max(self._now, until)

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Spawn a process, run the simulation until it completes, and
        return its result (the common benchmark entry point)."""
        process = self.spawn(generator, name)
        while not process.completion.done:
            if not self.step():
                raise RuntimeError(
                    f"deadlock: process {process.name!r} is waiting but "
                    "the event queue is empty"
                )
        return process.completion.result()
