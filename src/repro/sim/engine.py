"""Deterministic discrete-event simulation engine.

The paper's evaluation ran on real EC2 instances and a residential
uplink; this engine is the substitute substrate (DESIGN.md §2): it gives
the reproduction a controllable notion of time, latency, bandwidth, and
failure, with fully deterministic execution (seeded RNG, stable event
ordering) so every benchmark run is replayable.

Two programming styles are supported:

- **Callbacks**: ``sim.schedule(delay, fn, *args)`` — used by routers and
  servers reacting to PDUs.
- **Processes**: generator coroutines that ``yield`` either a float
  (sleep that many simulated seconds) or a :class:`Future` (resume when
  it resolves) — used by clients, replication daemons, and benchmarks.

Time is a float in seconds.  Events scheduled at equal times fire in
schedule order (a monotonically increasing tiebreaker), which is what
makes runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro.runtime.context import Future, Process, RuntimeContext

__all__ = ["Simulator", "Future", "Process"]


class Simulator(RuntimeContext):
    """The event loop: a priority queue over (time, seq) keys.

    ``Future``/``Process`` and the derived combinators (``timeout``,
    ``gather``) live on :class:`~repro.runtime.context.RuntimeContext`;
    this class supplies the virtual clock and the deterministic queue.
    """

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        #: True while run()/run_process() is draining the queue — sync
        #: facades (the DHT tier) check it to decide whether driving the
        #: simulation themselves is safe or a reentrancy bug.
        self.running = False

    @property
    def now(self) -> float:
        """Current (simulated) time."""
        return self._now

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` *delay* simulated seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, fn, args))

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _, fn, args = heapq.heappop(self._queue)
        self._now = when
        fn(*args)
        return True

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> None:
        """Drain the event queue, optionally stopping the clock at
        *until* (events beyond it remain queued)."""
        executed = 0
        was_running, self.running = self.running, True
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self._now = until
                    return
                self.step()
                executed += 1
                if executed >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events — livelock?"
                    )
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self.running = was_running

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Spawn a process, run the simulation until it completes, and
        return its result (the common benchmark entry point)."""
        process = self.spawn(generator, name)
        was_running, self.running = self.running, True
        try:
            while not process.completion.done:
                if not self.step():
                    raise RuntimeError(
                        f"deadlock: process {process.name!r} is waiting but "
                        "the event queue is empty"
                    )
        finally:
            self.running = was_running
        return process.completion.result()
