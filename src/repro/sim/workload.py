"""Workload generators for benchmarks and examples.

All generators are seeded and deterministic.  Blob payloads are built
from cheap repeating pseudo-random blocks so a 115 MB "model" costs
microseconds to materialize, while still being incompressible-ish and
unique per (seed, size).
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterator

__all__ = [
    "blob",
    "record_sizes",
    "op_schedule",
    "poisson_arrivals",
    "sensor_readings",
    "MODEL_SMALL",
    "MODEL_LARGE",
]

#: the two pre-trained model sizes of Figure 8
MODEL_SMALL = 28 * 1024 * 1024   # "a 28 MB model"
MODEL_LARGE = 115 * 1024 * 1024  # "a 115 MB model"

_BLOCK = 65536


def blob(size: int, seed: int = 0) -> bytes:
    """*size* deterministic pseudo-random bytes (cheap: one hashed block
    tiled, with a unique header so two blobs never collide)."""
    if size < 0:
        raise ValueError("size must be >= 0")
    header = hashlib.sha256(f"blob:{seed}:{size}".encode()).digest()
    block = hashlib.sha256(header).digest()
    block = (block * (_BLOCK // len(block) + 1))[:_BLOCK]
    reps = size // _BLOCK + 1
    data = (header + block * reps)[:size]
    return data


def record_sizes(
    count: int,
    *,
    mean: int = 512,
    distribution: str = "lognormal",
    seed: int = 0,
) -> list[int]:
    """Record payload sizes: 'fixed', 'uniform' (mean/2 .. 3*mean/2) or
    'lognormal' (heavy-tailed, like real sensor/event payloads)."""
    rng = random.Random(seed)
    if distribution == "fixed":
        return [mean] * count
    if distribution == "uniform":
        return [rng.randint(mean // 2, 3 * mean // 2) for _ in range(count)]
    if distribution == "lognormal":
        sigma = 0.75
        mu = math.log(mean) - sigma * sigma / 2
        return [max(1, int(rng.lognormvariate(mu, sigma))) for _ in range(count)]
    raise ValueError(f"unknown distribution {distribution!r}")


def op_schedule(
    count: int,
    *,
    mix: dict[str, float] | None = None,
    seed: int = 0,
) -> list[str]:
    """A deterministic operation schedule drawn from a weighted *mix*
    (default: append-heavy with occasional reads, the shape of the
    paper's sensor/actuator workloads).  Keys are iterated in sorted
    order so the draw sequence is independent of dict insertion order."""
    if count < 0:
        raise ValueError("count must be >= 0")
    mix = mix if mix is not None else {
        "append": 0.6,
        "read_latest": 0.2,
        "read": 0.2,
    }
    if not mix:
        raise ValueError("mix must not be empty")
    rng = random.Random(seed)
    names = sorted(mix)
    weights = [mix[name] for name in names]
    return rng.choices(names, weights=weights, k=count)


def poisson_arrivals(
    count: int, rate: float, *, seed: int = 0
) -> list[float]:
    """*count* arrival times with exponential inter-arrivals at *rate*
    events/second (a Poisson process)."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    rng = random.Random(seed)
    t = 0.0
    out = []
    for _ in range(count):
        t += rng.expovariate(rate)
        out.append(t)
    return out


def sensor_readings(
    count: int,
    *,
    base: float = 21.0,
    amplitude: float = 4.0,
    noise: float = 0.3,
    period: float = 86400.0,
    interval: float = 60.0,
    seed: int = 0,
) -> Iterator[tuple[float, float]]:
    """Synthetic ambient-temperature readings (the paper's canonical
    time-series example): diurnal sinusoid + Gaussian noise, one sample
    per *interval* seconds."""
    rng = random.Random(seed)
    for i in range(count):
        t = i * interval
        value = (
            base
            + amplitude * math.sin(2 * math.pi * t / period)
            + rng.gauss(0.0, noise)
        )
        yield t, round(value, 3)
