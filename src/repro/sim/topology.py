"""Topology builders for the paper's evaluation scenarios.

Link parameters come straight from §IX: "our client is in a residential
network, with the Internet bandwidth capped to 100/10 Mbps
(upload/download) [sic — download/upload]: a good representative of an
average household Internet connection in United States.  We compare
against an Amazon S3 bucket in a specific S3 region (on the same
continent).  We run the GDP infrastructure in Amazon EC2 in the same
region ... Next, we run the same experiment, but this time we use the
GDP infrastructure in local environment using on-premise edge
resources."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.net import SimNetwork

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.routing.domain import RoutingDomain
    from repro.routing.router import GdpRouter

__all__ = [
    "Topology",
    "single_router",
    "residential_edge_cloud",
    "federated_campus",
    "random_topology",
    "MBPS",
    "GBPS",
]

MBPS = 1_000_000 / 8  # bytes per second per Mbit/s
GBPS = 1_000_000_000 / 8


@dataclass
class Topology:
    """A built topology: the network plus named handles."""

    net: SimNetwork
    domains: dict = field(default_factory=dict)
    routers: dict = field(default_factory=dict)

    @property
    def sim(self):
        """The owning simulator."""
        return self.net.sim

    def domain(self, name: str) -> "RoutingDomain":
        """Look up a routing domain by name."""
        return self.domains[name]

    def router(self, name: str) -> "GdpRouter":
        """Look up a router by node id."""
        return self.routers[name]


def single_router(
    seed: int = 0, *, service_time: float | None = None
) -> Topology:
    """One router in one domain — the Figure 6 forwarding testbed
    (clients and servers all attach to the same GDP-router, as in the
    paper's EC2 setup)."""
    from repro.routing.domain import RoutingDomain
    from repro.routing.router import GdpRouter

    net = SimNetwork(seed=seed)
    clock = lambda: net.sim.now  # noqa: E731
    root = RoutingDomain("global", clock=clock)
    kwargs = {} if service_time is None else {"service_time": service_time}
    router = GdpRouter(net, "r0", root, **kwargs)
    return Topology(net, {"global": root}, {"r0": router})


def residential_edge_cloud(seed: int = 0) -> Topology:
    """The Figure 8 case-study topology.

    =========  ====================================================
    domain     contents
    =========  ====================================================
    global     the ISP / Internet backbone router
    global.cloud  the EC2-region datacenter (S3 + GDP cloud servers)
    global.home   the residential LAN (client + on-premise edge box)
    =========  ====================================================

    The home uplink is 10 Mbps up / 100 Mbps down with ~10 ms to the
    ISP; ISP to the cloud region is fat and ~10 ms; everything on the
    home LAN is 1 Gbps and sub-millisecond.
    """
    from repro.routing.domain import RoutingDomain
    from repro.routing.router import GdpRouter

    net = SimNetwork(seed=seed)
    clock = lambda: net.sim.now  # noqa: E731
    root = RoutingDomain("global", clock=clock)
    cloud = RoutingDomain("global.cloud", root)
    home = RoutingDomain("global.home", root)

    r_isp = GdpRouter(net, "r_isp", root)
    r_cloud = GdpRouter(net, "r_cloud", cloud)
    r_home = GdpRouter(net, "r_home", home)

    # Residential last mile: asymmetric 100 down / 10 up, ~10 ms.
    net.connect(
        r_home,
        r_isp,
        latency=0.010,
        bandwidth=10 * MBPS,       # home -> ISP (upload)
        bandwidth_up=100 * MBPS,   # ISP -> home (download)
    )
    # Backbone into the cloud region: 10 Gbps, ~10 ms.
    net.connect(r_cloud, r_isp, latency=0.010, bandwidth=10 * GBPS)

    home.attach_to_parent(r_home, r_isp)
    cloud.attach_to_parent(r_cloud, r_isp)
    return Topology(
        net,
        {"global": root, "global.cloud": cloud, "global.home": home},
        {"r_isp": r_isp, "r_cloud": r_cloud, "r_home": r_home},
    )


def federated_campus(
    n_domains: int = 3,
    *,
    seed: int = 0,
    intra_latency: float = 0.002,
    backbone_latency: float = 0.015,
    routers_per_domain: int = 2,
) -> Topology:
    """A federation: one backbone domain with *n_domains* child domains,
    each a small chain of routers — the multi-administrative-entity
    fabric of Figure 1 used by federation/anycast tests and benches."""
    from repro.routing.domain import RoutingDomain
    from repro.routing.router import GdpRouter

    net = SimNetwork(seed=seed)
    clock = lambda: net.sim.now  # noqa: E731
    root = RoutingDomain("global", clock=clock)
    backbone = GdpRouter(net, "bb0", root)
    domains = {"global": root}
    routers = {"bb0": backbone}
    for d in range(n_domains):
        dname = f"global.site{d}"
        domain = RoutingDomain(dname, root)
        domains[dname] = domain
        previous = None
        gateway = None
        for r in range(routers_per_domain):
            router = GdpRouter(net, f"site{d}_r{r}", domain)
            routers[router.node_id] = router
            if previous is not None:
                net.connect(
                    router, previous, latency=intra_latency, bandwidth=GBPS
                )
            else:
                gateway = router
            previous = router
        assert gateway is not None
        net.connect(gateway, backbone, latency=backbone_latency, bandwidth=GBPS)
        domain.attach_to_parent(gateway, backbone)
    return Topology(net, domains, routers)


def random_topology(seed: int, rng: random.Random) -> Topology:
    """A randomly shaped small federation for simulation-test episodes.

    Structural choices (domain count, routers per domain, latencies) are
    drawn from *rng*; *seed* seeds the network's own RNG (link loss,
    anycast tie-breaks).  Two calls with equal *seed* and an identically
    seeded *rng* build identical topologies — the foundation of episode
    replay (see :mod:`repro.simtest`).
    """
    n_domains = rng.randint(1, 3)
    routers_per_domain = rng.randint(1, 2)
    intra_latency = rng.choice([0.001, 0.002, 0.005])
    backbone_latency = rng.choice([0.010, 0.015, 0.030])
    return federated_campus(
        n_domains,
        seed=seed,
        intra_latency=intra_latency,
        backbone_latency=backbone_latency,
        routers_per_domain=routers_per_domain,
    )
