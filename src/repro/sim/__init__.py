"""Discrete-event simulation substrate: engine, network, topologies,
workloads."""

from repro.sim.engine import Future, Process, Simulator
from repro.sim.net import Link, Node, SimNetwork
from repro.sim.topology import (
    GBPS,
    MBPS,
    Topology,
    federated_campus,
    residential_edge_cloud,
    single_router,
)
from repro.sim.workload import (
    MODEL_LARGE,
    MODEL_SMALL,
    blob,
    poisson_arrivals,
    record_sizes,
    sensor_readings,
)

__all__ = [
    "Simulator",
    "Future",
    "Process",
    "SimNetwork",
    "Node",
    "Link",
    "Topology",
    "single_router",
    "residential_edge_cloud",
    "federated_campus",
    "MBPS",
    "GBPS",
    "blob",
    "record_sizes",
    "poisson_arrivals",
    "sensor_readings",
    "MODEL_SMALL",
    "MODEL_LARGE",
]
