"""Exception hierarchy for the GDP reproduction.

All library-raised exceptions derive from :class:`GdpError` so callers can
catch the whole family with a single clause.  Subsystems raise the most
specific subclass that applies; security-relevant failures derive from
:class:`SecurityError` so that integrity violations are never silently
conflated with operational errors (e.g. a missing record vs a forged one).
"""

from __future__ import annotations


class GdpError(Exception):
    """Base class for all errors raised by this library."""


class EncodingError(GdpError):
    """Malformed or non-canonical serialized data."""


class SecurityError(GdpError):
    """Base class for integrity / authenticity / authorization failures."""


class SignatureError(SecurityError):
    """A digital signature failed to verify."""


class IntegrityError(SecurityError):
    """A hash-pointer chain, proof, or MAC failed to verify."""


class AuthorizationError(SecurityError):
    """An operation was attempted without a valid delegation."""


class DelegationError(SecurityError):
    """A delegation certificate (AdCert / RtCert) is invalid or expired."""


class EquivocationError(SecurityError):
    """Two conflicting signed statements were produced for the same slot."""


class NameError_(GdpError):
    """A flat GDP name is malformed or does not match its preimage."""


class CapsuleError(GdpError):
    """Base class for DataCapsule operational errors."""


class RecordNotFoundError(CapsuleError):
    """The requested record sequence number is not (yet) available."""


class HoleError(CapsuleError):
    """A gap in the hash-pointer chain prevents the requested operation."""


class BranchError(CapsuleError):
    """A quasi-single-writer branch prevents a total order."""


class WriterStateError(CapsuleError):
    """The writer's persistent state is missing or inconsistent."""


class CommitConflictError(CapsuleError):
    """An optimistic (compare-seqno) submission lost the race: the key
    advanced past the submitted precondition.  Carries enough context to
    rebase and retry."""

    def __init__(self, key: str, winning_seqno: int, expected: int):
        super().__init__(
            f"commit conflict on key {key!r}: expected seqno {expected}, "
            f"key is at {winning_seqno}"
        )
        self.key = key
        self.winning_seqno = winning_seqno
        self.expected = expected


class RoutingError(GdpError):
    """Base class for GDP-network routing failures."""


class NoRouteError(RoutingError):
    """No verified route to the destination name exists."""


class AdvertisementError(RoutingError, SecurityError):
    """A secure advertisement failed verification."""


class ScopeViolationError(RoutingError, SecurityError):
    """A routing entry would escape its owner-declared placement scope."""


class TransportError(GdpError):
    """Network transport failure (drop, partition, closed peer, timeout)."""


class WireFormatError(TransportError, EncodingError):
    """A binary frame or PDU failed to parse (truncated, oversized,
    garbage, or unknown type code)."""


class TimeoutError_(TransportError):
    """An operation did not complete within its deadline."""


class DurabilityError(CapsuleError):
    """The requested durability (ack) policy could not be satisfied."""


class StorageError(GdpError):
    """Backend storage failure on a DataCapsule-server."""
