"""Capsule writers: strict and quasi single-writer modes (§V-A, §VI-C).

The single writer is the system's only point of serialization: it decides
what goes into the capsule and in what order, signs a heartbeat per
append, and keeps just enough local state to mint the next record — "at
the very least ... the hash of the most recent record (potentially in
non-volatile memory to recover after writer failures), and any additional
hashes the writer might need in near future".

:class:`WriterState` is that local state, with optional file persistence
standing in for the paper's non-volatile memory.  :class:`CapsuleWriter`
(SSW) refuses to proceed without its state — losing it is exactly the
failure QSW exists for.  :class:`QuasiWriter` (QSW) can *resume from a
replica tip*; if the lost state had unreplicated appends, the resume
creates a branch, which readers observe via the branches API and resolve
with strong-eventual-consistency semantics (§VI-C).
"""

from __future__ import annotations

import os
from typing import Callable

from repro import encoding
from repro.capsule.capsule import DataCapsule
from repro.capsule.heartbeat import Heartbeat
from repro.capsule.records import Record, metadata_anchor
from repro.crypto.hashing import HashPointer
from repro.crypto.keys import SigningKey
from repro.errors import EncodingError, WriterStateError
from repro.naming.names import GdpName

__all__ = ["WriterState", "CapsuleWriter", "QuasiWriter"]


class WriterState:
    """The writer's durable local state: last seqno, logical clock, and
    the digests of past records still reachable by future pointers."""

    def __init__(
        self,
        capsule: GdpName,
        last_seqno: int = 0,
        timestamp: int = 0,
        digests: dict[int, bytes] | None = None,
    ):
        self.capsule = capsule
        self.last_seqno = last_seqno
        self.timestamp = timestamp
        self.digests: dict[int, bytes] = dict(digests or {})

    def to_bytes(self) -> bytes:
        """Serialized byte form."""
        return encoding.encode(
            {
                "capsule": self.capsule.raw,
                "last_seqno": self.last_seqno,
                "timestamp": self.timestamp,
                "digests": {str(k): v for k, v in self.digests.items()},
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "WriterState":
        """Deserialize from bytes; raises on malformed input."""
        try:
            wire = encoding.decode(data)
            return cls(
                GdpName(wire["capsule"]),
                wire["last_seqno"],
                wire["timestamp"],
                {int(k): v for k, v in wire["digests"].items()},
            )
        except (EncodingError, KeyError, TypeError, ValueError) as exc:
            raise WriterStateError(f"corrupt writer state: {exc}") from exc

    def save(self, path: str) -> None:
        """Atomically persist to *path* (write-then-rename, the simulated
        non-volatile memory)."""
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(self.to_bytes())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "WriterState":
        """Load from *path*; raises on missing/corrupt state."""
        try:
            with open(path, "rb") as fh:
                return cls.from_bytes(fh.read())
        except OSError as exc:
            raise WriterStateError(f"cannot load writer state: {exc}") from exc


class CapsuleWriter:
    """Strict Single-Writer (SSW): a linear, totally ordered history.

    ``append`` produces a (record, heartbeat) pair ready to hand to the
    client/transport layer; the capsule replica passed in (usually the
    writer's own local copy) is updated en route.
    """

    def __init__(
        self,
        capsule: DataCapsule,
        writer_key: SigningKey,
        *,
        state: WriterState | None = None,
        state_path: str | None = None,
        clock: Callable[[], int] | None = None,
    ):
        if writer_key.public != capsule.writer_key:
            raise WriterStateError(
                "signing key does not match the capsule's designated writer"
            )
        self.capsule = capsule
        self._key = writer_key
        self._state_path = state_path
        self._clock = clock
        if state is not None:
            self.state = state
        elif state_path is not None and os.path.exists(state_path):
            self.state = WriterState.load(state_path)
        else:
            self.state = WriterState(capsule.name)
        if self.state.capsule != capsule.name:
            raise WriterStateError("writer state belongs to another capsule")

    @property
    def last_seqno(self) -> int:
        """The last locally minted sequence number."""
        return self.state.last_seqno

    def _next_timestamp(self) -> int:
        if self._clock is not None:
            tick = self._clock()
            # Logical clocks must move forward even if the wall clock
            # stalls in a simulation step.
            self.state.timestamp = max(self.state.timestamp + 1, tick)
        else:
            self.state.timestamp += 1
        return self.state.timestamp

    def _build_pointers(self, seqno: int) -> list[HashPointer]:
        pointers = []
        for target in self.capsule.strategy.targets(seqno):
            if target == 0:
                pointers.append(metadata_anchor(self.capsule.name))
                continue
            digest = self.state.digests.get(target)
            if digest is None:
                raise WriterStateError(
                    f"writer state lacks the digest of record {target} "
                    f"needed by record {seqno}"
                )
            pointers.append(HashPointer(target, digest))
        return pointers

    def _retire_stale_digests(self, last_seqno: int) -> None:
        strategy = self.capsule.strategy
        self.state.digests = {
            seqno: digest
            for seqno, digest in self.state.digests.items()
            if strategy.still_needed(seqno, last_seqno)
        }

    def _mint(self, payload: bytes) -> Record:
        """Create and locally apply the next record (no heartbeat yet)."""
        seqno = self.state.last_seqno + 1
        record = Record(
            self.capsule.name, seqno, payload, self._build_pointers(seqno)
        )
        self.capsule.insert(record)
        self.state.last_seqno = seqno
        self.state.digests[seqno] = record.digest
        self._retire_stale_digests(seqno)
        return record

    def _sign_heartbeat(self, record: Record) -> Heartbeat:
        heartbeat = Heartbeat.create(
            self._key,
            self.capsule.name,
            record.seqno,
            record.digest,
            self._next_timestamp(),
        )
        self.capsule.add_heartbeat(heartbeat, matching_record=record)
        return heartbeat

    def append(self, payload: bytes) -> tuple[Record, Heartbeat]:
        """Create, sign, and locally apply the next record."""
        record = self._mint(payload)
        heartbeat = self._sign_heartbeat(record)
        if self._state_path is not None:
            self.state.save(self._state_path)
        return record, heartbeat

    def append_batch(
        self, payloads: list[bytes]
    ) -> tuple[list[Record], Heartbeat | None]:
        """Mint a run of records under ONE signed heartbeat at the tip.

        The paper requires a heartbeat per *signed point*, not per
        record: a tip heartbeat pins the whole batch through the hash
        pointers, so a batch costs one signature (and one state save)
        instead of ``len(payloads)`` — the crypto half of the batched
        append path's speedup.
        """
        if not payloads:
            return [], None
        records = [self._mint(payload) for payload in payloads]
        heartbeat = self._sign_heartbeat(records[-1])
        if self._state_path is not None:
            self.state.save(self._state_path)
        return records, heartbeat

    def append_many(self, payloads: list[bytes]) -> list[tuple[Record, Heartbeat]]:
        """Append several payloads; returns (record, heartbeat) pairs."""
        return [self.append(payload) for payload in payloads]


class QuasiWriter(CapsuleWriter):
    """Quasi-Single-Writer (QSW): SSW plus crash recovery from a replica.

    "The assumption in QSW mode is that there can be more than one
    concurrent writers from time to time, but such situations are rare"
    (§VI-C).  After losing local state, call :meth:`resume_from_tip` with
    a record fetched from any replica; appends continue from there.  If
    the lost state had newer records, the capsule gains a branch —
    detected downstream, never silently overwritten.
    """

    def resume_from_tip(self, tip: Record) -> None:
        """Rebuild minimal writer state from a replica's tip record.

        Only the tip's own digest plus whatever digests can be harvested
        from records present in the local capsule replica are available;
        strategies needing older digests (e.g. a checkpoint) recover them
        from the replica too, or fail loudly on the next append.
        """
        if tip.capsule != self.capsule.name:
            raise WriterStateError("tip belongs to another capsule")
        digests: dict[int, bytes] = {tip.seqno: tip.digest}
        for record in self.capsule.records():
            if self.capsule.strategy.still_needed(record.seqno, tip.seqno):
                digests[record.seqno] = record.digest
        self.state = WriterState(
            self.capsule.name,
            last_seqno=tip.seqno,
            timestamp=max(self.state.timestamp, tip.seqno),
            digests=digests,
        )
        if self._state_path is not None:
            self.state.save(self._state_path)
