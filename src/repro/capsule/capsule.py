"""The DataCapsule authenticated data structure (§IV-A, §V-A).

A :class:`DataCapsule` is the in-memory representation of one capsule's
state: its signed metadata, its records (keyed by digest — in QSW mode a
sequence number can map to more than one record), and the writer
heartbeats seen so far.  It performs the *generalized validation scheme*:
every inserted record is checked against the capsule name, the declared
pointer strategy's shape, and the digests of any already-known pointer
targets; heartbeats are checked against the single writer's key from the
metadata.

The same class backs every role in the system — writers build onto it,
DataCapsule-servers store it, and readers accumulate verified state into
it.  Replica synchronization is the CRDT join :meth:`merge_from`
(§V-A: "a DataCapsule meets the definition of a Conflict-Free Replicated
Data Type"): record insertion is idempotent and order-independent, so
"append operations ... can be easily forwarded as is to all the
DataCapsule-servers in arbitrary order".
"""

from __future__ import annotations

from typing import Iterator

from repro.capsule.hashptr import PointerStrategy, get_strategy
from repro.crypto.merkle import MerkleTree
from repro.capsule.heartbeat import Heartbeat, detect_equivocation
from repro.capsule.records import Record, metadata_anchor
from repro.errors import (
    BranchError,
    HoleError,
    IntegrityError,
    RecordNotFoundError,
)
from repro.naming.metadata import (
    KIND_CAPSULE,
    MODE_SSW,
    PROP_POINTER_STRATEGY,
    PROP_WRITER_MODE,
    Metadata,
)
from repro.naming.names import GdpName

__all__ = ["DataCapsule"]

#: sync-index leaf for a seqno this replica has no record at — holes must
#: hash identically on both sides so anti-entropy never "diverges" on them
_SYNC_HOLE_LEAF = b"\x00gdp.sync.hole"


class DataCapsule:
    """One capsule's validated state (records + heartbeats)."""

    def __init__(self, metadata: Metadata, *, verify_metadata: bool = True):
        if metadata.kind != KIND_CAPSULE:
            raise IntegrityError(
                f"metadata kind {metadata.kind!r} is not a capsule"
            )
        if verify_metadata:
            metadata.verify()
        self.metadata = metadata
        self.name: GdpName = metadata.name
        self.strategy: PointerStrategy = get_strategy(
            metadata.properties[PROP_POINTER_STRATEGY]
        )
        self.writer_mode: str = metadata.properties.get(
            PROP_WRITER_MODE, MODE_SSW
        )
        self._writer_key = metadata.writer_key
        self._anchor = metadata_anchor(self.name)
        self._by_digest: dict[bytes, Record] = {}
        self._by_seqno: dict[int, list[bytes]] = {}
        self._heartbeats: dict[int, list[Heartbeat]] = {}
        self._latest_heartbeat: Heartbeat | None = None
        # Merkle sync-index caches (see sync_leaf / range_root).
        self._sync_leaf_cache: dict[int, bytes] = {}
        self._range_root_cache: dict[tuple[int, int], bytes] = {}

    # -- introspection ------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_digest)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._by_digest

    @property
    def writer_key(self):
        """The designated single writer's verifying key."""
        return self._writer_key

    @property
    def last_seqno(self) -> int:
        """Highest seqno of any stored record (0 if empty)."""
        return max(self._by_seqno, default=0)

    @property
    def latest_heartbeat(self) -> Heartbeat | None:
        """The newest stored heartbeat (or None)."""
        return self._latest_heartbeat

    def records(self) -> Iterator[Record]:
        """All records in (seqno, digest) order."""
        for seqno in sorted(self._by_seqno):
            for digest in sorted(self._by_seqno[seqno]):
                yield self._by_digest[digest]

    def heartbeats(self) -> Iterator[Heartbeat]:
        """All stored heartbeats in seqno order."""
        for seqno in sorted(self._heartbeats):
            yield from self._heartbeats[seqno]

    def heartbeats_at(self, seqno: int) -> list[Heartbeat]:
        """The stored heartbeats for one seqno (empty list if none)."""
        return list(self._heartbeats.get(seqno, []))

    def seqnos(self) -> list[int]:
        """Sorted list of stored sequence numbers."""
        return sorted(self._by_seqno)

    def is_branched(self) -> bool:
        """True if any seqno has more than one record (QSW branches)."""
        return any(len(digests) > 1 for digests in self._by_seqno.values())

    def holes(self) -> list[int]:
        """Seqnos missing below :attr:`last_seqno` (§VI-B "holes")."""
        if not self._by_seqno:
            return []
        return [
            seqno
            for seqno in range(1, self.last_seqno)
            if seqno not in self._by_seqno
        ]

    def tips(self) -> list[Record]:
        """Records not pointed to by any stored record — the heads of the
        history DAG (exactly one in linear SSW state)."""
        pointed: set[bytes] = set()
        for record in self._by_digest.values():
            for ptr in record.pointers:
                pointed.add(ptr.digest)
        return sorted(
            (r for d, r in self._by_digest.items() if d not in pointed),
            key=lambda r: (r.seqno, r.digest),
        )

    # -- reads ---------------------------------------------------------

    def get(self, seqno: int) -> Record:
        """The unique record at *seqno*; raises
        :class:`RecordNotFoundError` if absent and :class:`BranchError`
        if the capsule has diverging records there."""
        digests = self._by_seqno.get(seqno)
        if not digests:
            raise RecordNotFoundError(
                f"capsule {self.name.human()} has no record {seqno}"
            )
        if len(digests) > 1:
            raise BranchError(
                f"seqno {seqno} is branched ({len(digests)} records); "
                "use get_all() / branches API"
            )
        return self._by_digest[digests[0]]

    def get_all(self, seqno: int) -> list[Record]:
        """All records at *seqno* (more than one only under QSW)."""
        return [self._by_digest[d] for d in self._by_seqno.get(seqno, [])]

    def get_by_digest(self, digest: bytes) -> Record:
        """The record with *digest*; raises if absent."""
        try:
            return self._by_digest[digest]
        except KeyError:
            raise RecordNotFoundError(
                f"no record with digest {digest.hex()[:12]}..."
            ) from None

    def read_range(self, first: int, last: int) -> list[Record]:
        """Records ``first..last`` inclusive; raises :class:`HoleError`
        naming the missing seqnos if the range is incomplete."""
        if first < 1 or last < first:
            raise RecordNotFoundError(f"bad range [{first}, {last}]")
        missing = [s for s in range(first, last + 1) if s not in self._by_seqno]
        if missing:
            raise HoleError(
                f"range [{first}, {last}] has holes at {missing}"
            )
        return [self.get(seqno) for seqno in range(first, last + 1)]

    # -- writes ----------------------------------------------------------

    def _check_shape(self, record: Record) -> None:
        expected = self.strategy.targets(record.seqno)
        actual = [ptr.seqno for ptr in record.pointers]
        if actual != expected:
            raise IntegrityError(
                f"record {record.seqno} pointer targets {actual} do not "
                f"match strategy {self.strategy.spec!r} (expected {expected})"
            )

    def _check_links(self, record: Record) -> None:
        for ptr in record.pointers:
            if ptr.seqno == 0:
                if ptr != self._anchor:
                    raise IntegrityError(
                        f"record {record.seqno} anchor pointer does not "
                        "match this capsule's metadata anchor"
                    )
                continue
            known = self._by_digest.get(ptr.digest)
            if known is not None and known.seqno != ptr.seqno:
                raise IntegrityError(
                    f"pointer from record {record.seqno} claims seqno "
                    f"{ptr.seqno} but digest belongs to {known.seqno}"
                )
            # A pointer to an *unknown* digest is allowed: replication
            # can deliver records out of order (§V-A).  A pointer whose
            # target seqno exists here under a *different* digest is a
            # fork: it is stored as a branch (surfaced via is_branched()
            # and the branches API) rather than rejected, and the
            # equivocation machinery assigns blame from heartbeats.

    def insert(
        self,
        record: Record,
        heartbeat: Heartbeat | None = None,
        *,
        enforce_strategy: bool = True,
    ) -> bool:
        """Validate and store *record* (idempotent).

        Returns ``True`` if the record was new.  Raises
        :class:`IntegrityError` on any validation failure; nothing is
        stored in that case.
        """
        if record.capsule != self.name:
            raise IntegrityError(
                f"record for capsule {record.capsule.human()} inserted "
                f"into {self.name.human()}"
            )
        if enforce_strategy:
            self._check_shape(record)
        self._check_links(record)
        if heartbeat is not None:
            self.add_heartbeat(heartbeat, matching_record=record)
        if record.digest in self._by_digest:
            return False
        self._by_digest[record.digest] = record
        self._by_seqno.setdefault(record.seqno, []).append(record.digest)
        self._sync_leaf_cache.pop(record.seqno, None)
        self._range_root_cache.clear()
        return True

    def add_heartbeat(
        self, heartbeat: Heartbeat, *, matching_record: Record | None = None
    ) -> bool:
        """Validate and store a heartbeat (idempotent); returns ``True``
        if new.  Checks the writer signature, capsule binding, and —
        when the record is available — digest agreement."""
        if heartbeat.capsule != self.name:
            raise IntegrityError("heartbeat is for a different capsule")
        heartbeat.verify(self._writer_key)
        if matching_record is not None and heartbeat.digest != matching_record.digest:
            raise IntegrityError(
                f"heartbeat digest does not match record {matching_record.seqno}"
            )
        existing = self._heartbeats.setdefault(heartbeat.seqno, [])
        if heartbeat in existing:
            return False
        # Surface writer equivocation in SSW capsules: two valid
        # heartbeats for one seqno with different digests.  QSW capsules
        # declare up front that concurrent writers can (rarely) happen,
        # so the same evidence is a branch there, not misbehaviour.
        if self.writer_mode == MODE_SSW:
            for other in existing:
                detect_equivocation(other, heartbeat, self._writer_key)
        existing.append(heartbeat)
        if (
            self._latest_heartbeat is None
            or heartbeat.seqno > self._latest_heartbeat.seqno
        ):
            self._latest_heartbeat = heartbeat
        return True

    # -- whole-history verification & replication -------------------------

    def verify_history(self, up_to: Heartbeat | None = None) -> int:
        """Walk the hash-pointer graph from a heartbeat down to the
        anchor, checking every link; returns the number of records
        covered.  Raises :class:`HoleError` if the walk needs a missing
        record (unless the strategy tolerates holes and a bridging
        pointer exists), :class:`IntegrityError` on any digest mismatch.

        This is the §V "verify the entire history of DataCapsule up to a
        specific point in time against a specific heartbeat".
        """
        heartbeat = up_to or self._latest_heartbeat
        if heartbeat is None:
            return 0
        heartbeat.verify(self._writer_key)
        start = self._by_digest.get(heartbeat.digest)
        if start is None:
            raise HoleError(
                f"record for heartbeat seqno {heartbeat.seqno} is missing"
            )
        if start.digest != heartbeat.digest:
            # A record filed under the heartbeat's digest whose contents
            # hash elsewhere: in-place storage tampering.
            raise IntegrityError(
                f"record {start.seqno} does not hash to its "
                "heartbeat digest"
            )
        covered: set[bytes] = set()
        frontier = [start]
        reached_anchor = False
        while frontier:
            record = frontier.pop()
            if record.digest in covered:
                continue
            covered.add(record.digest)
            for ptr in record.pointers:
                if ptr.seqno == 0:
                    if ptr != self._anchor:
                        raise IntegrityError("bad metadata anchor pointer")
                    reached_anchor = True
                    continue
                target = self._by_digest.get(ptr.digest)
                if target is None:
                    if self.strategy.tolerates_holes:
                        continue
                    raise HoleError(
                        f"history has a hole: record {ptr.seqno} "
                        f"(digest {ptr.digest.hex()[:12]}...) is missing"
                    )
                if target.seqno != ptr.seqno:
                    raise IntegrityError("pointer seqno/digest mismatch")
                if target.digest != ptr.digest:
                    raise IntegrityError(
                        f"record {target.seqno} does not hash to the "
                        "pointer that reaches it"
                    )
                frontier.append(target)
        if not reached_anchor:
            raise HoleError("history walk never reached the metadata anchor")
        return len(covered)

    def merge_from(self, other: "DataCapsule") -> int:
        """CRDT join: absorb every record and heartbeat of *other*
        (which must be a replica of the same capsule).  Returns the
        number of new records absorbed.  Commutative, associative, and
        idempotent — the substance of leaderless replication (§V-A).
        """
        if other.name != self.name:
            raise IntegrityError("cannot merge replicas of different capsules")
        added = 0
        for record in other.records():
            if self.insert(record, enforce_strategy=False):
                added += 1
        for heartbeat in other.heartbeats():
            self.add_heartbeat(heartbeat)
        return added

    def clone(self) -> "DataCapsule":
        """An independent replica with the same contents."""
        replica = DataCapsule(self.metadata, verify_metadata=False)
        replica.merge_from(self)
        return replica

    def state_summary(self) -> dict:
        """Compact description for anti-entropy exchange: which seqnos
        (and digests) this replica holds."""
        return {
            "last_seqno": self.last_seqno,
            "digests": {
                str(seqno): sorted(digests)
                for seqno, digests in self._by_seqno.items()
            },
        }

    def missing_from(self, summary: dict) -> list[bytes]:
        """Digests present in *summary* but absent here (what to fetch)."""
        wanted = []
        for digests in summary.get("digests", {}).values():
            for digest in digests:
                if digest not in self._by_digest:
                    wanted.append(digest)
        return wanted

    def canonical_summary(self) -> tuple:
        """Hashable, order-canonical record-set summary — two replicas
        hold the same record set iff their canonical summaries are equal
        (used by the convergence oracle and the episode heal poll)."""
        return tuple(
            (seqno, tuple(sorted(self._by_seqno[seqno])))
            for seqno in sorted(self._by_seqno)
        )

    # -- Merkle sync index (delta anti-entropy, §V-A at scale) -------------

    def sync_leaf(self, seqno: int) -> bytes:
        """The sync-index leaf for *seqno*: the concatenation of the
        sorted record digests stored there, or a fixed hole marker.

        Leaves feed :meth:`range_root`; holes hash identically on every
        replica, so two replicas missing the *same* records agree and
        anti-entropy transfers nothing for them.
        """
        cached = self._sync_leaf_cache.get(seqno)
        if cached is None:
            digests = self._by_seqno.get(seqno)
            cached = b"".join(sorted(digests)) if digests else _SYNC_HOLE_LEAF
            self._sync_leaf_cache[seqno] = cached
        return cached

    def seed_sync_leaves(self, leaves: dict[int, bytes]) -> tuple[int, int]:
        """Prime the sync-leaf cache from a storage engine's persisted
        per-segment index (``SegmentedStore.sync_leaves``), returning
        ``(seeded, mismatched)``.

        Every offered leaf is cross-checked against the records this
        capsule actually holds at that seqno, so a stale or corrupt
        persisted index can never poison :meth:`range_root` — a mismatch
        instead *surfaces* divergence between the replayed log and its
        sealed-segment index (e.g. a corrupt frame that recovery had to
        skip), which the server reports as a recovery integrity event.
        """
        seeded = 0
        mismatched = 0
        for seqno, leaf in leaves.items():
            digests = self._by_seqno.get(seqno)
            expected = (
                b"".join(sorted(digests)) if digests else _SYNC_HOLE_LEAF
            )
            if expected == leaf:
                self._sync_leaf_cache.setdefault(seqno, leaf)
                seeded += 1
            else:
                mismatched += 1
        return seeded, mismatched

    def range_root(self, lo: int, hi: int) -> bytes:
        """Merkle root over the sync leaves of seqnos ``lo..hi``
        (inclusive).  O(span) to build, cached until the next insert —
        anti-entropy peers compare these instead of full seqno->digest
        maps, and bisect on mismatch (O(log n) round trips)."""
        if lo < 1 or hi < lo:
            raise IntegrityError(f"bad sync range [{lo}, {hi}]")
        key = (lo, hi)
        cached = self._range_root_cache.get(key)
        if cached is None:
            tree = MerkleTree(self.sync_leaf(s) for s in range(lo, hi + 1))
            cached = tree.root()
            self._range_root_cache[key] = cached
        return cached

    def __repr__(self) -> str:
        return (
            f"DataCapsule(name={self.name.human()}, records={len(self)}, "
            f"last={self.last_seqno}, strategy={self.strategy.spec})"
        )


def build_record(
    capsule: DataCapsule,
    seqno: int,
    payload: bytes,
    digest_of: dict[int, bytes],
) -> Record:
    """Construct the unique strategy-conformant record for *seqno*.

    ``digest_of`` must supply digests for every strategy target (the
    metadata anchor is filled in automatically).  Used by writers and by
    tests that need hand-built histories.
    """
    from repro.crypto.hashing import HashPointer

    pointers = []
    for target in capsule.strategy.targets(seqno):
        if target == 0:
            pointers.append(metadata_anchor(capsule.name))
        else:
            try:
                pointers.append(HashPointer(target, digest_of[target]))
            except KeyError:
                raise HoleError(
                    f"record {seqno} needs the digest of record {target}, "
                    "which is not available"
                ) from None
    return Record(capsule.name, seqno, payload, pointers)
