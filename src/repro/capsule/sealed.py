"""Confidentiality: sealed payloads and read-key sharing (§V).

"Write access control is maintained by the writer's signature key, and
read access control is maintained by selective sharing of decryption
keys."  This module implements that read side:

- A capsule has a symmetric *content key*; record payloads are sealed
  (ChaCha20 + HMAC, encrypt-then-MAC) with per-record derived keys so a
  leaked record key does not expose siblings.
- The owner grants readers access by *wrapping* the content key to each
  reader's public key (ephemeral ECDH + HKDF) — a :class:`ReadGrant`
  that can be stored in the capsule itself or distributed out of band.
- Sealing happens *above* the record layer: the infrastructure stores,
  replicates and proves sealed bytes without ever holding keys —
  "encryption provides the final level of defense in the case when the
  entire infrastructure is compromised" (fn. 7).
"""

from __future__ import annotations

import secrets

from repro.crypto import chacha
from repro.crypto import ec
from repro.crypto.hmac_session import hkdf
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.errors import IntegrityError
from repro.naming.names import GdpName

__all__ = ["ContentKey", "ReadGrant", "seal_payload", "open_payload"]


class ContentKey:
    """The capsule's symmetric content key plus derivation helpers."""

    __slots__ = ("capsule", "_root")

    def __init__(self, capsule: GdpName, root: bytes):
        if len(root) != chacha.KEY_LEN:
            raise ValueError(f"content key must be {chacha.KEY_LEN} bytes")
        self.capsule = capsule
        self._root = bytes(root)

    @classmethod
    def generate(cls, capsule: GdpName) -> "ContentKey":
        """Generate a fresh random instance."""
        return cls(capsule, secrets.token_bytes(chacha.KEY_LEN))

    def record_key(self, seqno: int) -> bytes:
        """Per-record key: HKDF(root, capsule || seqno)."""
        return hkdf(
            self._root,
            self.capsule.raw,
            b"gdp.record.key" + seqno.to_bytes(8, "big"),
        )

    def to_bytes(self) -> bytes:
        """Serialized byte form."""
        return self._root

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContentKey):
            return NotImplemented
        return self.capsule == other.capsule and self._root == other._root

    def __hash__(self) -> int:
        return hash((self.capsule, self._root))


def seal_payload(key: ContentKey, seqno: int, plaintext: bytes) -> bytes:
    """Seal a record payload; the capsule name and seqno are bound as
    associated data so a sealed payload cannot be replayed into a
    different record slot."""
    aad = b"gdp.sealed" + key.capsule.raw + seqno.to_bytes(8, "big")
    return chacha.seal(key.record_key(seqno), plaintext, aad)


def open_payload(key: ContentKey, seqno: int, sealed: bytes) -> bytes:
    """Open a sealed payload; raises :class:`IntegrityError` on
    tampering or slot mismatch."""
    aad = b"gdp.sealed" + key.capsule.raw + seqno.to_bytes(8, "big")
    return chacha.open_sealed(key.record_key(seqno), sealed, aad)


class ReadGrant:
    """The content key wrapped to one reader's public key.

    Constructed by anyone holding the content key (normally the owner);
    unwrapped with the reader's private key.  The grant binds the capsule
    name, so a grant for one capsule cannot be replayed for another.
    """

    __slots__ = ("capsule", "reader", "ephemeral", "wrapped")

    def __init__(
        self, capsule: GdpName, reader: VerifyingKey, ephemeral: bytes, wrapped: bytes
    ):
        self.capsule = capsule
        self.reader = reader
        self.ephemeral = ephemeral
        self.wrapped = wrapped

    @classmethod
    def create(
        cls, key: ContentKey, reader: VerifyingKey
    ) -> "ReadGrant":
        """Construct and sign (see class docstring)."""
        eph_secret = secrets.randbelow(ec.N - 1) + 1
        eph_public = ec.scalar_mult(eph_secret, ec.GENERATOR)
        shared = ec.scalar_mult(eph_secret, reader.point)
        kek = hkdf(
            shared.x.to_bytes(32, "big"),
            key.capsule.raw,
            b"gdp.grant" + reader.to_bytes(),
        )
        aad = b"gdp.grant" + key.capsule.raw + reader.to_bytes()
        wrapped = chacha.seal(kek, key.to_bytes(), aad)
        return cls(key.capsule, reader, ec.encode_point(eph_public), wrapped)

    def unwrap(self, reader_key: SigningKey) -> ContentKey:
        """Recover the content key with the reader's private key."""
        if reader_key.public != self.reader:
            raise IntegrityError("grant was issued to a different reader")
        eph_point = ec.decode_point(self.ephemeral)
        shared = ec.scalar_mult(
            int.from_bytes(reader_key.to_bytes(), "big"), eph_point
        )
        kek = hkdf(
            shared.x.to_bytes(32, "big"),
            self.capsule.raw,
            b"gdp.grant" + self.reader.to_bytes(),
        )
        aad = b"gdp.grant" + self.capsule.raw + self.reader.to_bytes()
        root = chacha.open_sealed(kek, self.wrapped, aad)
        return ContentKey(self.capsule, root)

    def to_wire(self) -> dict:
        """Wire-encodable representation."""
        return {
            "capsule": self.capsule.raw,
            "reader": self.reader.to_bytes(),
            "ephemeral": self.ephemeral,
            "wrapped": self.wrapped,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "ReadGrant":
        """Rebuild from a wire form; raises on malformed input."""
        from repro.errors import GdpError

        try:
            return cls(
                GdpName(wire["capsule"]),
                VerifyingKey.from_bytes(wire["reader"]),
                wire["ephemeral"],
                wire["wrapped"],
            )
        except IntegrityError:
            raise
        except (KeyError, TypeError, GdpError) as exc:
            raise IntegrityError(f"malformed read grant: {exc}") from exc
