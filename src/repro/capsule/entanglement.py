"""Timeline entanglement: ordering across DataCapsules (§VI-C).

"Note that updates across DataCapsules can be ordered using entanglement
schemes described by [Maniatis & Baker, *Secure history preservation
through timeline entanglement*]."

An *entanglement record* in capsule B embeds a signed heartbeat of
capsule A.  Because B's writer signs the record (via the ordinary append
path) and the embedded heartbeat carries A's writer signature, the
record is bilateral evidence that **A's state at seqno i existed no
later than B's record j**: every record of A up to *i* happens-before
every record of B from *j* on.

Chains of entanglements compose transitively, giving a cross-capsule
partial order without any shared clock or coordination — and they make
*cross-capsule rollback* detectable: if A's served history disagrees
with an entangled digest preserved in B, one of the two histories is
forged, and the signatures say whose.
"""

from __future__ import annotations

from typing import Iterable

from repro import encoding
from repro.capsule.capsule import DataCapsule
from repro.capsule.heartbeat import Heartbeat
from repro.capsule.records import Record
from repro.capsule.writer import CapsuleWriter
from repro.errors import GdpError, IntegrityError, RecordNotFoundError
from repro.naming.names import GdpName

__all__ = [
    "ENTANGLEMENT_PREFIX",
    "entangle",
    "parse_entanglement",
    "entanglements_in",
    "cross_order",
    "verify_entanglement",
]

ENTANGLEMENT_PREFIX = b"gdp.entangle\x00"


def entangle(
    writer: CapsuleWriter, peer_heartbeat: Heartbeat
) -> tuple[Record, Heartbeat]:
    """Append an entanglement record embedding *peer_heartbeat*.

    The heartbeat travels verbatim (with its signature), so any reader
    of the host capsule can independently re-verify it against the peer
    capsule's writer key.
    """
    payload = ENTANGLEMENT_PREFIX + encoding.encode(
        peer_heartbeat.to_wire()
    )
    return writer.append(payload)


def parse_entanglement(record: Record) -> Heartbeat | None:
    """The embedded peer heartbeat, or None if *record* is not an
    entanglement record."""
    if not record.payload.startswith(ENTANGLEMENT_PREFIX):
        return None
    try:
        wire = encoding.decode(record.payload[len(ENTANGLEMENT_PREFIX):])
        return Heartbeat.from_wire(wire)
    except GdpError as exc:
        raise IntegrityError(
            f"malformed entanglement record {record.seqno}: {exc}"
        ) from exc


def entanglements_in(
    capsule: DataCapsule,
) -> list[tuple[int, Heartbeat]]:
    """All (host seqno, embedded peer heartbeat) pairs in a capsule."""
    out = []
    for record in capsule.records():
        heartbeat = parse_entanglement(record)
        if heartbeat is not None:
            out.append((record.seqno, heartbeat))
    return out


def verify_entanglement(
    host: DataCapsule,
    seqno: int,
    peer: DataCapsule,
) -> Heartbeat:
    """Fully verify the entanglement at *seqno* of *host* against the
    *peer* capsule's actual history.

    Checks: the record exists and parses; the embedded heartbeat is for
    the peer capsule and carries the peer writer's valid signature; and
    — when the peer replica holds the referenced record — the digest
    matches (cross-capsule rollback/fork detection).
    """
    record = host.get(seqno)
    heartbeat = parse_entanglement(record)
    if heartbeat is None:
        raise IntegrityError(f"record {seqno} is not an entanglement")
    if heartbeat.capsule != peer.name:
        raise IntegrityError(
            "entanglement references a different peer capsule"
        )
    heartbeat.verify(peer.writer_key)
    try:
        peer_record = peer.get(heartbeat.seqno)
    except RecordNotFoundError:
        return heartbeat  # peer replica is behind; signature still binds
    if peer_record.digest != heartbeat.digest:
        raise IntegrityError(
            f"peer capsule {peer.name.human()} record {heartbeat.seqno} "
            "disagrees with the entangled digest — forked or rolled-back "
            "history"
        )
    return heartbeat


def cross_order(
    capsules: Iterable[DataCapsule],
) -> dict[tuple[GdpName, int], set[tuple[GdpName, int]]]:
    """The cross-capsule happens-before relation derived from
    entanglements.

    Returns ``after -> set of before`` over (capsule name, seqno) pairs:
    for each entanglement (B, j) embedding A@i, ``(B, j)`` is after
    ``(A, i)``.  Within one capsule, seqno order is implied and not
    materialized here.  The relation is transitively closed across
    capsules.
    """
    capsule_list = list(capsules)
    # Direct edges from entanglement records.
    edges: dict[tuple[GdpName, int], set[tuple[GdpName, int]]] = {}
    for capsule in capsule_list:
        for seqno, heartbeat in entanglements_in(capsule):
            key = (capsule.name, seqno)
            edges.setdefault(key, set()).add(
                (heartbeat.capsule, heartbeat.seqno)
            )
    # Transitive closure across capsules: (B,j) > (A,i) and (C,k) > (B,j')
    # with j' >= j composes to (C,k) > (A,i).
    changed = True
    while changed:
        changed = False
        for after, befores in list(edges.items()):
            additions: set[tuple[GdpName, int]] = set()
            for before_name, before_seqno in befores:
                for other_after, other_befores in edges.items():
                    if (
                        other_after[0] == before_name
                        and other_after[1] <= before_seqno
                    ):
                        additions |= other_befores
            new = additions - befores
            if new:
                befores |= new
                changed = True
    return edges


def happens_before(
    order: dict[tuple[GdpName, int], set[tuple[GdpName, int]]],
    before: tuple[GdpName, int],
    after: tuple[GdpName, int],
) -> bool:
    """Does ``before`` (capsule, seqno) provably precede ``after`` under
    the entanglement-derived order?  Within-capsule pairs use seqno
    order; cross-capsule pairs consult the closure (an entanglement at
    (B, j) referencing (A, i) orders every (A, i' <= i) before every
    (B, j' >= j))."""
    if before[0] == after[0]:
        return before[1] < after[1]
    for (after_name, after_seqno), befores in order.items():
        if after_name != after[0] or after_seqno > after[1]:
            continue
        for before_name, before_seqno in befores:
            if before_name == before[0] and before_seqno >= before[1]:
                return True
    return False
