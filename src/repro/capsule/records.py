"""DataCapsule records: immutable, variable-sized, hash-linked (§V-A).

A record is identified by its *digest*, which commits to the capsule
name, the record's sequence number, its payload, and every hash-pointer
it carries.  Because pointers transitively cover their targets, any
record digest attests the full history reachable from it; a signed
heartbeat over the newest record therefore attests "the entire history
of updates (both the content and the ordering)" (§V).

Sequence numbers start at 1; the metadata record is conceptually
sequence 0 and is referenced by the well-known metadata anchor pointer
carried by record 1.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.crypto.hashing import HashPointer, hash_value, sha256
from repro.errors import IntegrityError
from repro.naming.names import GdpName

__all__ = ["Record", "metadata_anchor"]


def metadata_anchor(capsule_name: GdpName) -> HashPointer:
    """The pointer from record 1 back to the metadata "record".

    The metadata's digest *is* derived from the capsule name, so the
    anchor binds the chain to the capsule identity: seqno 0 with a digest
    of ``H("gdp.anchor", name)``.
    """
    return HashPointer(0, hash_value("gdp.anchor", capsule_name.raw))


class Record:
    """One immutable element of a DataCapsule's history.

    Immutability makes every derived value cacheable: the payload hash,
    the pointer wire forms, and the header digest are each computed once
    at construction (invalidation is impossible by construction), so
    replication merges, proof builds, and storage replay never re-encode
    or re-hash the same record.
    """

    __slots__ = (
        "capsule",
        "seqno",
        "payload",
        "pointers",
        "_digest",
        "_payload_hash",
        "_pointers_wire",
    )

    def __init__(
        self,
        capsule: GdpName,
        seqno: int,
        payload: bytes,
        pointers: Sequence[HashPointer],
    ):
        if seqno < 1:
            raise ValueError(f"record seqno must be >= 1, got {seqno}")
        if not pointers:
            raise ValueError("a record must carry at least one hash pointer")
        ordered = sorted(pointers, key=lambda p: p.seqno, reverse=True)
        for ptr in ordered:
            if ptr.seqno >= seqno:
                raise ValueError(
                    f"pointer to seqno {ptr.seqno} from record {seqno} "
                    "must reference the past"
                )
        seen = {ptr.seqno for ptr in ordered}
        if len(seen) != len(ordered):
            raise ValueError("duplicate pointer target seqnos")
        object.__setattr__(self, "capsule", capsule)
        object.__setattr__(self, "seqno", seqno)
        object.__setattr__(self, "payload", bytes(payload))
        object.__setattr__(self, "pointers", tuple(ordered))
        object.__setattr__(self, "_payload_hash", sha256(self.payload))
        object.__setattr__(
            self,
            "_pointers_wire",
            tuple(tuple(ptr.to_wire()) for ptr in self.pointers),
        )
        object.__setattr__(self, "_digest", self._compute_digest())

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Record is immutable")

    def _compute_digest(self) -> bytes:
        from repro.crypto import cache as crypto_cache

        return crypto_cache.record_digest(
            self.capsule.raw,
            self.seqno,
            self._payload_hash,
            [list(w) for w in self._pointers_wire],
        )

    @property
    def digest(self) -> bytes:
        """The record's identifying SHA-256 digest."""
        return self._digest

    @property
    def payload_hash(self) -> bytes:
        """SHA-256 of the payload alone (cached at construction)."""
        return self._payload_hash

    @property
    def prev(self) -> HashPointer:
        """The pointer with the highest target seqno (the chain
        predecessor in SSW mode)."""
        return self.pointers[0]

    def pointer_to(self, seqno: int) -> HashPointer | None:
        """The pointer targeting *seqno*, if this record carries one."""
        for ptr in self.pointers:
            if ptr.seqno == seqno:
                return ptr
        return None

    def header_wire(self) -> dict:
        """The record minus its payload — what integrity proofs ship.

        Proofs carry ``payload_hash`` instead of the payload so proving a
        record's position never requires shipping megabytes of video.
        """
        return {
            "seqno": self.seqno,
            "payload_hash": self._payload_hash,
            "pointers": [list(w) for w in self._pointers_wire],
        }

    def to_wire(self) -> dict:
        """Wire-encodable representation.

        Fresh outer dict and pointer lists every call (callers — tests,
        tamperers — may mutate them), but built from the cached wire
        tuples, so no pointer re-encoding happens.
        """
        return {
            "seqno": self.seqno,
            "payload": self.payload,
            "pointers": [list(w) for w in self._pointers_wire],
        }

    @classmethod
    def from_wire(cls, capsule: GdpName, wire: dict) -> "Record":
        """Rebuild from a wire form; raises on malformed input."""
        try:
            pointers = [HashPointer.from_wire(p) for p in wire["pointers"]]
            return cls(capsule, wire["seqno"], wire["payload"], pointers)
        except (KeyError, TypeError, ValueError) as exc:
            raise IntegrityError(f"malformed record wire form: {exc}") from exc

    @staticmethod
    def verify_header(
        capsule: GdpName, header: dict, expected_digest: bytes
    ) -> None:
        """Check that a proof header hashes to *expected_digest*."""
        from repro.crypto import cache as crypto_cache

        try:
            recomputed = crypto_cache.record_digest(
                capsule.raw,
                header["seqno"],
                header["payload_hash"],
                header["pointers"],
            )
        except (KeyError, TypeError) as exc:
            raise IntegrityError(f"malformed record header: {exc}") from exc
        if recomputed != expected_digest:
            raise IntegrityError(
                f"record header for seqno {header.get('seqno')} does not "
                "match its claimed digest"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self._digest == other._digest

    def __hash__(self) -> int:
        return hash(self._digest)

    def __repr__(self) -> str:
        return (
            f"Record(seqno={self.seqno}, payload={len(self.payload)}B, "
            f"ptrs={[p.seqno for p in self.pointers]}, "
            f"digest={self._digest.hex()[:12]}...)"
        )


def link_digests(records: Iterable[Record]) -> dict[int, bytes]:
    """Map seqno -> digest for a collection of records (helper for
    strategies and tests); raises on duplicate seqnos."""
    out: dict[int, bytes] = {}
    for record in records:
        if record.seqno in out:
            raise IntegrityError(f"duplicate seqno {record.seqno}")
        out[record.seqno] = record.digest
    return out
