"""Branch analysis for quasi-single-writer capsules (§VI-C).

"In QSW mode, there is a chance of branches in the DataCapsule ... a
branch is a condition when two or more records have hash pointers that
point to the same record. Such branches result in a partial order of
records. In such a case, a reader can only expect strong eventual
consistency."

This module computes the history DAG over a capsule's records, finds
branch points and tips, exposes the partial order, and provides the
deterministic tie-break (the *resolution order*) that gives all replicas
the same linearization of a branched history — the "strong eventual"
part: replicas that have received the same records agree on the same
resolved view without coordination.
"""

from __future__ import annotations

from typing import Iterable

from repro.capsule.capsule import DataCapsule
from repro.capsule.records import Record
from repro.errors import BranchError

__all__ = [
    "branch_points",
    "is_linear",
    "partial_order",
    "resolve_linearization",
    "common_prefix_length",
]


def branch_points(capsule: DataCapsule) -> list[Record]:
    """Records with two or more distinct successors (in-DAG fan-out).

    The successor relation follows *predecessor* pointers only (the
    highest-seqno pointer of each record): extra skip/checkpoint pointers
    intentionally converge on old records and are not forks.
    """
    successor_count: dict[bytes, set[bytes]] = {}
    for record in capsule.records():
        prev = record.prev
        if prev.seqno == 0:
            continue
        successor_count.setdefault(prev.digest, set()).add(record.digest)
    return sorted(
        (
            capsule.get_by_digest(digest)
            for digest, succs in successor_count.items()
            if len(succs) > 1 and digest in capsule
        ),
        key=lambda r: (r.seqno, r.digest),
    )


def is_linear(capsule: DataCapsule) -> bool:
    """True iff the history is a single chain (no branches, ≤1 tip)."""
    return not capsule.is_branched() and len(capsule.tips()) <= 1


def partial_order(capsule: DataCapsule) -> dict[bytes, set[bytes]]:
    """The happens-before relation: digest -> set of digests it
    (transitively, via any pointer) descends from."""
    ancestors: dict[bytes, set[bytes]] = {}

    def compute(record: Record) -> set[bytes]:
        if record.digest in ancestors:
            return ancestors[record.digest]
        ancestors[record.digest] = set()  # break cycles defensively
        result: set[bytes] = set()
        for ptr in record.pointers:
            if ptr.seqno == 0 or ptr.digest not in capsule:
                continue
            parent = capsule.get_by_digest(ptr.digest)
            result.add(parent.digest)
            result |= compute(parent)
        ancestors[record.digest] = result
        return result

    for record in capsule.records():
        compute(record)
    return ancestors


def concurrent(capsule: DataCapsule, a: Record, b: Record) -> bool:
    """True iff neither record happens-before the other."""
    order = partial_order(capsule)
    return (
        a.digest != b.digest
        and b.digest not in order.get(a.digest, set())
        and a.digest not in order.get(b.digest, set())
    )


def resolve_linearization(capsule: DataCapsule) -> list[Record]:
    """Deterministic total order over a (possibly branched) history.

    Topological sort of the happens-before DAG with ties broken by
    ``(seqno, digest)``.  Every replica holding the same record set
    computes the same list — the strong-eventual-consistency read view
    for QSW capsules.  For a linear history this is exactly the seqno
    order.
    """
    order = partial_order(capsule)
    remaining = {record.digest: record for record in capsule.records()}
    out: list[Record] = []
    emitted: set[bytes] = set()
    while remaining:
        ready = [
            record
            for record in remaining.values()
            if not (order[record.digest] & set(remaining))
        ]
        if not ready:
            raise BranchError("cycle in history DAG (corrupt capsule)")
        ready.sort(key=lambda r: (r.seqno, r.digest))
        chosen = ready[0]
        out.append(chosen)
        emitted.add(chosen.digest)
        del remaining[chosen.digest]
    return out


def common_prefix_length(capsules: Iterable[DataCapsule]) -> int:
    """Length of the shared linearization prefix across replicas —
    how much of the history every replica already agrees on."""
    linearizations = [resolve_linearization(c) for c in capsules]
    if not linearizations:
        return 0
    shortest = min(len(lin) for lin in linearizations)
    prefix = 0
    for i in range(shortest):
        digests = {lin[i].digest for lin in linearizations}
        if len(digests) != 1:
            break
        prefix += 1
    return prefix
