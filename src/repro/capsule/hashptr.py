"""Hash-pointer strategies: the DataCapsule's configurability knob (§V).

"Our ingenuity is in exposing the flexibility of which hash-pointers to
include to the application. Regardless of the hash-pointers chosen by the
writer, all invariants and proofs work with a generalized validation
scheme."

A strategy maps a sequence number to the set of *target* seqnos the new
record must point at.  Every strategy must include the immediate
predecessor (``seqno - 1``; for record 1 the metadata anchor at 0), which
keeps range reads self-verifying, except for loss-tolerant *stream*
capsules, which deliberately allow the predecessor to be absent.

Built-in strategies (selected by the ``pointer_strategy`` metadata
property, so readers can anticipate proof shapes):

``chain``
    Plain hash-list.  Cheapest appends; O(distance) proofs; range reads
    are optimal (§V-A: "this simple linked-list design is very efficient
    in range queries").
``skiplist``
    Deterministic skip-list: record *n* also points to ``n - 2**k`` for
    every ``2**k`` dividing *n*.  O(log n) point proofs (§V: "an
    authenticated skip-list that allows skipping over records").
``checkpoint:K``
    Every record points to the most recent checkpoint (multiple of *K*)
    and checkpoints point to the previous checkpoint — the paper's
    file-system example ("all records ... include a hash-pointer to a
    checkpoint record").
``stream:W``
    Every record points to up to *W* most recent records, so a reader can
    bridge up to ``W - 1`` consecutive missing records — the paper's
    video example ("allow for records missing in transmission while
    maintaining integrity").
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import CapsuleError

__all__ = [
    "PointerStrategy",
    "ChainStrategy",
    "SkipListStrategy",
    "CheckpointStrategy",
    "StreamStrategy",
    "get_strategy",
]


class PointerStrategy(ABC):
    """Decides which past seqnos record *n* must hash-point to."""

    #: spec string that round-trips through :func:`get_strategy`
    spec: str

    @abstractmethod
    def targets(self, seqno: int) -> list[int]:
        """Sorted-descending list of target seqnos for record *seqno*.

        Targets may include 0, meaning the metadata anchor.
        """

    @property
    def tolerates_holes(self) -> bool:
        """Whether readers of this capsule accept a missing predecessor
        (only loss-tolerant stream capsules do)."""
        return False

    def still_needed(self, target: int, last_seqno: int) -> bool:
        """Whether the digest of record *target* can still be required
        as a pointer target by any record after *last_seqno*.

        Writers use this to bound their persistent local state (§V-A:
        "keep some local state, which at the very least includes the
        hash of the most recent record ... and any additional hashes the
        writer might need in near future").  The default is conservative
        (keep everything); strategies override with tight rules.
        """
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PointerStrategy):
            return NotImplemented
        return self.spec == other.spec

    def __hash__(self) -> int:
        return hash(self.spec)


class ChainStrategy(PointerStrategy):
    """Plain hash-chain: each record points only to its predecessor."""

    spec = "chain"

    def targets(self, seqno: int) -> list[int]:
        """Target seqnos for record *seqno* (see class docstring)."""
        if seqno < 1:
            raise CapsuleError(f"invalid seqno {seqno}")
        return [seqno - 1]

    def still_needed(self, target: int, last_seqno: int) -> bool:
        """Retention rule (see PointerStrategy.still_needed)."""
        return target == last_seqno


class SkipListStrategy(PointerStrategy):
    """Deterministic authenticated skip-list.

    Record *n* points to ``n - 2**k`` for each ``k`` with
    ``0 <= k <= max_level`` and ``n % 2**k == 0``.  Point proofs walk
    at most ``2 * log2(n)`` pointers.
    """

    def __init__(self, max_level: int = 32):
        if max_level < 1:
            raise CapsuleError("skip-list max_level must be >= 1")
        self.max_level = max_level
        self.spec = (
            "skiplist" if max_level == 32 else f"skiplist:{max_level}"
        )

    def targets(self, seqno: int) -> list[int]:
        """Target seqnos for record *seqno* (see class docstring)."""
        if seqno < 1:
            raise CapsuleError(f"invalid seqno {seqno}")
        out = []
        for level in range(self.max_level + 1):
            step = 1 << level
            if seqno % step:
                break
            target = seqno - step
            if target >= 0:
                out.append(target)
        if not out:  # seqno odd: only the predecessor
            out.append(seqno - 1)
        return sorted(set(out), reverse=True)

    def still_needed(self, target: int, last_seqno: int) -> bool:
        """Retention rule (see PointerStrategy.still_needed)."""
        if target == last_seqno:
            return True
        if target <= 0:
            return False
        # Largest 2**k dividing target (capped at max_level): the
        # furthest future record that points back at it is
        # target + 2**k; keep while that is still ahead of us.
        k = min((target & -target).bit_length() - 1, self.max_level)
        return target + (1 << k) > last_seqno


class CheckpointStrategy(PointerStrategy):
    """Predecessor + latest-checkpoint pointers.

    Records whose seqno is a multiple of *interval* are checkpoints;
    non-checkpoint records point at the latest checkpoint (or the anchor
    if none yet), checkpoints point at the previous checkpoint.  A reader
    holding any checkpoint can verify membership of any record since that
    checkpoint with at most ``interval`` hops, and can hop checkpoint to
    checkpoint in O(n / interval).
    """

    def __init__(self, interval: int = 64):
        if interval < 2:
            raise CapsuleError("checkpoint interval must be >= 2")
        self.interval = interval
        self.spec = f"checkpoint:{interval}"

    def is_checkpoint(self, seqno: int) -> bool:
        """Whether *seqno* is a checkpoint multiple."""
        return seqno % self.interval == 0

    def targets(self, seqno: int) -> list[int]:
        """Target seqnos for record *seqno* (see class docstring)."""
        if seqno < 1:
            raise CapsuleError(f"invalid seqno {seqno}")
        targets = {seqno - 1}
        if self.is_checkpoint(seqno):
            targets.add(max(seqno - self.interval, 0))
        else:
            targets.add((seqno // self.interval) * self.interval)
        return sorted(targets, reverse=True)

    def still_needed(self, target: int, last_seqno: int) -> bool:
        """Retention rule (see PointerStrategy.still_needed)."""
        if target == last_seqno:
            return True
        # Checkpoints stay referenced until the next checkpoint exists.
        return target % self.interval == 0 and target + self.interval > last_seqno


class StreamStrategy(PointerStrategy):
    """Loss-tolerant stream pointers.

    Record *n* points to records ``n-1 .. n-window``; a reader missing up
    to ``window - 1`` consecutive records can still link the next
    received record to verified history.
    """

    def __init__(self, window: int = 4):
        if window < 2:
            raise CapsuleError("stream window must be >= 2")
        self.window = window
        self.spec = f"stream:{window}"

    @property
    def tolerates_holes(self) -> bool:
        """Stream capsules tolerate missing predecessors."""
        return True

    def targets(self, seqno: int) -> list[int]:
        """Target seqnos for record *seqno* (see class docstring)."""
        if seqno < 1:
            raise CapsuleError(f"invalid seqno {seqno}")
        return list(range(seqno - 1, max(seqno - 1 - self.window, -1), -1))

    def still_needed(self, target: int, last_seqno: int) -> bool:
        """Retention rule (see PointerStrategy.still_needed)."""
        return target > last_seqno - self.window


def get_strategy(spec: str) -> PointerStrategy:
    """Parse a strategy spec string from capsule metadata.

    Accepted forms: ``chain``, ``skiplist``, ``skiplist:<max_level>``,
    ``checkpoint:<interval>``, ``stream:<window>``.
    """
    name, _, arg = spec.partition(":")
    try:
        if name == "chain":
            if arg:
                raise CapsuleError("chain takes no argument")
            return ChainStrategy()
        if name == "skiplist":
            return SkipListStrategy(int(arg)) if arg else SkipListStrategy()
        if name == "checkpoint":
            return CheckpointStrategy(int(arg)) if arg else CheckpointStrategy()
        if name == "stream":
            return StreamStrategy(int(arg)) if arg else StreamStrategy()
    except ValueError as exc:
        raise CapsuleError(f"bad strategy argument in {spec!r}: {exc}") from exc
    raise CapsuleError(f"unknown pointer strategy {spec!r}")
