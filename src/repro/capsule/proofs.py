"""Integrity proofs for DataCapsule reads (§V-A).

"Each read comes with a cryptographic proof of correctness created using
signatures and hash-pointers."  Two proof forms:

:class:`PositionProof`
    Proves a single record is part of the history attested by a given
    heartbeat: a writer-signed heartbeat plus the chain of record
    *headers* (seqno, payload hash, pointers — no payloads) linking the
    heartbeat's record down to the target.  With skip-list pointers the
    chain is O(log n); with a plain chain it is O(distance) — the
    trade-off ablated in benchmark A1.

:class:`RangeProof`
    Proves a contiguous run of records: a position proof for the *last*
    record of the range plus the observation that each record's
    predecessor pointer self-verifies the run ("a range of records in a
    linked-list design is self-verifying with respect to the newest
    record in the range", §V-A).

Proofs are built against an untrusted replica's state and verified by
clients holding nothing but the capsule metadata (hence the writer key)
— trust is rooted in the capsule name.
"""

from __future__ import annotations

from repro import encoding
from repro.capsule.capsule import DataCapsule
from repro.capsule.heartbeat import Heartbeat
from repro.capsule.records import Record
from repro.crypto.keys import VerifyingKey
from repro.errors import HoleError, IntegrityError, RecordNotFoundError
from repro.naming.names import GdpName

__all__ = ["PositionProof", "RangeProof", "build_position_proof", "build_range_proof"]


def _find_path(capsule: DataCapsule, start: Record, target_seqno: int) -> list[Record]:
    """Greedy hash-pointer descent from *start* to *target_seqno*.

    At each step, follow the pointer with the smallest target seqno that
    is still >= the goal — the longest non-overshooting jump.  Works for
    every built-in strategy; raises :class:`HoleError` if a needed record
    is missing from this replica.
    """
    path = [start]
    current = start
    while current.seqno > target_seqno:
        candidates = [
            ptr for ptr in current.pointers if ptr.seqno >= target_seqno
        ]
        if not candidates:
            raise HoleError(
                f"no pointer path from {start.seqno} to {target_seqno}"
            )
        best = min(candidates, key=lambda p: p.seqno)
        if best.seqno == 0:
            raise HoleError(
                f"pointer path from {start.seqno} dead-ends at the anchor"
            )
        try:
            current = capsule.get_by_digest(best.digest)
        except RecordNotFoundError:
            raise HoleError(
                f"replica is missing record {best.seqno} needed for the "
                f"proof path to {target_seqno}"
            ) from None
        path.append(current)
    return path


class PositionProof:
    """Wire-transportable proof that a record digest sits at a given
    seqno of the history attested by ``heartbeat``."""

    __slots__ = ("heartbeat", "headers", "_digests")

    def __init__(self, heartbeat: Heartbeat, headers: list[dict]):
        self.heartbeat = heartbeat
        self.headers = headers
        # per-index digest memo; chain walks (verify + target_digest +
        # verify_record) ask for the same header digests repeatedly.
        self._digests: dict[int, bytes] = {}

    @property
    def target_seqno(self) -> int:
        """The seqno this proof proves."""
        return self.headers[-1]["seqno"]

    @property
    def target_digest(self) -> bytes:
        """Digest of the proven record (valid only after
        :meth:`verify`)."""
        return self._header_digest(-1)

    def _header_digest(self, index: int) -> bytes:
        from repro.crypto import cache as crypto_cache

        if index < 0:
            index += len(self.headers)
        cached = self._digests.get(index)
        if cached is not None:
            return cached
        header = self.headers[index]
        digest = crypto_cache.record_digest(
            self.heartbeat.capsule.raw,
            header["seqno"],
            header["payload_hash"],
            header["pointers"],
        )
        self._digests[index] = digest
        return digest

    def size_bytes(self) -> int:
        """Encoded proof size (for the A1 ablation)."""
        return len(encoding.encode(self.to_wire()))

    def verify(
        self,
        capsule_name: GdpName,
        writer_key: VerifyingKey,
        *,
        expected_seqno: int | None = None,
    ) -> bytes:
        """Verify the proof; returns the proven record's digest.

        Checks: heartbeat signature and capsule binding; the first header
        hashes to the heartbeat digest; each later header's digest is
        referenced by a pointer of the previous header; seqnos strictly
        descend to the target.
        """
        if self.heartbeat.capsule != capsule_name:
            raise IntegrityError("proof heartbeat is for another capsule")
        self.heartbeat.verify(writer_key)
        if not self.headers:
            raise IntegrityError("empty proof")
        digest = self._header_digest(0)
        if digest != self.heartbeat.digest:
            raise IntegrityError("proof head does not match heartbeat")
        if self.headers[0]["seqno"] != self.heartbeat.seqno:
            raise IntegrityError("proof head seqno mismatch")
        for i in range(1, len(self.headers)):
            next_digest = self._header_digest(i)
            next_seqno = self.headers[i]["seqno"]
            if next_seqno >= self.headers[i - 1]["seqno"]:
                raise IntegrityError("proof seqnos do not descend")
            if [next_seqno, next_digest] not in self.headers[i - 1]["pointers"]:
                raise IntegrityError(
                    f"proof step {i}: header {next_seqno} is not referenced "
                    f"by header {self.headers[i - 1]['seqno']}"
                )
        if expected_seqno is not None and self.target_seqno != expected_seqno:
            raise IntegrityError(
                f"proof proves seqno {self.target_seqno}, "
                f"expected {expected_seqno}"
            )
        return self._header_digest(-1)

    def verify_record(
        self, record: Record, writer_key: VerifyingKey
    ) -> None:
        """Verify the proof *and* that *record* is the proven record."""
        digest = self.verify(
            record.capsule, writer_key, expected_seqno=record.seqno
        )
        if digest != record.digest:
            raise IntegrityError(
                f"record {record.seqno} does not match its proof"
            )

    def to_wire(self) -> dict:
        """Wire-encodable representation."""
        return {"heartbeat": self.heartbeat.to_wire(), "headers": self.headers}

    @classmethod
    def from_wire(cls, wire: dict) -> "PositionProof":
        """Rebuild from a wire form; raises on malformed input."""
        try:
            return cls(Heartbeat.from_wire(wire["heartbeat"]), wire["headers"])
        except (KeyError, TypeError) as exc:
            raise IntegrityError(f"malformed proof: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"PositionProof(target={self.target_seqno}, "
            f"hops={len(self.headers)}, anchor_hb={self.heartbeat.seqno})"
        )


class RangeProof:
    """Proof for a contiguous record range ``[first, last]``.

    Carries a position proof for *last*; the range itself self-verifies
    because each record's predecessor pointer must match the previous
    record's digest.
    """

    __slots__ = ("position", "first", "last")

    def __init__(self, position: PositionProof, first: int, last: int):
        if first < 1 or last < first:
            raise IntegrityError(f"bad proof range [{first}, {last}]")
        self.position = position
        self.first = first
        self.last = last

    def size_bytes(self) -> int:
        """Encoded size in bytes."""
        return len(encoding.encode(self.to_wire()))

    def verify_records(
        self, records: list[Record], writer_key: VerifyingKey
    ) -> None:
        """Verify that *records* is exactly the range ``[first, last]``
        of the attested history."""
        if len(records) != self.last - self.first + 1:
            raise IntegrityError(
                f"expected {self.last - self.first + 1} records, "
                f"got {len(records)}"
            )
        for offset, record in enumerate(records):
            if record.seqno != self.first + offset:
                raise IntegrityError("range records out of order")
        # The newest record must be the one the position proof pins.
        self.position.verify_record(records[-1], writer_key)
        # Walk backwards: each record's predecessor pointer must match.
        for i in range(len(records) - 1, 0, -1):
            expected = records[i].pointer_to(records[i - 1].seqno)
            if expected is None:
                raise IntegrityError(
                    f"record {records[i].seqno} has no predecessor pointer"
                )
            if expected.digest != records[i - 1].digest:
                raise IntegrityError(
                    f"record {records[i - 1].seqno} does not match the "
                    "predecessor pointer — tampered range"
                )

    def to_wire(self) -> dict:
        """Wire-encodable representation."""
        return {
            "position": self.position.to_wire(),
            "first": self.first,
            "last": self.last,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "RangeProof":
        """Rebuild from a wire form; raises on malformed input."""
        try:
            return cls(
                PositionProof.from_wire(wire["position"]),
                wire["first"],
                wire["last"],
            )
        except (KeyError, TypeError) as exc:
            raise IntegrityError(f"malformed range proof: {exc}") from exc

    def __repr__(self) -> str:
        return f"RangeProof([{self.first}, {self.last}])"


def build_position_proof(
    capsule: DataCapsule,
    seqno: int,
    *,
    against: Heartbeat | None = None,
) -> PositionProof:
    """Build a proof for record *seqno* against *against* (default: the
    replica's latest heartbeat).  Raises :class:`HoleError` if the path
    crosses missing records, :class:`RecordNotFoundError` if no heartbeat
    or record is available."""
    heartbeat = against or capsule.latest_heartbeat
    if heartbeat is None:
        raise RecordNotFoundError("no heartbeat to anchor the proof")
    if seqno > heartbeat.seqno:
        raise RecordNotFoundError(
            f"record {seqno} is newer than heartbeat {heartbeat.seqno}"
        )
    try:
        head = capsule.get_by_digest(heartbeat.digest)
    except RecordNotFoundError:
        raise HoleError(
            f"replica is missing the heartbeat record {heartbeat.seqno}"
        ) from None
    path = _find_path(capsule, head, seqno)
    return PositionProof(heartbeat, [r.header_wire() for r in path])


def build_range_proof(
    capsule: DataCapsule,
    first: int,
    last: int,
    *,
    against: Heartbeat | None = None,
) -> RangeProof:
    """Build a proof for the contiguous range ``[first, last]``."""
    return RangeProof(
        build_position_proof(capsule, last, against=against), first, last
    )
