"""The verifying reader: trust rooted in the capsule name (§V).

A reader holds nothing but a capsule *name* (and optionally, decryption
keys).  Everything else — metadata, records, heartbeats, proofs — arrives
from untrusted infrastructure and is verified before acceptance:

1. Presented metadata must hash to the name (self-certification).
2. Heartbeats must carry the designated writer's signature.
3. Records must be pinned by position/range proofs against a verified
   heartbeat.
4. Heartbeat sequence numbers must never regress below what this reader
   has already seen (anti-rollback: a stale replica can lag, but a
   *response* claiming an older history than the reader's own frontier
   is rejected — this is the reader-side freshness policy).

The reader accumulates verified records into a local
:class:`~repro.capsule.capsule.DataCapsule`, so repeated reads get
cheaper and offline re-verification (:meth:`verify_everything`) is
possible.
"""

from __future__ import annotations

from repro.capsule.capsule import DataCapsule
from repro.capsule.heartbeat import Heartbeat, detect_equivocation
from repro.capsule.proofs import PositionProof, RangeProof
from repro.capsule.records import Record
from repro.errors import IntegrityError, SecurityError
from repro.naming.metadata import Metadata
from repro.naming.names import GdpName

__all__ = ["VerifyingReader"]


class VerifyingReader:
    """Verifies capsule data received from untrusted replicas."""

    def __init__(self, name: GdpName):
        self.name = name
        self._capsule: DataCapsule | None = None
        self._frontier: Heartbeat | None = None

    @property
    def capsule(self) -> DataCapsule:
        """The capsule name this object is bound to."""
        if self._capsule is None:
            raise SecurityError(
                "reader has not yet accepted metadata for this capsule"
            )
        return self._capsule

    @property
    def frontier(self) -> Heartbeat | None:
        """The newest writer heartbeat this reader has verified."""
        return self._frontier

    def accept_metadata(self, metadata: Metadata) -> DataCapsule:
        """Verify and adopt metadata as the capsule's trust anchor.

        Raises if the metadata does not hash to this reader's name or
        its owner signature is invalid — i.e. if the infrastructure sent
        metadata for the wrong (or a forged) capsule.
        """
        metadata.verify(expected_name=self.name)
        if self._capsule is None:
            self._capsule = DataCapsule(metadata, verify_metadata=False)
        elif self._capsule.metadata != metadata:
            raise IntegrityError("conflicting metadata for the same name")
        return self._capsule

    def observe_heartbeat(self, heartbeat: Heartbeat) -> None:
        """Verify and record a heartbeat; advances the freshness frontier.

        Equivocation (two valid heartbeats, same seqno, different
        digests) raises :class:`EquivocationError` for SSW capsules.
        """
        capsule = self.capsule
        capsule.add_heartbeat(heartbeat)
        if self._frontier is not None and capsule.writer_mode == "ssw":
            detect_equivocation(self._frontier, heartbeat, capsule.writer_key)
        if self._frontier is None or heartbeat.seqno > self._frontier.seqno:
            self._frontier = heartbeat

    def check_freshness(self, heartbeat: Heartbeat) -> None:
        """Reject a response anchored on a heartbeat older than this
        reader's frontier (§VI-C: readers "can simply discard stale
        information")."""
        if self._frontier is not None and heartbeat.seqno < self._frontier.seqno:
            raise IntegrityError(
                f"stale response: anchored at seqno {heartbeat.seqno} but "
                f"reader has already verified seqno {self._frontier.seqno}"
            )

    def accept_record(self, record: Record, proof: PositionProof) -> Record:
        """Verify a single record against its proof and absorb it."""
        capsule = self.capsule
        proof.verify_record(record, capsule.writer_key)
        self.observe_heartbeat(proof.heartbeat)
        capsule.insert(record, enforce_strategy=False)
        return record

    def accept_range(
        self, records: list[Record], proof: RangeProof
    ) -> list[Record]:
        """Verify a contiguous range against its proof and absorb it."""
        capsule = self.capsule
        proof.verify_records(records, capsule.writer_key)
        self.observe_heartbeat(proof.position.heartbeat)
        for record in records:
            capsule.insert(record, enforce_strategy=False)
        return records

    def accept_pushed(
        self,
        record: Record,
        heartbeat: Heartbeat,
        proof_wire: "dict | None" = None,
    ) -> Record:
        """Verify a subscription push and absorb it.

        Batched appends sign one heartbeat per batch, so a pushed record
        is not necessarily the one its heartbeat pins; such pushes carry
        an explicit position proof (*proof_wire*).  Legacy pushes omit it
        and the heartbeat itself is the one-hop proof.
        """
        if proof_wire is not None:
            proof = PositionProof.from_wire(proof_wire)
        else:
            proof = PositionProof(heartbeat, [record.header_wire()])
        self.accept_record(record, proof)
        if heartbeat is not proof.heartbeat:
            self.observe_heartbeat(heartbeat)
        return record

    def accept_stream_record(self, record: Record, proof: PositionProof) -> Record:
        """Like :meth:`accept_record` but also tolerated for
        hole-tolerant capsules where intermediate records were lost in
        transmission; the proof still pins the record exactly."""
        return self.accept_record(record, proof)

    def verify_everything(self) -> int:
        """Offline re-verification of the full accumulated history
        against the frontier heartbeat; returns records covered."""
        return self.capsule.verify_history(self._frontier)
