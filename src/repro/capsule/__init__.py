"""DataCapsules: the paper's primary contribution.

Single-writer, append-only authenticated data structures with
configurable hash-pointers, signed heartbeats, verifiable read proofs,
sealed payloads, and branch handling for quasi-single-writer recovery.
"""

from repro.capsule.capsule import DataCapsule, build_record
from repro.capsule.entanglement import (
    cross_order,
    entangle,
    entanglements_in,
    happens_before,
    verify_entanglement,
)
from repro.capsule.hashptr import (
    ChainStrategy,
    CheckpointStrategy,
    PointerStrategy,
    SkipListStrategy,
    StreamStrategy,
    get_strategy,
)
from repro.capsule.heartbeat import Heartbeat, detect_equivocation
from repro.capsule.proofs import (
    PositionProof,
    RangeProof,
    build_position_proof,
    build_range_proof,
)
from repro.capsule.reader import VerifyingReader
from repro.capsule.records import Record, metadata_anchor
from repro.capsule.sealed import ContentKey, ReadGrant, open_payload, seal_payload
from repro.capsule.writer import CapsuleWriter, QuasiWriter, WriterState

__all__ = [
    "DataCapsule",
    "build_record",
    "Record",
    "metadata_anchor",
    "Heartbeat",
    "detect_equivocation",
    "PointerStrategy",
    "ChainStrategy",
    "SkipListStrategy",
    "CheckpointStrategy",
    "StreamStrategy",
    "get_strategy",
    "PositionProof",
    "RangeProof",
    "build_position_proof",
    "build_range_proof",
    "CapsuleWriter",
    "QuasiWriter",
    "WriterState",
    "VerifyingReader",
    "ContentKey",
    "ReadGrant",
    "seal_payload",
    "open_payload",
    "entangle",
    "entanglements_in",
    "verify_entanglement",
    "cross_order",
    "happens_before",
]
