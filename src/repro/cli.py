"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``version``     print the library version
``selfcheck``   run a miniature end-to-end scenario (place a capsule on
                a two-domain GDP, append, verified read, tamper-detect)
                and report PASS/FAIL — the 30-second smoke test for a
                fresh install
``stats``       run the same scenario with the metrics/trace plane on
                and print the per-node counter table (``--trace N``
                also dumps the first N deterministic trace events)
``results``     print the experiment tables from the last benchmark run
``inventory``   list the implemented subsystems and their test counts
``simtest``     run seeded chaos episodes against the invariant oracles
                (``--seed N --episodes K``); every failure prints a
                one-line repro command, ``--shrink`` minimizes the
                fault schedule of each failing episode
``bench``       run a hot-path benchmark suite: ``--suite crypto``
                (default: sign, verify cold/warm, append,
                verify_history, fig8 e2e, accelerated vs naive) or
                ``--suite replication`` (Merkle-delta anti-entropy vs
                full-scan, batched vs per-record append pipeline);
                ``--json PATH`` writes the BENCH_<suite>.json document,
                ``--check BASELINE`` exits non-zero on a >30%
                regression (the CI perf gate)
``serve``       boot a real multi-process fleet over TCP
                (``--fleet N`` shared-nothing processes, each one
                router + one DataCapsule-server); Ctrl-C drains
                gracefully and prints per-process shutdown summaries
``loadgen``     drive a fleet with an open-loop workload and report
                p50/p99/p999 append/read latency plus sustained PDU/s
                per level; ``--json``/``--check`` mirror ``bench``
                (the transport CI perf gate)
"""

from __future__ import annotations

import argparse
import os
import sys


def cmd_version(_args: argparse.Namespace) -> int:
    """The ``version`` command."""
    import repro

    print(f"repro {repro.__version__} — Global Data Plane reproduction "
          "(Mor et al., ICDCS 2019)")
    return 0


def _build_selfcheck_world():
    """The shared two-domain smoke-scenario world: returns
    ``(net, checks, scenario)`` where *scenario* is a generator function
    ready for ``net.sim.run_process`` and *checks* fills with
    ``(name, passed)`` tuples as it runs."""
    import random

    from repro.adversary import StorageTamperer
    from repro.client import GdpClient, OwnerConsole
    from repro.crypto import SigningKey
    from repro.errors import GdpError
    from repro.routing import GdpRouter, RoutingDomain
    from repro.server import DataCapsuleServer
    from repro.sim import GBPS, SimNetwork

    net = SimNetwork(seed=123)
    clock = lambda: net.sim.now  # noqa: E731
    root = RoutingDomain("global", clock=clock)
    edge = RoutingDomain("global.edge", root)
    r_root = GdpRouter(net, "r_root", root)
    r_edge = GdpRouter(net, "r_edge", edge)
    net.connect(r_edge, r_root, latency=0.02, bandwidth=GBPS)
    edge.attach_to_parent(r_edge, r_root)
    server_a = DataCapsuleServer(net, "server_a")
    server_a.attach(r_root)
    server_b = DataCapsuleServer(net, "server_b")
    server_b.attach(r_edge)
    client = GdpClient(net, "client")
    client.attach(r_edge)
    reader = GdpClient(net, "reader")
    reader.attach(r_root)
    key_rng = random.Random(123)  # seeded keys keep the run reproducible
    owner = SigningKey.generate(key_rng)
    writer_key = SigningKey.generate(key_rng)
    console = OwnerConsole(client, owner)
    checks: list[tuple[str, bool]] = []

    def scenario():
        for endpoint in (server_a, server_b, client, reader):
            yield endpoint.advertise()
        metadata = console.design_capsule(
            writer_key.public, pointer_strategy="skiplist"
        )
        yield from console.place_capsule(
            metadata, [server_a.metadata, server_b.metadata]
        )
        yield 0.5
        checks.append(("place capsule on 2 domains", True))
        writer = client.open_writer(metadata, writer_key)
        yield from writer.append_stream(
            [b"record-%d" % i for i in range(5)]
        )
        receipt = yield from writer.append(b"durable", acks="all")
        checks.append(("append (incl. acks=all)", receipt.acks == 2))
        yield 1.0
        got = yield from reader.read(metadata.name, 3)
        checks.append(
            ("cross-domain verified read", got.record.payload == b"record-2")
        )
        result = yield from reader.read_range(metadata.name, 1, 6)
        checks.append(("verified range read", len(result.records) == 6))
        StorageTamperer(server_a).corrupt_record(metadata.name, 2)
        fresh = GdpClient(net, "fresh")
        fresh.attach(r_root)
        yield fresh.advertise()
        try:
            yield from fresh.read(metadata.name, 2)
            checks.append(("tamper detection", False))
        except GdpError:
            checks.append(("tamper detection", True))
        return True

    return net, checks, scenario


def cmd_selfcheck(_args: argparse.Namespace) -> int:
    """The ``selfcheck`` command: end-to-end smoke scenario."""
    net, checks, scenario = _build_selfcheck_world()
    try:
        net.sim.run_process(scenario())
    except Exception as exc:  # noqa: BLE001 — selfcheck reports, not crashes
        print(f"selfcheck CRASHED: {type(exc).__name__}: {exc}")
        return 2
    ok = all(passed for _, passed in checks)
    for name, passed in checks:
        print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    print("selfcheck:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """The ``stats`` command: selfcheck scenario + metrics table."""
    net, _checks, scenario = _build_selfcheck_world()
    net.enable_node_metrics()
    tracer = net.enable_tracing()
    try:
        net.sim.run_process(scenario())
    except Exception as exc:  # noqa: BLE001 — reported, not crashed
        print(f"stats scenario CRASHED: {type(exc).__name__}: {exc}")
        return 2
    print(f"{'scope':<22} {'counter':<26} {'value':>12}")
    print("-" * 62)
    for scope, counters in net.metrics.snapshot().items():
        for name, value in counters.items():
            if isinstance(value, dict):  # histogram summary
                value = value.get("count", 0)
            if value:
                print(f"{scope:<22} {name:<26} {value:>12}")
    print(f"\ntrace events recorded: {len(tracer)} "
          f"(sim time {net.sim.now:.3f}s)")
    if args.trace:
        print()
        for line in tracer.lines()[: args.trace]:
            print(line)
    return 0


def cmd_results(_args: argparse.Namespace) -> int:
    """The ``results`` command: print benchmark tables."""
    results_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        "benchmarks",
        "results",
    )
    if not os.path.isdir(results_dir):
        print("no benchmark results yet — run: "
              "pytest benchmarks/ --benchmark-only")
        return 1
    for filename in sorted(os.listdir(results_dir)):
        if not filename.endswith(".txt"):
            continue
        print(f"== {filename[:-4]} ==")
        with open(os.path.join(results_dir, filename)) as fh:
            print(fh.read())
    return 0


def cmd_inventory(_args: argparse.Namespace) -> int:
    """The ``inventory`` command: list subsystems."""
    import repro.adversary
    import repro.baselines
    import repro.caapi
    import repro.capsule
    import repro.client
    import repro.crypto
    import repro.delegation
    import repro.naming
    import repro.routing
    import repro.server
    import repro.sim

    packages = [
        ("crypto", repro.crypto, "ECDSA P-256, ChaCha20, HKDF, Merkle"),
        ("naming", repro.naming, "flat self-certifying names + metadata"),
        ("capsule", repro.capsule, "the DataCapsule ADS + proofs + writers"),
        ("delegation", repro.delegation, "AdCerts/RtCerts/memberships/SubGrants"),
        ("routing", repro.routing, "routers, domains, GLookup, DHT, catalogs"),
        ("server", repro.server, "DataCapsule-servers + replication"),
        ("client", repro.client, "GDP client library + owner console"),
        ("caapi", repro.caapi, "fs / kv / time-series / stream / multi-writer"),
        ("baselines", repro.baselines, "simulated S3 + SSHFS"),
        ("adversary", repro.adversary, "threat-model fault injection"),
        ("sim", repro.sim, "discrete-event network simulator"),
    ]
    for name, module, blurb in packages:
        exported = len(getattr(module, "__all__", []))
        print(f"  repro.{name:<11} {exported:>3} public symbols  — {blurb}")
    return 0


def cmd_simtest(args: argparse.Namespace) -> int:
    """The ``simtest`` command: seeded chaos episodes + oracles."""
    from repro.simtest import run_episode, shrink_episode

    failures = 0
    for i in range(args.episodes):
        seed = args.seed + i
        result = run_episode(seed, profile=args.profile)
        if result.ok:
            print(
                f"episode seed={seed}: PASS "
                f"({len(result.plan.faults)} faults, "
                f"{len(result.op_log)} ops, "
                f"trace sha256={result.trace_sha256[:16]})"
            )
            continue
        failures += 1
        print(result.report())
        if args.shrink:
            import functools

            shrunk = shrink_episode(
                seed,
                run=functools.partial(run_episode, profile=args.profile),
            )
            for line in shrunk.describe():
                print(line)
    print(
        f"simtest: {args.episodes - failures}/{args.episodes} "
        f"episodes passed"
    )
    return 0 if failures == 0 else 1


def cmd_bench(args: argparse.Namespace) -> int:
    """The ``bench`` command: hot-path op/s + speedups for the selected
    suite (``crypto`` primitives, the ``replication`` plane, the
    ``storage`` engines, the ``routing`` fabric, or the sharded
    ``commit`` plane)."""
    import json

    if args.suite == "commit":
        from repro import bench_commit as bench

        doc = bench.run_bench(
            quick=args.quick,
            progress=lambda msg: print(f"  ... {msg}", flush=True),
        )
    elif args.suite == "routing":
        from repro import bench_routing as bench

        doc = bench.run_bench(
            quick=args.quick,
            progress=lambda msg: print(f"  ... {msg}", flush=True),
        )
    elif args.suite == "replication":
        from repro import bench_replication as bench

        doc = bench.run_bench(
            progress=lambda msg: print(f"  ... {msg}", flush=True),
        )
    elif args.suite == "storage":
        from repro import bench_storage as bench

        doc = bench.run_bench(
            quick=args.quick,
            progress=lambda msg: print(f"  ... {msg}", flush=True),
        )
    else:
        from repro import bench

        doc = bench.run_bench(
            skip_fig8=args.quick,
            progress=lambda msg: print(f"  ... {msg}", flush=True),
        )
    print()
    print(bench.format_table(doc))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    if args.check:
        try:
            baseline = bench.load_baseline(args.check)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"\nperf gate: cannot read baseline {args.check}: {exc}")
            return 2
        failures = bench.check_regression(doc, baseline)
        if failures:
            print(f"\nperf gate FAILED vs {args.check}:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"\nperf gate PASS vs {args.check}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` command: run a real socket-mode fleet until
    interrupted, then drain gracefully."""
    import signal
    import tempfile
    import time

    from repro.fleet import FleetLauncher, FleetSpec

    # SIGTERM (systemd stop, docker stop, a supervisor) must drain the
    # fleet exactly like Ctrl-C; without this the supervisor dies and
    # orphans its children mid-write.
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)

    rendezvous = args.rendezvous or tempfile.mkdtemp(prefix="gdp_fleet_")
    spec = FleetSpec(
        args.fleet,
        rendezvous,
        host=args.host,
        storage_root=args.storage,
        storage_engine=args.storage_engine,
        fsync=args.fsync,
    )
    launcher = FleetLauncher(spec)
    launcher.start()
    try:
        try:
            ports = launcher.wait_ready()
        except TimeoutError as exc:
            print(f"fleet failed to come up: {exc}")
            return 2
        print(f"fleet up: {args.fleet} processes on {args.host}")
        for index, port in enumerate(ports):
            print(
                f"  [{index}] router {spec.router_node_id(index)} "
                f"port {port}  server {spec.server_name(index).human()}"
            )
        print(f"rendezvous: {rendezvous}")
        print("Ctrl-C to drain and stop")
        while launcher.alive():
            time.sleep(0.5)
        print("fleet exited unexpectedly")
        return 1
    except KeyboardInterrupt:
        print("\ndraining fleet ...")
        summaries = launcher.stop()
        for summary in summaries:
            drain_ms = summary.get("drain_ms")
            drained = (
                f"{drain_ms:.1f} ms" if drain_ms is not None else "no drain"
            )
            print(
                f"  [{summary.get('index')}] drain {drained}, "
                f"appends {summary.get('appends', '?')}, "
                f"replications {summary.get('replications', '?')}, "
                f"reads {summary.get('reads', '?')}"
            )
        return 0
    finally:
        # Whatever path exits (startup timeout, a crash, an interrupt
        # mid-wait_ready), never leave the children orphaned — the
        # multiprocessing atexit join would hang the supervisor forever.
        if launcher.alive():
            launcher.stop()


def cmd_loadgen(args: argparse.Namespace) -> int:
    """The ``loadgen`` command: open-loop load against a real fleet."""
    import json

    from repro import loadgen

    rates = tuple(int(r) for r in args.rates.split(",")) if args.rates \
        else loadgen.DEFAULT_RATES
    doc = loadgen.run_loadgen(
        processes=args.processes,
        rates=rates,
        duration=args.duration,
        progress=lambda msg: print(f"  ... {msg}", flush=True),
    )
    print()
    print(loadgen.format_table(doc))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    if args.check:
        try:
            baseline = loadgen.load_baseline(args.check)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"\nperf gate: cannot read baseline {args.check}: {exc}")
            return 2
        failures = loadgen.check_regression(doc, baseline)
        if failures:
            print(f"\nperf gate FAILED vs {args.check}:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"\nperf gate PASS vs {args.check}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Global Data Plane / DataCapsules reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("version", help="print the version")
    sub.add_parser("selfcheck", help="run the end-to-end smoke scenario")
    stats = sub.add_parser(
        "stats", help="run the smoke scenario and print per-node metrics"
    )
    stats.add_argument(
        "--trace",
        type=int,
        default=0,
        metavar="N",
        help="also print the first N deterministic trace events",
    )
    sub.add_parser("results", help="print the last benchmark tables")
    sub.add_parser("inventory", help="list implemented subsystems")
    simtest = sub.add_parser(
        "simtest",
        help="run seeded chaos episodes against the invariant oracles",
    )
    simtest.add_argument(
        "--seed", type=int, default=1, metavar="N",
        help="first episode seed (default 1)",
    )
    simtest.add_argument(
        "--episodes", type=int, default=1, metavar="K",
        help="how many consecutive seeds to run (default 1)",
    )
    simtest.add_argument(
        "--shrink", action="store_true",
        help="greedily minimize the fault schedule of failing episodes",
    )
    simtest.add_argument(
        "--profile",
        choices=("default", "crash_bias", "commit", "dht_churn"),
        default="default",
        help="episode variant: crash_bias biases faults toward crashes, "
        "commit attaches a sharded commit plane with racing CAS "
        "submitters, dht_churn crashes Kademlia overlay nodes under the "
        "DHT-backed global tier (default: default)",
    )
    bench_cmd = sub.add_parser(
        "bench", help="run a hot-path benchmark suite"
    )
    bench_cmd.add_argument(
        "--suite",
        choices=("crypto", "replication", "storage", "routing", "commit"),
        default="crypto",
        help="which benchmark suite to run (default: crypto)",
    )
    bench_cmd.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the BENCH_<suite>.json document to PATH",
    )
    bench_cmd.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="exit non-zero on >30% speedup regression vs BASELINE",
    )
    bench_cmd.add_argument(
        "--quick", action="store_true",
        help="smaller run: crypto skips the fig8 end-to-end pass, "
        "storage builds 200k records instead of 10M, commit runs "
        "only the gated cells",
    )
    serve = sub.add_parser(
        "serve", help="boot a real multi-process fleet over TCP"
    )
    serve.add_argument(
        "--fleet", type=int, default=3, metavar="N",
        help="number of shared-nothing processes (default 3)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    serve.add_argument(
        "--rendezvous", default=None, metavar="DIR",
        help="port/ready-file directory (default: a fresh temp dir)",
    )
    serve.add_argument(
        "--storage", default=None, metavar="DIR",
        help="durable storage root (default: in-memory storage)",
    )
    serve.add_argument(
        "--storage-engine", choices=("file", "segmented"), default="file",
        help="durable backend: one append-only file per capsule, or "
        "the segmented log with crash recovery + cold tiering "
        "(default: file)",
    )
    serve.add_argument(
        "--fsync", action="store_true",
        help="durable appends: file fsyncs every append, segmented "
        "batches fsyncs (batch:65536)",
    )
    loadgen_cmd = sub.add_parser(
        "loadgen", help="open-loop load against a real fleet"
    )
    loadgen_cmd.add_argument(
        "--processes", type=int, default=3, metavar="N",
        help="fleet size to spawn (default 3)",
    )
    loadgen_cmd.add_argument(
        "--rates", default=None, metavar="R1,R2,...",
        help="offered op rates per level (default 25,50,100)",
    )
    loadgen_cmd.add_argument(
        "--duration", type=float, default=2.0, metavar="S",
        help="seconds per level (default 2)",
    )
    loadgen_cmd.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the BENCH_transport.json document to PATH",
    )
    loadgen_cmd.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="exit non-zero on perf-gate failure vs BASELINE",
    )
    args = parser.parse_args(argv)
    commands = {
        "version": cmd_version,
        "selfcheck": cmd_selfcheck,
        "stats": cmd_stats,
        "results": cmd_results,
        "inventory": cmd_inventory,
        "simtest": cmd_simtest,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
    }
    if args.command is None:
        parser.print_help()
        return 0
    return commands[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
