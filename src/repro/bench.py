"""Crypto hot-path benchmark: the engine behind ``repro bench``.

Measures op/s for the operations the acceleration layer targets — sign,
verify (cold ladder / warm memo), capsule append, full-history
verification — plus the Figure-8 end-to-end case study, each in
accelerated and naive mode, and emits the machine-readable
``BENCH_crypto.json`` consumed by the CI perf gate.

The CI gate compares **speedup ratios** (accelerated vs naive *on the
same machine and run*), not absolute op/s: absolute throughput varies
several-fold across runner hardware, while the ratio isolates exactly
what this layer is responsible for.  A >30% drop in any gated ratio
fails the build (see ``check_regression``).
"""

from __future__ import annotations

import json
import os
import time

__all__ = ["run_bench", "check_regression", "GATED_SPEEDUPS"]

#: speedup keys the CI gate enforces, with the floor each must beat
#: even before regression comparison (the ISSUE's acceptance criteria).
GATED_SPEEDUPS = {"verify": 5.0, "sign": 2.0, "fig8_e2e": 2.0}

_REGRESSION_TOLERANCE = 0.30


_TRIALS = 3


def _trial(fn, seconds: float) -> float:
    """One timed burst of *fn*; returns op/s."""
    iters = 0
    start = time.perf_counter()
    while True:
        fn()
        iters += 1
        elapsed = time.perf_counter() - start
        if elapsed >= seconds and iters >= 2:
            return iters / elapsed


def _paired(fn, *, seconds: float = 0.1) -> tuple[float, float]:
    """Best-of-N op/s for *fn* under accelerated and naive crypto.

    The two modes alternate within the same measurement window
    (A/N/A/N/...), so slow machine phases — scheduler contention, a
    co-tenant burst, thermal throttling — hit both sides equally and
    cancel out of the speedup ratio.  Best-of-N then discards the
    trials that measured the machine instead of the code.
    """
    from repro.crypto import cache

    best = {True: 0.0, False: 0.0}
    try:
        for _ in range(_TRIALS):
            for mode in (True, False):
                cache.set_accel_enabled(mode)
                fn()  # warm-up under this mode (tables, cache priming)
                best[mode] = max(best[mode], _trial(fn, seconds))
    finally:
        cache.set_accel_enabled(True)
    return best[True], best[False]


def _build_capsule(n_records: int):
    from repro.capsule import CapsuleWriter, DataCapsule
    from repro.crypto import SigningKey
    from repro.naming import make_capsule_metadata

    owner = SigningKey.from_seed(b"bench-owner")
    writer_key = SigningKey.from_seed(b"bench-writer")
    metadata = make_capsule_metadata(
        owner, writer_key.public, pointer_strategy="skiplist"
    )
    capsule = DataCapsule(metadata)
    writer = CapsuleWriter(capsule, writer_key)
    for i in range(n_records):
        writer.append(b"bench-record-%d" % i)
    return capsule, writer


def _rebuilt_copy(capsule):
    """A fresh DataCapsule holding the same history, repopulated from
    wire forms — the state a replica has after anti-entropy."""
    from repro.capsule import DataCapsule
    from repro.capsule.heartbeat import Heartbeat
    from repro.capsule.records import Record

    clone = DataCapsule(capsule.metadata)
    for seqno in sorted(capsule.seqnos()):
        record = Record.from_wire(
            capsule.name, capsule.get(seqno).to_wire()
        )
        clone.insert(record, enforce_strategy=False)
    for heartbeat in capsule.heartbeats():
        clone.add_heartbeat(Heartbeat.from_wire(heartbeat.to_wire()))
    return clone


def _bench_primitives(accel: dict, naive: dict, note) -> None:
    from repro.crypto import SigningKey, cache

    key = SigningKey.from_seed(b"bench-prim")
    public = key.public
    messages = [b"bench-msg-%d" % i for i in range(4096)]
    signatures = {m: key.sign(m) for m in messages[:512]}
    counter = {"n": 0}

    def sign_once():
        counter["n"] += 1
        key.sign(messages[counter["n"] % len(messages)])

    note("sign")
    accel["sign"], naive["sign"] = _paired(sign_once)

    # Cold verify: clear the memo each call so the ladder actually runs.
    def verify_cold():
        cache.reset()
        message = messages[counter["n"] % 512]
        counter["n"] += 1
        assert public.verify(message, signatures[message])

    note("verify (cold)")
    accel["verify_cold"], naive["verify_cold"] = _paired(verify_cold)

    # Warm verify: the same triple every call — memoized under accel, a
    # full ladder under naive.
    warm_msg, warm_sig = messages[0], signatures[messages[0]]

    def verify_warm():
        assert public.verify(warm_msg, warm_sig)

    note("verify (warm)")
    accel["verify_warm"], naive["verify_warm"] = _paired(
        verify_warm, seconds=0.05
    )


def _bench_capsule_ops(accel: dict, naive: dict, note) -> None:
    from repro.crypto import cache

    _, writer = _build_capsule(64)
    counter = {"n": 0}

    def append_once():
        counter["n"] += 1
        writer.append(b"bench-extra-%d" % counter["n"])

    note("append")
    accel["append"], naive["append"] = _paired(append_once)

    history, _ = _build_capsule(128)
    replica = _rebuilt_copy(history)

    def verify_history_cold():
        cache.reset()
        replica.verify_history()

    note("verify_history")
    walks_accel, walks_naive = _paired(verify_history_cold, seconds=0.15)
    # Normalize to records verified per second (walks cover 128 records).
    accel["verify_history"] = 128 * walks_accel
    naive["verify_history"] = 128 * walks_naive


def _fig8_seconds() -> float | None:
    """One Figure-8 case-study run (wall-clock seconds of real CPU —
    simulated network time is free, crypto is not), or ``None`` when the
    benchmarks directory is not on disk (installed-package case)."""
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    path = os.path.join(root, "benchmarks", "test_fig8_case_study.py")
    if not os.path.exists(path):
        return None
    import importlib.util

    spec = importlib.util.spec_from_file_location("_fig8_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    start = time.perf_counter()
    module.run_case_study(module.MODEL_SMALL, seed=0)
    return time.perf_counter() - start


def run_bench(*, skip_fig8: bool = False, progress=None) -> dict:
    """Run every benchmark in accelerated and naive mode; returns the
    BENCH_crypto.json document (dict)."""
    from repro.crypto import cache, ec

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    accel: dict[str, float] = {}
    naive: dict[str, float] = {}

    cache.set_accel_enabled(True)
    ec.clear_point_tables()
    _bench_primitives(accel, naive, note)
    _bench_capsule_ops(accel, naive, note)

    accel_fig8 = naive_fig8 = None
    if not skip_fig8:
        # Back-to-back runs so ambient machine load hits both modes.
        note("fig8 e2e (accelerated)")
        accel_fig8 = _fig8_seconds()
        if accel_fig8 is not None:
            cache.set_accel_enabled(False)
            try:
                note("fig8 e2e (naive)")
                naive_fig8 = _fig8_seconds()
            finally:
                cache.set_accel_enabled(True)

    speedup = {
        "sign": accel["sign"] / naive["sign"],
        "verify": accel["verify_cold"] / naive["verify_cold"],
        "verify_warm": accel["verify_warm"] / naive["verify_warm"],
        "append": accel["append"] / naive["append"],
        "verify_history": accel["verify_history"] / naive["verify_history"],
    }
    doc: dict = {
        "schema": "gdp-bench-crypto/1",
        "ops_per_sec": {k: round(v, 1) for k, v in accel.items()},
        "naive_ops_per_sec": {k: round(v, 1) for k, v in naive.items()},
        "speedup": {},
    }
    if accel_fig8 is not None and naive_fig8 is not None:
        doc["fig8_e2e_seconds"] = {
            "accel": round(accel_fig8, 3),
            "naive": round(naive_fig8, 3),
        }
        speedup["fig8_e2e"] = naive_fig8 / accel_fig8
    doc["speedup"] = {k: round(v, 2) for k, v in sorted(speedup.items())}
    return doc


def check_regression(current: dict, baseline: dict) -> list[str]:
    """Compare a fresh run against the checked-in baseline; returns a
    list of failure strings (empty = gate passes).

    Gated: every key in :data:`GATED_SPEEDUPS` must (a) be present, (b)
    beat its absolute floor, and (c) be within 30% of the baseline's
    ratio.  Absolute op/s are informational only — they track runner
    hardware, not this codebase.
    """
    failures = []
    cur = current.get("speedup", {})
    base = baseline.get("speedup", {})
    for key, floor in GATED_SPEEDUPS.items():
        if key not in cur:
            failures.append(f"speedup.{key}: missing from current run")
            continue
        if cur[key] < floor:
            failures.append(
                f"speedup.{key}: {cur[key]:.2f}x is below the "
                f"{floor:.1f}x acceptance floor"
            )
        if key in base and cur[key] < base[key] * (1 - _REGRESSION_TOLERANCE):
            failures.append(
                f"speedup.{key}: {cur[key]:.2f}x regressed >30% from "
                f"baseline {base[key]:.2f}x"
            )
    return failures


def format_table(doc: dict) -> str:
    """Human-readable summary of a benchmark document."""
    lines = ["operation            accel op/s      naive op/s    speedup",
             "-" * 58]
    naive = doc.get("naive_ops_per_sec", {})
    speedup = doc.get("speedup", {})
    row_keys = [
        ("sign", "sign", "sign"),
        ("verify (cold)", "verify_cold", "verify"),
        ("verify (warm)", "verify_warm", "verify_warm"),
        ("append", "append", "append"),
        ("verify_history r/s", "verify_history", "verify_history"),
    ]
    for label, ops_key, speed_key in row_keys:
        lines.append(
            f"{label:<18} {doc['ops_per_sec'][ops_key]:>12,.0f} "
            f"{naive.get(ops_key, 0):>15,.0f} "
            f"{speedup.get(speed_key, 0):>9.2f}x"
        )
    fig8 = doc.get("fig8_e2e_seconds")
    if fig8:
        lines.append(
            f"{'fig8 e2e (s)':<18} {fig8['accel']:>12.3f} "
            f"{fig8['naive']:>15.3f} {speedup.get('fig8_e2e', 0):>9.2f}x"
        )
    return "\n".join(lines)


def load_baseline(path: str) -> dict:
    """Read a BENCH_crypto.json document from *path*."""
    with open(path) as fh:
        return json.load(fh)
