"""The GDP client library (§VIII "GDP library").

"The GDP library takes care of connecting to a GDP-router ... advertise
the desired names, and provide the desired interface of a DataCapsule as
an object that can be appended to, read from, or subscribed to."

:class:`GdpClient` adds, on top of the raw :class:`Endpoint` RPC:

- response verification (signature or HMAC secure responses, delegation
  chains checked against the capsule name being asked about);
- proof verification via a per-capsule :class:`VerifyingReader`;
- the writer side (:class:`ClientWriter`), which serializes appends
  locally and talks the durability (acks) protocol;
- verified subscriptions with an application callback.

Every read returns a :class:`~repro.client.results.ReadResult` and every
append a :class:`~repro.client.results.AppendReceipt` — uniform
envelopes carrying the verified records plus the proof, the answering
server, and the observed round-trip latency.  The pre-envelope shapes
(bare records, ``(record, acks)`` tuples, record lists) still work
through deprecation shims on the envelopes; see ``docs/CLIENT_API.md``
for the migration table and removal timeline.  All network-facing
methods take a consistent ``timeout=`` keyword and writers a
consistent ``acks=`` override.

All network-facing methods are *generator coroutines*: call them inside
a simulation process with ``yield from`` (or via ``sim.run_process``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator

from repro.capsule.capsule import DataCapsule
from repro.capsule.heartbeat import Heartbeat
from repro.capsule.proofs import PositionProof, RangeProof
from repro.capsule.reader import VerifyingReader
from repro.capsule.records import Record
from repro.capsule.writer import CapsuleWriter, QuasiWriter
from repro.client.failover import FailoverPolicy, Subscription
from repro.client.results import AppendReceipt, ReadResult
from repro.crypto.hmac_session import Handshake, SessionKey
from repro.crypto.keys import SigningKey
from repro.errors import (
    CapsuleError,
    DurabilityError,
    GdpError,
    IntegrityError,
    RoutingError,
    TimeoutError_,
)
from repro.naming.metadata import MODE_QSW, Metadata, make_client_metadata
from repro.naming.names import GdpName
from repro.routing.endpoint import Endpoint
from repro.routing.pdu import Pdu
from repro.server.secure import verify_mac_response, verify_signed_response
from repro.sim.net import SimNetwork

__all__ = [
    "GdpClient",
    "ClientWriter",
    "ReadResult",
    "AppendReceipt",
    "FailoverPolicy",
]


class GdpClient(Endpoint):
    """A named GDP client endpoint with verified capsule operations."""

    def __init__(
        self,
        network: SimNetwork,
        node_id: str,
        *,
        key: SigningKey | None = None,
        verify: bool = True,
        failover: FailoverPolicy | None = None,
    ):
        key = key or SigningKey.from_seed(b"client:" + node_id.encode())
        metadata = make_client_metadata(key, extra={"node_id": node_id})
        super().__init__(network, node_id, metadata, key)
        self.verify = verify
        #: retry/backoff envelope for anycast ops hitting dead routes
        self.failover = failover or FailoverPolicy()
        #: optional QoS accountability tracker (see repro.client.qos)
        self.qos = None
        self.readers: dict[GdpName, VerifyingReader] = {}
        self._sessions: dict[GdpName, SessionKey] = {}
        #: capsule -> replica that answered our last op (the client-side
        #: resolution cache failover invalidates)
        self._resolutions: dict[GdpName, GdpName] = {}
        self._subscriptions: dict[GdpName, Subscription] = {}

    # -- request plumbing -------------------------------------------------

    def request(
        self,
        dst: GdpName,
        payload: Any,
        *,
        timeout: float | None = 30.0,
    ) -> tuple[int, Any]:
        """Send an op request; returns ``(corr_id, future)`` so the
        caller can verify the secure response binding."""
        request = Pdu(self.name, dst, "data", payload)
        future = self.sim.future()
        self._pending_rpcs[request.corr_id] = future
        self.send_pdu(request)
        if self.qos is not None:
            self.qos.request_sent(request.corr_id)

            def qos_watch(fut, corr_id=request.corr_id):
                from repro.errors import TimeoutError_

                if fut._error is not None and isinstance(
                    fut._error, TimeoutError_
                ):
                    self.qos.request_timed_out(corr_id)

        if timeout is not None:
            future = self.sim.timeout(
                future, timeout, f"op {payload.get('op')} to {dst.human()}"
            )
        if self.qos is not None:
            future.add_callback(qos_watch)
        return request.corr_id, future

    def failover_request(
        self,
        capsule: GdpName,
        payload: Any,
        *,
        timeout: float | None = 30.0,
        policy: FailoverPolicy | None = None,
    ) -> Generator:
        """An anycast op with replica failover: a ``T_NO_ROUTE`` bounce
        or RPC timeout invalidates the cached resolution (ours *and*
        the router's, via ``T_ROUTE_INVALIDATE``), backs off, and
        retries — the name re-resolves through the hierarchy and
        anycast lands on the next replica.  Returns
        ``(corr_id, wrapped)``; server refusals and verification
        failures are never retried (a different replica would refuse
        too, and hammering on an integrity failure helps an attacker).
        """
        policy = policy or self.failover
        last_error: GdpError | None = None
        for attempt in range(max(policy.attempts, 1)):
            corr_id, future = self.request(
                capsule, dict(payload), timeout=timeout
            )
            try:
                wrapped = yield future
            except (RoutingError, TimeoutError_) as exc:
                last_error = exc
                self.report_route_failure(
                    capsule, self._resolutions.pop(capsule, None)
                )
                if attempt + 1 < max(policy.attempts, 1):
                    yield policy.delay(attempt)
                continue
            server = self._server_of(wrapped)
            if server is not None:
                self._resolutions[capsule] = server
            return corr_id, wrapped
        assert last_error is not None
        raise last_error

    def _unwrap(
        self,
        wrapped: Any,
        *,
        corr_id: int,
        capsule: GdpName | None = None,
        session_with: GdpName | None = None,
    ) -> dict:
        """Verify the secure-response envelope and the op-level result;
        returns the body.  Raises on any verification or server-reported
        failure."""
        if not self.verify:
            body = wrapped.get("body", wrapped)
        elif (
            session_with is not None
            and session_with in self._sessions
            and isinstance(wrapped, dict)
            and wrapped.get("auth", {}).get("mode") == "hmac"
        ):
            body = verify_mac_response(
                self._sessions[session_with],
                wrapped,
                client=self.name,
                corr_id=corr_id,
            )
        else:
            body = verify_signed_response(
                wrapped,
                client=self.name,
                corr_id=corr_id,
                capsule=capsule,
                now=self.sim.now,
            )
        if self.qos is not None and isinstance(wrapped, dict):
            auth = wrapped.get("auth", {})
            if auth.get("mode") == "sig" and "server_metadata" in auth:
                try:
                    server = Metadata.from_wire(auth["server_metadata"]).name
                    self.qos.response_attributed(
                        corr_id, server, bool(body.get("ok"))
                    )
                except GdpError:
                    pass
        if not body.get("ok"):
            raise CapsuleError(body.get("error", "server refused"))
        return body

    def _server_of(self, wrapped: Any) -> GdpName | None:
        """The verified identity of the answering server (for result
        envelopes), when the secure response carries one."""
        if not isinstance(wrapped, dict):
            return None
        auth = wrapped.get("auth", {})
        if "server_metadata" not in auth:
            return None
        try:
            return Metadata.from_wire(auth["server_metadata"]).name
        except GdpError:
            return None

    def _reader(self, capsule: GdpName) -> VerifyingReader:
        if capsule not in self.readers:
            self.readers[capsule] = VerifyingReader(capsule)
        return self.readers[capsule]

    # -- metadata bootstrap ------------------------------------------------

    def fetch_metadata(self, capsule: GdpName) -> Generator:
        """Fetch + verify capsule metadata (the reader's trust anchor);
        returns the verified :class:`Metadata`."""
        reader = self._reader(capsule)
        if reader._capsule is not None:
            return reader.capsule.metadata
        corr_id, wrapped = yield from self.failover_request(
            capsule, {"op": "metadata", "capsule": capsule.raw}
        )
        body = self._unwrap(wrapped, corr_id=corr_id, capsule=capsule)
        metadata = Metadata.from_wire(body["metadata"])
        reader.accept_metadata(metadata)
        return metadata

    # -- reads --------------------------------------------------------------

    def read(
        self, capsule: GdpName, seqno: int, *, timeout: float | None = 30.0
    ) -> Generator:
        """Read one record with proof verification; returns a
        :class:`ReadResult` (``.record`` is the verified record)."""
        start = self.sim.now
        yield from self.fetch_metadata(capsule)
        reader = self._reader(capsule)
        corr_id, wrapped = yield from self.failover_request(
            capsule,
            {"op": "read", "capsule": capsule.raw, "seqno": seqno},
            timeout=timeout,
        )
        body = self._unwrap(wrapped, corr_id=corr_id, capsule=capsule)
        record = Record.from_wire(capsule, body["record"])
        proof = PositionProof.from_wire(body["proof"])
        if self.verify:
            record = reader.accept_record(record, proof)
        return ReadResult(
            [record],
            proof=proof,
            server=self._server_of(wrapped),
            rtt=self.sim.now - start,
        )

    def read_range(
        self,
        capsule: GdpName,
        first: int,
        last: int,
        *,
        timeout: float | None = 120.0,
    ) -> Generator:
        """Read a verified contiguous range; returns a
        :class:`ReadResult` whose ``.records`` covers the range."""
        start = self.sim.now
        yield from self.fetch_metadata(capsule)
        reader = self._reader(capsule)
        corr_id, wrapped = yield from self.failover_request(
            capsule,
            {
                "op": "read_range",
                "capsule": capsule.raw,
                "first": first,
                "last": last,
            },
            timeout=timeout,
        )
        body = self._unwrap(wrapped, corr_id=corr_id, capsule=capsule)
        records = [Record.from_wire(capsule, w) for w in body["records"]]
        proof = RangeProof.from_wire(body["proof"])
        if self.verify:
            records = reader.accept_range(records, proof)
        return ReadResult(
            records,
            proof=proof,
            server=self._server_of(wrapped),
            rtt=self.sim.now - start,
        )

    def read_latest(
        self, capsule: GdpName, *, timeout: float | None = 30.0
    ) -> Generator:
        """Read the newest record; returns a :class:`ReadResult` (or
        None for an empty capsule)."""
        start = self.sim.now
        yield from self.fetch_metadata(capsule)
        reader = self._reader(capsule)
        corr_id, wrapped = yield from self.failover_request(
            capsule, {"op": "latest", "capsule": capsule.raw}, timeout=timeout
        )
        body = self._unwrap(wrapped, corr_id=corr_id, capsule=capsule)
        if body.get("empty"):
            return None
        record = Record.from_wire(capsule, body["record"])
        proof = PositionProof.from_wire(body["proof"])
        if self.verify:
            reader.check_freshness(proof.heartbeat)
            record = reader.accept_record(record, proof)
        return ReadResult(
            [record],
            proof=proof,
            server=self._server_of(wrapped),
            rtt=self.sim.now - start,
        )

    def read_latest_strict(
        self,
        capsule: GdpName,
        servers: "list[GdpName]",
        *,
        timeout: float | None = 15.0,
    ) -> Generator:
        """Strict-consistency read (§VI-C): query *every* replica by
        server name, adopt the newest verified state.

        "A reader interested in the most up-to-date state of a
        DataCapsule can query all replicas ... and achieve read
        semantics similar to that of strict consistency at the risk of
        losing fault tolerance; such a reader must block if any single
        replica is unavailable."  Accordingly this raises (rather than
        degrading) if any listed replica does not answer within the
        per-replica *timeout*.  Returns a :class:`ReadResult` (the
        ``server`` field names the replica whose answer won) or None
        when every replica reports an empty capsule.
        """
        if not servers:
            raise CapsuleError("strict read needs the replica list")
        start = self.sim.now
        yield from self.fetch_metadata(capsule)
        reader = self._reader(capsule)
        pending = []
        for server in servers:
            corr_id, future = self.request(
                server,
                {"op": "latest", "capsule": capsule.raw},
                timeout=timeout,
            )
            pending.append((server, corr_id, future))
        best: Record | None = None
        best_proof: PositionProof | None = None
        best_server: GdpName | None = None
        for server, corr_id, future in pending:
            # Any failure here (timeout, no-route, refusal) propagates:
            # strict mode must not silently drop a replica's answer.
            wrapped = yield future
            body = self._unwrap(wrapped, corr_id=corr_id, capsule=capsule)
            if body.get("empty"):
                continue
            record = Record.from_wire(capsule, body["record"])
            proof = PositionProof.from_wire(body["proof"])
            if self.verify:
                proof.verify_record(record, reader.capsule.writer_key)
            if best is None or record.seqno > best.seqno:
                best, best_proof = record, proof
                best_server = self._server_of(wrapped) or server
        if best is None:
            return None
        if self.verify and best_proof is not None:
            reader.accept_record(best, best_proof)
        return ReadResult(
            [best],
            proof=best_proof,
            server=best_server,
            rtt=self.sim.now - start,
        )

    # -- writes ---------------------------------------------------------------

    def open_writer(
        self,
        metadata: Metadata,
        writer_key: SigningKey,
        *,
        acks: str = "any",
        state_path: str | None = None,
    ) -> "ClientWriter":
        """Open the (strict or quasi, per metadata) single-writer handle
        for a capsule this client holds the writer key of."""
        capsule = DataCapsule(metadata)
        if metadata.properties.get("writer_mode") == MODE_QSW:
            writer: CapsuleWriter = QuasiWriter(
                capsule, writer_key, state_path=state_path,
                clock=lambda: int(self.sim.now * 1000),
            )
        else:
            writer = CapsuleWriter(
                capsule, writer_key, state_path=state_path,
                clock=lambda: int(self.sim.now * 1000),
            )
        return ClientWriter(self, writer, acks=acks)

    # -- subscriptions ----------------------------------------------------------

    def subscribe(
        self,
        capsule: GdpName,
        callback: Callable[[Record, Heartbeat], None],
        *,
        subgrant: "object | None" = None,
        timeout: float | None = 30.0,
    ) -> Generator:
        """Register for future records; *callback* fires for each
        verified pushed record.  Returns the first future seqno.

        *subgrant* is the owner-issued subscription credential required
        by capsules with ``restricted_subscribe`` metadata (§VII fn. 9).
        """
        yield from self.fetch_metadata(capsule)
        sub = Subscription(capsule, callback, subgrant=subgrant)
        self._subscriptions[capsule] = sub
        return (yield from self._resubscribe(capsule, sub, timeout=timeout))

    def _resubscribe(
        self,
        capsule: GdpName,
        sub: Subscription,
        *,
        timeout: float | None = 30.0,
    ) -> Generator:
        """(Re-)run the subscribe handshake — anycast picks a live
        replica — and backfill any records appended between what the old
        replica delivered and where the new one's push stream starts
        (duplicate suppression makes overlap harmless; gaps the fleet
        lost entirely are skipped).  Returns the new ``from_seqno``."""
        payload: dict = {"op": "subscribe", "capsule": capsule.raw}
        if sub.subgrant is not None:
            payload["subgrant"] = sub.subgrant.to_wire()
        corr_id, wrapped = yield from self.failover_request(
            capsule, payload, timeout=timeout
        )
        body = self._unwrap(wrapped, corr_id=corr_id, capsule=capsule)
        from_seqno = body["from_seqno"]
        sub.server = self._server_of(wrapped)
        if sub.last_delivered is None:
            # Initial subscribe: only *future* records are promised.
            sub.last_delivered = from_seqno - 1
            return from_seqno
        sub.resubscribes += 1
        for seqno in range(sub.last_delivered + 1, from_seqno):
            try:
                result = yield from self.read(capsule, seqno)
            except GdpError:
                continue  # a hole the fleet lost: tolerated, not fatal
            record = result.record
            if sub.deliver(record.seqno):
                sub.callback(record, result.proof.heartbeat)
        return from_seqno

    def resync_subscriptions(self) -> Generator:
        """Re-subscribe every active subscription (after a heal, or any
        time the serving replicas are suspect); returns how many were
        resynced.  Unreachable capsules are left registered — the
        subscription monitor keeps retrying them."""
        resynced = 0
        for capsule, sub in list(self._subscriptions.items()):
            try:
                yield from self._resubscribe(capsule, sub)
                resynced += 1
            except GdpError:
                continue
        return resynced

    def on_push(self, pdu: Pdu) -> None:
        """Handle a verified server push (duplicate-suppressed)."""
        try:
            capsule_name = GdpName(pdu.payload["capsule"])
        except (KeyError, TypeError, GdpError):
            return
        sub = self._subscriptions.get(capsule_name)
        if sub is None:
            return
        reader = self._reader(capsule_name)
        try:
            record = Record.from_wire(capsule_name, pdu.payload["record"])
            heartbeat = Heartbeat.from_wire(pdu.payload["heartbeat"])
            if self.verify:
                # The server attaches a position proof when the
                # heartbeat does not directly sign the pushed record
                # (batched appends sign only the batch tip); without
                # one, the push is its own one-hop proof.
                reader.accept_pushed(
                    record, heartbeat, pdu.payload.get("proof")
                )
            sub.server = pdu.src
            # Re-subscribing to a second replica overlaps its push
            # stream with the first's: suppress anything already
            # delivered so the application sees each record once.
            if sub.deliver(record.seqno):
                sub.callback(record, heartbeat)
        except GdpError:
            # Forged or corrupt push from the network: drop, never
            # surface unverified data to the application.
            return

    # -- HMAC session fast path ---------------------------------------------

    def establish_session(self, server: GdpName) -> Generator:
        """One-time authenticated handshake with a *specific server*
        (sessions are per-server; capsule-name anycast keeps using
        signatures since any replica may answer)."""
        handshake = Handshake(self.key)
        corr_id, future = self.request(
            server,
            {
                "op": "session",
                "client_key": self.key.public.to_bytes(),
                "offer": handshake.offer(),
            },
        )
        wrapped = yield future
        body = self._unwrap(wrapped, corr_id=corr_id)
        server_offer = body["offer"]
        server_identity_wire = wrapped["auth"]["server_metadata"]
        server_metadata = Metadata.from_wire(server_identity_wire)
        session = handshake.finish(
            server_offer, server_metadata.self_key, initiator=True
        )
        self._sessions[server] = session
        return session

    def session_request(
        self, server: GdpName, payload: dict, *, timeout: float | None = 30.0
    ) -> Generator:
        """An op against a specific server over the established HMAC
        session; returns the verified body."""
        if server not in self._sessions:
            raise IntegrityError(f"no session with {server.human()}")
        corr_id, future = self.request(server, payload, timeout=timeout)
        wrapped = yield future
        return self._unwrap(
            wrapped, corr_id=corr_id, session_with=server
        )


class ClientWriter:
    """The writer-side handle: local serialization + networked appends."""

    def __init__(self, client: GdpClient, writer: CapsuleWriter, *, acks: str):
        self.client = client
        self.writer = writer
        self.acks = acks
        self.capsule_name = writer.capsule.name

    @property
    def last_seqno(self) -> int:
        """The last locally minted sequence number."""
        return self.writer.last_seqno

    def _unwrap_append(self, wrapped: Any, corr_id: int) -> dict:
        try:
            return self.client._unwrap(
                wrapped, corr_id=corr_id, capsule=self.capsule_name
            )
        except CapsuleError as exc:
            if "durability" in str(exc):
                raise DurabilityError(str(exc)) from exc
            raise

    def append(
        self,
        payload: bytes,
        *,
        acks: str | None = None,
        timeout: float | None = 60.0,
    ) -> Generator:
        """Append one record; returns an :class:`AppendReceipt` (its
        ``.record``/``.acks``/``.server``/``.rtt`` fields; the old
        ``(record, acks)`` tuple shape still unpacks through the
        deprecation shim).  Raises :class:`DurabilityError` if the
        requested durability could not be met (the paper's "writer must
        block and retry")."""
        start = self.client.sim.now
        record, heartbeat = self.writer.append(payload)
        corr_id, future = self.client.request(
            self.capsule_name,
            {
                "op": "append",
                "capsule": self.capsule_name.raw,
                "record": record.to_wire(),
                "heartbeat": heartbeat.to_wire(),
                "acks": acks or self.acks,
            },
            timeout=timeout,
        )
        wrapped = yield future
        body = self._unwrap_append(wrapped, corr_id)
        return AppendReceipt(
            [record],
            acks=body.get("acks", 1),
            server=self.client._server_of(wrapped),
            rtt=self.client.sim.now - start,
            batches=1,
            legacy_shape="pair",
        )

    def append_stream(
        self,
        payloads: "list[bytes]",
        *,
        acks: str | None = None,
        window: int = 8,
        batch_records: int = 32,
        batch_bytes: int = 64 * 1024,
        timeout: float | None = 120.0,
    ) -> Generator:
        """Batched, pipelined appends: records are minted locally in
        batches of up to *batch_records* records / *batch_bytes* payload
        bytes, each batch travels as one multi-record ``append_batch``
        PDU signed by a single tip heartbeat, and up to *window* batch
        PDUs stay in flight with out-of-order acknowledgment tracking —
        the event-driven style of the paper's C library, which keeps a
        fat link full instead of paying one RTT (and one signature) per
        record.

        Returns an :class:`AppendReceipt` covering every record
        (``.acks`` is the minimum acknowledgment count over the
        batches; the old bare-list shape still iterates through the
        deprecation shim).  Raises on the first failed batch (later
        batches may still be in flight; anti-entropy reconciles
        whatever landed)."""
        if window < 1:
            raise CapsuleError("window must be >= 1")
        if batch_records < 1:
            raise CapsuleError("batch_records must be >= 1")
        start = self.client.sim.now
        if not payloads:
            return AppendReceipt(
                [], acks=0, batches=0, legacy_shape="list"
            )
        chunks: list[list[bytes]] = []
        current: list[bytes] = []
        current_bytes = 0
        for payload in payloads:
            current.append(payload)
            current_bytes += len(payload)
            if len(current) >= batch_records or current_bytes >= batch_bytes:
                chunks.append(current)
                current, current_bytes = [], 0
        if current:
            chunks.append(current)
        # The writer is still the single serialization point: every
        # record is minted (and locally inserted) before dispatch.
        minted = [self.writer.append_batch(chunk) for chunk in chunks]
        all_records: list[Record] = []
        for records, _ in minted:
            all_records.extend(records)

        completed: deque = deque()
        state: dict = {"waiter": None}

        def _on_done(fut, corr_id):
            completed.append((corr_id, fut))
            waiter = state["waiter"]
            if waiter is not None and not waiter.done:
                state["waiter"] = None
                waiter.resolve(None)

        index = 0
        inflight = 0
        min_acks: int | None = None
        last_server: GdpName | None = None
        while index < len(minted) or inflight:
            while index < len(minted) and inflight < window:
                records, heartbeat = minted[index]
                corr_id, future = self.client.request(
                    self.capsule_name,
                    {
                        "op": "append_batch",
                        "capsule": self.capsule_name.raw,
                        "records": [r.to_wire() for r in records],
                        "heartbeat": heartbeat.to_wire(),
                        "acks": acks or self.acks,
                    },
                    timeout=timeout,
                )
                future.add_callback(
                    lambda fut, corr_id=corr_id: _on_done(fut, corr_id)
                )
                inflight += 1
                index += 1
            if not completed:
                waiter = self.client.sim.future()
                state["waiter"] = waiter
                yield waiter
                continue
            corr_id, fut = completed.popleft()
            inflight -= 1
            wrapped = fut.result()  # re-raises timeout / transport errors
            body = self._unwrap_append(wrapped, corr_id)
            batch_acks = body.get("acks", 1)
            min_acks = (
                batch_acks if min_acks is None else min(min_acks, batch_acks)
            )
            server = self.client._server_of(wrapped)
            if server is not None:
                last_server = server
        return AppendReceipt(
            all_records,
            acks=min_acks if min_acks is not None else 0,
            server=last_server,
            rtt=self.client.sim.now - start,
            batches=len(minted),
            legacy_shape="list",
        )
