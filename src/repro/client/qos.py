"""QoS accountability: measuring the utility provider (§II, §IV-C).

"An application developer should be able to form economic relations
with a service provider and hold them accountable if the desired
Quality of Service (QoS) is not provided" — and under the threat model,
"if a client does not receive the expected level of service ... it can
find a different service provider without compromising the security of
data."

The enabler is already in the protocol: every secure response carries
the responding server's self-certifying metadata, so a client can
*attribute* each answer (and each latency) to a specific provider even
though requests are addressed to capsule names and anycast picks the
replica.  :class:`QosTracker` aggregates those attributions into a
per-provider report; an application whose SLA is violated acts on it by
re-placing the capsule (see ``OwnerConsole.migrate_replica``).
"""

from __future__ import annotations

import statistics

from repro.naming.names import GdpName

__all__ = ["QosTracker", "ProviderStats"]


class ProviderStats:
    """Observed service quality for one provider."""

    __slots__ = ("server", "latencies", "ok_count", "error_count")

    def __init__(self, server: GdpName):
        self.server = server
        self.latencies: list[float] = []
        self.ok_count = 0
        self.error_count = 0

    @property
    def requests(self) -> int:
        """Total attributed responses."""
        return self.ok_count + self.error_count

    @property
    def mean_latency(self) -> float | None:
        """Mean response latency in seconds (None before any sample)."""
        if not self.latencies:
            return None
        return statistics.mean(self.latencies)

    @property
    def p95_latency(self) -> float | None:
        """95th-percentile response latency in seconds."""
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    @property
    def error_rate(self) -> float:
        """Fraction of attributed responses that were errors."""
        if not self.requests:
            return 0.0
        return self.error_count / self.requests

    def __repr__(self) -> str:
        mean = self.mean_latency
        return (
            f"ProviderStats({self.server.human()}, n={self.requests}, "
            f"mean={mean * 1000:.1f}ms, " if mean is not None else
            f"ProviderStats({self.server.human()}, n={self.requests}, "
        ) + f"errors={self.error_count})"


class QosTracker:
    """Aggregates per-provider response quality for one client.

    Attach with ``client.qos = QosTracker(clock=lambda: net.sim.now)``;
    the client feeds it from the secure-response path (attribution comes
    from the authenticated ``server_metadata`` in each response — an
    on-path adversary cannot shift blame to an honest provider, §III-D).
    """

    def __init__(self, clock=None):
        self._clock = clock or (lambda: 0.0)
        self.providers: dict[GdpName, ProviderStats] = {}
        self._request_started: dict[int, float] = {}
        self.timeouts = 0

    # -- hooks called by GdpClient -----------------------------------------

    def request_sent(self, corr_id: int) -> None:
        """Record the start time of a request."""
        self._request_started[corr_id] = self._clock()

    def response_attributed(
        self, corr_id: int, server: GdpName, ok: bool
    ) -> None:
        """Record an authenticated response from *server*."""
        stats = self.providers.setdefault(server, ProviderStats(server))
        started = self._request_started.pop(corr_id, None)
        if started is not None:
            stats.latencies.append(self._clock() - started)
        if ok:
            stats.ok_count += 1
        else:
            stats.error_count += 1

    def request_timed_out(self, corr_id: int) -> None:
        """Record an unanswered request (no attribution possible)."""
        self._request_started.pop(corr_id, None)
        self.timeouts += 1

    # -- reporting -------------------------------------------------------------

    def report(self) -> dict[GdpName, ProviderStats]:
        """Per-provider statistics collected so far."""
        return dict(self.providers)

    def violators(
        self,
        *,
        max_mean_latency: float | None = None,
        max_error_rate: float | None = None,
        min_requests: int = 1,
    ) -> list[ProviderStats]:
        """Providers breaching the given SLA thresholds — the input to a
        re-placement decision."""
        out = []
        for stats in self.providers.values():
            if stats.requests < min_requests:
                continue
            breached = False
            if (
                max_mean_latency is not None
                and stats.mean_latency is not None
                and stats.mean_latency > max_mean_latency
            ):
                breached = True
            if (
                max_error_rate is not None
                and stats.error_rate > max_error_rate
            ):
                breached = True
            if breached:
                out.append(stats)
        return sorted(out, key=lambda s: s.server.raw)
