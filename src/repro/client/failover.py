"""Client-side replica failover: riding out dead replicas (§VI, §VIII).

The GDP's RPC is connectionless — a request goes to a *name*, anycast
picks a replica — so failover is a client-library concern, not a
connection concern: when a cached route goes dead the client tells its
router (``T_ROUTE_INVALIDATE``), lets the name re-resolve through the
hierarchy, and retries against whichever replica anycast picks next,
under exponential backoff.

Two pieces live here:

- :class:`FailoverPolicy` — the retry/backoff envelope used by
  :meth:`GdpClient.failover_request`;
- :class:`Subscription` — per-capsule subscription state (last delivered
  seqno, duplicate suppression) plus :class:`SubscriptionMonitor`, the
  background process that notices a silently dead serving replica (tip
  advancing elsewhere, pushes stalled) and transparently re-subscribes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator

from repro.errors import GdpError
from repro.naming.names import GdpName

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.client.client import GdpClient

__all__ = ["FailoverPolicy", "Subscription", "SubscriptionMonitor"]


@dataclass(frozen=True)
class FailoverPolicy:
    """Retry envelope for anycast ops that hit routing failures.

    ``attempts`` counts total tries (1 = no failover); pauses between
    tries follow the repo-standard exponential backoff
    ``backoff_base * 2**attempt`` capped at ``backoff_max`` — long
    enough for the router's negative cache to lapse and a withdrawal or
    lease expiry to take effect before the retry re-resolves.
    """

    attempts: int = 3
    backoff_base: float = 0.5
    backoff_max: float = 4.0

    def delay(self, attempt: int) -> float:
        """Pause before retry number *attempt* (0-based)."""
        return min(self.backoff_base * (2 ** attempt), self.backoff_max)


class Subscription:
    """Live subscription state for one capsule.

    ``last_delivered`` is the highest seqno handed to the application
    callback; pushes at or below it are suppressed as duplicates, which
    is what makes re-subscribing to a second replica (whose push stream
    overlaps the first's) transparent.  ``None`` means the initial
    subscribe handshake has not resolved yet.
    """

    __slots__ = (
        "capsule",
        "callback",
        "subgrant",
        "last_delivered",
        "server",
        "delivered",
        "duplicates",
        "resubscribes",
        "_probe_delivered",
    )

    def __init__(
        self,
        capsule: GdpName,
        callback: Callable,
        *,
        subgrant: "object | None" = None,
    ):
        self.capsule = capsule
        self.callback = callback
        self.subgrant = subgrant
        self.last_delivered: int | None = None
        #: the replica whose pushes we are currently receiving
        self.server: GdpName | None = None
        self.delivered = 0
        self.duplicates = 0
        self.resubscribes = 0
        self._probe_delivered = -1

    def deliver(self, seqno: int) -> bool:
        """Record a delivery attempt; returns False for a duplicate."""
        if self.last_delivered is not None and seqno <= self.last_delivered:
            self.duplicates += 1
            return False
        self.last_delivered = max(self.last_delivered or 0, seqno)
        self.delivered += 1
        return True


class SubscriptionMonitor:
    """Background liveness check for a client's subscriptions.

    Each tick reads the tip of every subscribed capsule (an anycast
    read, so it survives the serving replica's death and exercises the
    failover path).  A subscription is *stalled* when the tip is ahead
    of what was delivered and nothing has been delivered since the
    previous tick — i.e. siblings are appending but our replica's
    pushes stopped.  Stalled subscriptions are re-subscribed (anycast
    lands on a live replica) and the push gap is backfilled with reads.

    Same cadence scheme as the other daemons: seeded jitter around a
    nominal ``interval`` so a fleet of clients stays desynchronized and
    replays stay byte-identical.
    """

    def __init__(
        self,
        client: "GdpClient",
        interval: float = 5.0,
        *,
        jitter: float = 0.25,
        rng: random.Random | None = None,
    ):
        self.client = client
        self.interval = interval
        self.jitter = jitter
        self.rng = rng or random.Random(f"submonitor:{client.node_id}")
        self.resubscribes = 0
        self._running = False

    def start(self) -> None:
        """Start the background process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.client.sim.spawn(
            self._loop(), name=f"submonitor:{self.client.node_id}"
        )

    def stop(self) -> None:
        """Stop after the current tick."""
        self._running = False

    def _next_delay(self) -> float:
        if self.jitter <= 0:
            return self.interval
        spread = self.jitter * (self.rng.random() - 0.5)
        return self.interval * (1.0 + spread)

    def _loop(self) -> Generator:
        while self._running:
            yield self._next_delay()
            if not self._running:
                return
            for capsule, sub in list(self.client._subscriptions.items()):
                if sub.last_delivered is None:
                    continue  # initial handshake still in flight
                try:
                    result = yield from self.client.read_latest(
                        capsule, timeout=max(self.interval, 1.0)
                    )
                except GdpError:
                    continue  # capsule unreachable this tick: try later
                stalled = (
                    result is not None
                    and result.record.seqno > sub.last_delivered
                    and sub.last_delivered == sub._probe_delivered
                )
                sub._probe_delivered = sub.last_delivered
                if not stalled:
                    continue
                try:
                    yield from self.client._resubscribe(capsule, sub)
                    self.resubscribes += 1
                except GdpError:
                    continue  # still unreachable: next tick retries
