"""GDP client library: verified capsule operations and owner tools."""

from repro.client.client import ClientWriter, GdpClient
from repro.client.owner import CapsulePlacement, OwnerConsole
from repro.client.qos import ProviderStats, QosTracker
from repro.client.results import AppendReceipt, ReadResult

__all__ = [
    "GdpClient",
    "ClientWriter",
    "ReadResult",
    "AppendReceipt",
    "OwnerConsole",
    "CapsulePlacement",
    "QosTracker",
    "ProviderStats",
]
