"""GDP client library: verified capsule operations and owner tools."""

from repro.client.client import ClientWriter, GdpClient
from repro.client.owner import CapsulePlacement, OwnerConsole
from repro.client.qos import ProviderStats, QosTracker

__all__ = [
    "GdpClient",
    "ClientWriter",
    "OwnerConsole",
    "CapsulePlacement",
    "QosTracker",
    "ProviderStats",
]
