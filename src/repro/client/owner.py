"""Owner-side operations: capsule creation, delegation, placement (§V).

"The creation of a DataCapsule involves two operations by the
DataCapsule-owner: (a) placing the signed metadata on appropriate
DataCapsule-servers, and (b) creating a cryptographic delegation to
specific servers."

:class:`OwnerConsole` wraps an owner's signing key and performs both,
including redundant delegation to several servers/organizations at once
("the architecture allows a single DataCapsule to be delegated to
multiple service providers at the same time", §IV-B) and scope policies
restricting which routing domains may see the capsule.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.crypto.keys import SigningKey, VerifyingKey
from repro.delegation.certs import AdCert, OrgMembership
from repro.delegation.chain import ServiceChain
from repro.errors import CapsuleError
from repro.naming.metadata import (
    MODE_SSW,
    Metadata,
    make_capsule_metadata,
)
from repro.naming.names import GdpName
from repro.client.client import GdpClient

__all__ = ["OwnerConsole", "CapsulePlacement"]


class CapsulePlacement:
    """The result of a placement: metadata + per-server chains."""

    __slots__ = ("metadata", "chains", "servers")

    def __init__(
        self,
        metadata: Metadata,
        chains: dict[GdpName, ServiceChain],
    ):
        self.metadata = metadata
        self.chains = dict(chains)
        self.servers = sorted(chains, key=lambda n: n.raw)

    @property
    def name(self) -> GdpName:
        """The flat GDP name of this object."""
        return self.metadata.name


class OwnerConsole:
    """An owner identity operating through a :class:`GdpClient`."""

    def __init__(self, client: GdpClient, owner_key: SigningKey):
        self.client = client
        self.owner_key = owner_key

    def design_capsule(
        self,
        writer_key: VerifyingKey,
        *,
        pointer_strategy: str = "chain",
        writer_mode: str = MODE_SSW,
        label: str | None = None,
        extra: dict | None = None,
    ) -> Metadata:
        """Create (sign) capsule metadata; purely local."""
        props = dict(extra or {})
        if label is not None:
            props["label"] = label
        return make_capsule_metadata(
            self.owner_key,
            writer_key,
            pointer_strategy=pointer_strategy,
            writer_mode=writer_mode,
            extra=props,
        )

    def delegate(
        self,
        metadata: Metadata,
        server_metadata: Metadata,
        *,
        scopes: Sequence[str] = (),
        expires_at: float | None = None,
        org_metadata: Metadata | None = None,
        membership: OrgMembership | None = None,
    ) -> ServiceChain:
        """Issue an AdCert and assemble the service chain for one
        server, directly or through a storage organization."""
        delegate_name = (
            org_metadata.name if org_metadata is not None
            else server_metadata.name
        )
        adcert = AdCert.issue(
            self.owner_key,
            metadata.name,
            delegate_name,
            scopes=scopes,
            expires_at=expires_at,
        )
        chain = ServiceChain(
            metadata, adcert, server_metadata, org_metadata, membership
        )
        chain.verify(now=self.client.sim.now)
        return chain

    def migrate_replica(
        self,
        placement: CapsulePlacement,
        from_server: Metadata,
        to_server: Metadata,
        *,
        scopes: Sequence[str] = (),
        expires_at: float | None = None,
    ) -> Generator:
        """Move one replica: host on *to_server*, warm it from an
        existing replica, then retire *from_server* (§VI: placement
        decisions belong to the owner).  Returns the updated
        :class:`CapsulePlacement`."""
        from repro import encoding as _encoding

        metadata = placement.metadata
        if from_server.name not in placement.chains:
            raise CapsuleError("from_server does not hold this capsule")
        # 1. Delegate + host the new replica, siblings = survivors.
        new_chain = self.delegate(
            metadata, to_server, scopes=scopes, expires_at=expires_at
        )
        survivors = [
            name for name in placement.servers if name != from_server.name
        ]
        corr_id, future = self.client.request(
            to_server.name,
            {
                "op": "host",
                "capsule": metadata.name.raw,
                "metadata": metadata.to_wire(),
                "chain": new_chain.to_wire(),
                "siblings": [n.raw for n in survivors],
            },
        )
        wrapped = yield future
        self.client._unwrap(wrapped, corr_id=corr_id)
        # 2. Warm the new replica from the retiring one.
        corr_id, future = self.client.request(
            to_server.name,
            {
                "op": "sync_now",
                "capsule": metadata.name.raw,
                "from": from_server.name.raw,
            },
            timeout=60.0,
        )
        wrapped = yield future
        self.client._unwrap(wrapped, corr_id=corr_id)
        yield 0.5  # let the new replica's re-advertisement land
        # 3. Retire the old replica (owner-signed authorization).
        preimage = b"gdp.unhost" + _encoding.encode(
            [metadata.name.raw, from_server.name.raw]
        )
        corr_id, future = self.client.request(
            from_server.name,
            {
                "op": "unhost",
                "capsule": metadata.name.raw,
                "auth": self.owner_key.sign(preimage),
            },
        )
        wrapped = yield future
        self.client._unwrap(wrapped, corr_id=corr_id)
        chains = {
            name: chain
            for name, chain in placement.chains.items()
            if name != from_server.name
        }
        chains[to_server.name] = new_chain
        return CapsulePlacement(metadata, chains)

    def place_capsule(
        self,
        metadata: Metadata,
        server_metadatas: Sequence[Metadata],
        *,
        scopes: Sequence[str] = (),
        expires_at: float | None = None,
    ) -> Generator:
        """Delegate to every server and send each the ``host`` op; the
        servers become mutual replication siblings.  Returns a
        :class:`CapsulePlacement`."""
        if not server_metadatas:
            raise CapsuleError("placement needs at least one server")
        chains: dict[GdpName, ServiceChain] = {}
        for server_metadata in server_metadatas:
            chains[server_metadata.name] = self.delegate(
                metadata,
                server_metadata,
                scopes=scopes,
                expires_at=expires_at,
            )
        all_names = sorted(chains, key=lambda n: n.raw)
        for server_name in all_names:
            siblings = [n.raw for n in all_names if n != server_name]
            corr_id, future = self.client.request(
                server_name,
                {
                    "op": "host",
                    "capsule": metadata.name.raw,
                    "metadata": metadata.to_wire(),
                    "chain": chains[server_name].to_wire(),
                    "siblings": siblings,
                },
            )
            wrapped = yield future
            self.client._unwrap(wrapped, corr_id=corr_id)
        return CapsulePlacement(metadata, chains)
