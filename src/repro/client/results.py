"""Uniform client result envelopes: :class:`ReadResult` and
:class:`AppendReceipt`.

Three PRs of organic growth left ``GdpClient`` with one return shape per
method: ``read`` returned a bare :class:`Record`, ``read_range`` a list,
``append`` a ``(record, acks)`` tuple, ``append_stream`` a record list.
Every call now returns one of the two envelopes here, each carrying the
same cross-cutting context — the verified proof, which server answered,
and the observed round-trip latency — so batched and single-shot paths
present identical semantics to callers.

The old shapes keep working through deprecation shims (attribute and
tuple/list protocols that emit :class:`DeprecationWarning`); they are
scheduled for removal in the next PR (see ``docs/CLIENT_API.md``).
"""

from __future__ import annotations

import warnings
from typing import Any, Iterator

__all__ = ["ReadResult", "AppendReceipt"]


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (removal scheduled for the "
        "next release)",
        DeprecationWarning,
        stacklevel=3,
    )


class ReadResult:
    """What a verified read produced.

    Attributes:
        records: every verified record returned (one for point reads).
        proof: the position/range proof the records verified against
            (``None`` when the client runs with ``verify=False``).
        server: the :class:`~repro.naming.names.GdpName` of the replica
            that answered (``None`` for unsigned/HMAC-less responses).
        rtt: observed request round-trip time in simulated seconds.
    """

    __slots__ = ("records", "proof", "server", "rtt")

    def __init__(self, records, *, proof=None, server=None, rtt=0.0):
        self.records = list(records)
        self.proof = proof
        self.server = server
        self.rtt = rtt

    @property
    def record(self):
        """The (single or last) record — the point-read result."""
        if not self.records:
            return None
        return self.records[-1]

    # -- deprecation shims: the pre-envelope shapes ---------------------

    def __getattr__(self, name: str) -> Any:
        # Old callers treated the result as the Record itself
        # (``result.payload``, ``result.seqno``, ``result.digest``...).
        if name.startswith("_") or not self.records:
            raise AttributeError(name)
        record = self.records[-1]
        if not hasattr(record, name):
            raise AttributeError(name)
        _warn(f"ReadResult.{name}", f"ReadResult.record.{name}")
        return getattr(record, name)

    def __len__(self) -> int:
        _warn("len(ReadResult)", "len(ReadResult.records)")
        return len(self.records)

    def __iter__(self) -> Iterator:
        _warn("iterating a ReadResult", "ReadResult.records")
        return iter(self.records)

    def __getitem__(self, index):
        _warn("indexing a ReadResult", "ReadResult.records[i]")
        return self.records[index]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ReadResult):
            return self.records == other.records
        if isinstance(other, list):
            _warn("comparing a ReadResult to a list", "ReadResult.records")
            return self.records == other
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"ReadResult(records={len(self.records)}, "
            f"server={self.server.human() if self.server else None}, "
            f"rtt={self.rtt:.4f})"
        )


class AppendReceipt:
    """What an acknowledged append (or append stream) produced.

    Attributes:
        records: every record covered by this receipt, in seqno order.
        acks: replica acknowledgments collected — for a multi-batch
            stream, the *minimum* across batches (the weakest durability
            any record in the stream actually got).
        server: the replica that acknowledged (the last one, for
            streams).
        rtt: simulated seconds from first send to last acknowledgment.
        batches: how many multi-record PDUs carried the stream (1 for a
            single append).
    """

    __slots__ = ("records", "acks", "server", "rtt", "batches", "_legacy")

    def __init__(
        self,
        records,
        *,
        acks=1,
        server=None,
        rtt=0.0,
        batches=1,
        legacy_shape="pair",
    ):
        self.records = list(records)
        self.acks = acks
        self.server = server
        self.rtt = rtt
        self.batches = batches
        self._legacy = legacy_shape  # "pair" (append) | "list" (stream)

    @property
    def record(self):
        """The (single or last) appended record."""
        if not self.records:
            return None
        return self.records[-1]

    @property
    def seqno(self) -> int:
        """The highest sequence number this receipt covers (0 if none)."""
        if not self.records:
            return 0
        return self.records[-1].seqno

    # -- deprecation shims: the pre-envelope shapes ---------------------
    # append() used to return ``(record, acks)``; append_stream() used to
    # return ``list[Record]``.  Both unpack styles keep working.

    def _legacy_items(self) -> list:
        if self._legacy == "pair":
            return [self.record, self.acks]
        return self.records

    def __iter__(self) -> Iterator:
        if self._legacy == "pair":
            _warn(
                "unpacking AppendReceipt as (record, acks)",
                "AppendReceipt.record / .acks",
            )
        else:
            _warn(
                "iterating an AppendReceipt as a record list",
                "AppendReceipt.records",
            )
        return iter(self._legacy_items())

    def __len__(self) -> int:
        _warn("len(AppendReceipt)", "len(AppendReceipt.records)")
        return len(self._legacy_items())

    def __getitem__(self, index):
        _warn("indexing an AppendReceipt", "AppendReceipt.records[i]")
        return self._legacy_items()[index]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, AppendReceipt):
            return (
                self.records == other.records and self.acks == other.acks
            )
        if isinstance(other, (list, tuple)):
            _warn(
                "comparing an AppendReceipt to a sequence",
                "AppendReceipt.records",
            )
            return self._legacy_items() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"AppendReceipt(records={len(self.records)}, "
            f"seqno={self.seqno}, acks={self.acks}, "
            f"batches={self.batches}, rtt={self.rtt:.4f})"
        )
