"""Open-loop load generator: the engine behind ``repro loadgen``.

Drives a real (socket-mode) GDP fleet with an *open-loop* arrival
process: operations are injected on a fixed schedule regardless of how
fast earlier ones complete, so queueing delay shows up in the measured
latency instead of silently throttling the offered load (the
coordinated-omission trap of closed-loop generators).  Latency for op
*k* is ``completion_time - scheduled_start``, where the scheduled start
is ``k / rate`` — not the moment the op actually got to run.

Each level offers a fixed rate for a fixed duration against a capsule
replicated across two fleet processes, alternating appends and verified
reads, and reports p50/p99/p999 per op kind plus sustained PDU/s from
the client transport counters.  The machine-readable document
(``BENCH_transport.json``) feeds the CI perf gate: generous absolute
bounds plus a >30% regression comparison against the checked-in
baseline (see ``check_regression``).
"""

from __future__ import annotations

import json
import time

__all__ = [
    "run_loadgen",
    "check_regression",
    "format_table",
    "load_baseline",
    "GATED_FLOORS",
    "GATED_CEILINGS",
]

#: throughput keys that must beat an absolute floor (values chosen far
#: below any healthy run — they catch collapse, not hardware variance)
GATED_FLOORS = {"pdus_per_sec": 100.0}

#: latency keys that must stay under an absolute ceiling (ms)
GATED_CEILINGS = {"append_p99_ms": 500.0, "read_p99_ms": 500.0}

_REGRESSION_TOLERANCE = 0.30

#: absolute slack (ms) added on top of the relative latency tolerance:
#: near saturation a p99 in the tens of milliseconds can double from
#: scheduler jitter alone, which is a 100% relative move on a tiny
#: absolute base.  A regression only fails the gate when it clears both
#: the 30% relative bound *and* this absolute margin.
_LATENCY_SLACK_MS = 75.0

#: default offered rates (ops/second) — three open-loop levels, the top
#: one near the single-client saturation point so queueing is visible
DEFAULT_RATES = (25, 50, 100)


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of *samples* (q in [0, 1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _latency_summary(samples_ms: list[float]) -> dict:
    return {
        "count": len(samples_ms),
        "p50": round(_percentile(samples_ms, 0.50), 3),
        "p99": round(_percentile(samples_ms, 0.99), 3),
        "p999": round(_percentile(samples_ms, 0.999), 3),
        "max": round(max(samples_ms), 3) if samples_ms else 0.0,
    }


def _run_level(ctx, client, writer, capsule_name, *, rate, duration):
    """One open-loop level; returns the level's result dict."""
    total_ops = max(2, int(rate * duration))
    latencies: dict[str, list[float]] = {"append": [], "read": []}
    state = {"completed": 0, "errors": 0}
    done = ctx.future()
    pdus_before = client.transport.sent + client.transport.delivered
    wall_start = time.perf_counter()
    level_start = ctx.now

    def finish_one() -> None:
        state["completed"] += 1
        if state["completed"] == total_ops and not done.done:
            done.resolve(None)

    def op_process(kind: str, scheduled_start: float, seqno: int):
        try:
            if kind == "append":
                yield from writer.append(b"loadgen-%d" % seqno)
            else:
                yield from client.read(capsule_name, seqno)
        except Exception:  # noqa: BLE001 — tallied, not raised mid-level
            state["errors"] += 1
        else:
            latencies[kind].append((ctx.now - scheduled_start) * 1000.0)
        finish_one()

    # Reads cycle over records seeded before the level started.
    for k in range(total_ops):
        scheduled_start = level_start + k / rate
        kind = "read" if k % 2 else "append"
        seqno = (k % 16) + 1 if kind == "read" else k
        ctx.schedule(
            max(0.0, scheduled_start - ctx.now),
            ctx.spawn,
            op_process(kind, scheduled_start, seqno),
            f"op{k}",
        )

    def level_driver():
        yield ctx.timeout(done, duration + 30.0, f"loadgen level {rate}/s")

    ctx.run_process(level_driver(), f"level-{rate}")
    wall_seconds = time.perf_counter() - wall_start
    pdus = client.transport.sent + client.transport.delivered - pdus_before
    return {
        "target_rate": rate,
        "offered_ops": total_ops,
        "completed_ops": state["completed"],
        "errors": state["errors"],
        "duration_s": round(wall_seconds, 3),
        "append_ms": _latency_summary(latencies["append"]),
        "read_ms": _latency_summary(latencies["read"]),
        "pdus_per_sec": round(pdus / wall_seconds, 1) if wall_seconds else 0.0,
        "backpressure": client.transport.backpressure,
    }


def run_loadgen(
    *,
    processes: int = 3,
    rates: tuple = DEFAULT_RATES,
    duration: float = 2.0,
    rendezvous: str | None = None,
    progress=None,
) -> dict:
    """Boot a fleet, drive every load level, and return the
    BENCH_transport.json document (dict)."""
    import tempfile

    from repro.client import GdpClient, OwnerConsole
    from repro.crypto import SigningKey
    from repro.fleet import FleetLauncher, FleetSpec
    from repro.naming.names import GdpName
    from repro.runtime.context import AsyncioContext
    from repro.runtime.socketnet import SocketNetwork

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    workdir = rendezvous or tempfile.mkdtemp(prefix="gdp_loadgen_")
    spec = FleetSpec(processes, workdir)
    launcher = FleetLauncher(spec)
    note(f"booting {processes}-process fleet")
    launcher.start()
    try:
        ports = launcher.wait_ready()
        ctx = AsyncioContext()
        net = SocketNetwork(ctx, seed=7)
        client = GdpClient(net, "loadgen_client")
        channel = ctx.loop.run_until_complete(
            client.transport.dial(spec.host, ports[0])
        )
        client.attach_channel(channel, GdpName(channel.remote_name_raw))

        owner_key = SigningKey.from_seed(b"loadgen-owner")
        writer_key = SigningKey.from_seed(b"loadgen-writer")
        console = OwnerConsole(client, owner_key)
        replicas = [spec.server_metadata(i) for i in range(min(2, processes))]

        def setup():
            yield client.advertise()
            metadata = console.design_capsule(
                writer_key.public, pointer_strategy="chain"
            )
            yield from console.place_capsule(metadata, replicas)
            yield 0.5
            writer = client.open_writer(metadata, writer_key)
            # Seed the records the read side cycles over.
            yield from writer.append_stream(
                [b"seed-%d" % i for i in range(16)]
            )
            return metadata, writer

        metadata, writer = ctx.run_process(setup(), "loadgen-setup")

        levels = []
        for rate in rates:
            note(f"level: {rate} ops/s open-loop for {duration}s")
            levels.append(
                _run_level(
                    ctx,
                    client,
                    writer,
                    metadata.name,
                    rate=rate,
                    duration=duration,
                )
            )
        summaries = launcher.stop()
    finally:
        if launcher.alive():
            launcher.stop()

    top = levels[-1]
    doc = {
        "schema": "gdp-bench-transport/1",
        "fleet": {
            "processes": processes,
            "transport": "asyncio-tcp",
            "replicas": len(replicas),
        },
        "levels": levels,
        "drain_ms": [s.get("drain_ms") for s in summaries],
        "gated": {
            "pdus_per_sec": top["pdus_per_sec"],
            "append_p99_ms": top["append_ms"]["p99"],
            "read_p99_ms": top["read_ms"]["p99"],
        },
    }
    return doc


def check_regression(current: dict, baseline: dict) -> list[str]:
    """Compare a fresh run against the checked-in baseline; returns a
    list of failure strings (empty = gate passes).

    Gated (from the top load level): ``pdus_per_sec`` must beat its
    floor and stay within 30% of the baseline; ``append_p99_ms`` /
    ``read_p99_ms`` must stay under their ceilings and within 30%
    *above* the baseline (plus ``_LATENCY_SLACK_MS`` of absolute slack,
    so jitter on a small base cannot flake the gate).  Per-level
    absolute numbers are informational — they track runner hardware.
    """
    failures = []
    cur = current.get("gated", {})
    base = baseline.get("gated", {})
    for key, floor in GATED_FLOORS.items():
        if key not in cur:
            failures.append(f"gated.{key}: missing from current run")
            continue
        if cur[key] < floor:
            failures.append(
                f"gated.{key}: {cur[key]:.1f} is below the "
                f"{floor:.1f} acceptance floor"
            )
        if key in base and cur[key] < base[key] * (1 - _REGRESSION_TOLERANCE):
            failures.append(
                f"gated.{key}: {cur[key]:.1f} regressed >30% from "
                f"baseline {base[key]:.1f}"
            )
    for key, ceiling in GATED_CEILINGS.items():
        if key not in cur:
            failures.append(f"gated.{key}: missing from current run")
            continue
        if cur[key] > ceiling:
            failures.append(
                f"gated.{key}: {cur[key]:.3f}ms exceeds the "
                f"{ceiling:.0f}ms acceptance ceiling"
            )
        if key in base and base[key] > 0 and (
            cur[key] > base[key] * (1 + _REGRESSION_TOLERANCE)
            and cur[key] > base[key] + _LATENCY_SLACK_MS
        ):
            failures.append(
                f"gated.{key}: {cur[key]:.3f}ms regressed >30% (and "
                f">{_LATENCY_SLACK_MS:.0f}ms) from "
                f"baseline {base[key]:.3f}ms"
            )
    return failures


def format_table(doc: dict) -> str:
    """Human-readable summary of a loadgen document."""
    lines = [
        "rate     append p50/p99/p999 (ms)     read p50/p99/p999 (ms)"
        "     PDU/s    err",
        "-" * 76,
    ]
    for level in doc.get("levels", []):
        a, r = level["append_ms"], level["read_ms"]
        lines.append(
            f"{level['target_rate']:>4}/s "
            f"{a['p50']:>8.2f} {a['p99']:>7.2f} {a['p999']:>8.2f}   "
            f"{r['p50']:>8.2f} {r['p99']:>7.2f} {r['p999']:>8.2f}   "
            f"{level['pdus_per_sec']:>8,.0f} "
            f"{level['errors']:>5}"
        )
    drains = [d for d in doc.get("drain_ms", []) if d is not None]
    if drains:
        lines.append(
            f"fleet drain: {len(drains)} processes, "
            f"max {max(drains):.1f} ms"
        )
    return "\n".join(lines)


def load_baseline(path: str) -> dict:
    """Read a BENCH_transport.json document from *path*."""
    with open(path) as fh:
        return json.load(fh)
