"""Multi-process GDP fleet: shared-nothing servers over real sockets.

``repro serve --fleet N`` boots *N* OS processes, each owning one
asyncio event loop, one :class:`~repro.routing.router.GdpRouter`, and
one :class:`~repro.server.dcserver.DataCapsuleServer` attached to it
in-process.  The processes interconnect pairwise over TCP (every
process dials every lower-indexed one), install static routes to each
other's server names, and learn client reverse paths from traversing
PDUs — so a client attached to any process can reach every replica
without a shared GLookupService (distributed GLookup is a separate
roadmap item).

Identity is deterministic: process *i*'s router/server node ids are
``fleet_r{i}`` / ``fleet_s{i}``, and their keys derive from those ids,
so any client can reconstruct every server's metadata (and therefore
place capsules on them) from the fleet size alone.

Discovery uses a rendezvous directory: each process writes
``{index}.port`` once listening and ``{index}.ready`` once advertised
and interconnected.  SIGINT/SIGTERM triggers a graceful drain (stop
accepting, finish in-flight ops, fsync, close transports) before exit,
recorded in ``{index}.drained``.
"""

from __future__ import annotations

import json
import os
import signal
import time

from repro.crypto.keys import SigningKey
from repro.naming.metadata import (
    Metadata,
    make_router_metadata,
    make_server_metadata,
)
from repro.naming.names import GdpName

__all__ = ["FleetSpec", "serve_process", "FleetLauncher"]

#: how long a booting process waits for a peer's port file
_PEER_WAIT_S = 30.0


class FleetSpec:
    """Everything a fleet process needs to boot, picklable as a dict."""

    def __init__(
        self,
        processes: int,
        rendezvous: str,
        *,
        host: str = "127.0.0.1",
        storage_root: str | None = None,
        storage_engine: str = "file",
        fsync: bool = False,
        seed: int = 0,
    ):
        if processes < 1:
            raise ValueError("a fleet needs at least one process")
        if storage_engine not in ("file", "segmented"):
            raise ValueError(f"unknown storage engine {storage_engine!r}")
        self.processes = processes
        self.rendezvous = rendezvous
        self.host = host
        self.storage_root = storage_root
        self.storage_engine = storage_engine
        self.fsync = fsync
        self.seed = seed

    # -- deterministic identity --------------------------------------------

    @staticmethod
    def router_node_id(index: int) -> str:
        return f"fleet_r{index}"

    @staticmethod
    def server_node_id(index: int) -> str:
        return f"fleet_s{index}"

    @classmethod
    def router_metadata(cls, index: int) -> Metadata:
        node_id = cls.router_node_id(index)
        key = SigningKey.from_seed(b"router:" + node_id.encode())
        return make_router_metadata(key, key.public, extra={"node_id": node_id})

    @classmethod
    def server_metadata(cls, index: int) -> Metadata:
        node_id = cls.server_node_id(index)
        key = SigningKey.from_seed(b"server:" + node_id.encode())
        return make_server_metadata(key, key.public, extra={"node_id": node_id})

    @classmethod
    def server_name(cls, index: int) -> GdpName:
        return cls.server_metadata(index).name

    @staticmethod
    def index_of_label(label: str) -> int | None:
        """The fleet index a channel banner label refers to, or None
        for non-fleet peers (clients)."""
        for prefix in ("chan:fleet_r", "fleet_r"):
            if label.startswith(prefix):
                try:
                    return int(label[len(prefix):])
                except ValueError:
                    return None
        return None

    # -- rendezvous files ---------------------------------------------------

    def port_file(self, index: int) -> str:
        return os.path.join(self.rendezvous, f"{index}.port")

    def ready_file(self, index: int) -> str:
        return os.path.join(self.rendezvous, f"{index}.ready")

    def drained_file(self, index: int) -> str:
        return os.path.join(self.rendezvous, f"{index}.drained")

    def write_file(self, path: str, content: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(content)
        os.replace(tmp, path)

    def read_port(self, index: int, timeout: float = _PEER_WAIT_S) -> int:
        """Block until process *index* has published its port."""
        deadline = time.monotonic() + timeout
        path = self.port_file(index)
        while time.monotonic() < deadline:
            try:
                with open(path) as fh:
                    text = fh.read().strip()
                if text:
                    return int(text)
            except (FileNotFoundError, ValueError):
                pass
            time.sleep(0.05)
        raise TimeoutError(f"fleet process {index} never published a port")

    def wait_ready(self, timeout: float = _PEER_WAIT_S) -> list[int]:
        """Block until every process wrote its ready file; returns the
        fleet's ports."""
        deadline = time.monotonic() + timeout
        for index in range(self.processes):
            remaining = max(0.1, deadline - time.monotonic())
            self.read_port(index, timeout=remaining)
            path = self.ready_file(index)
            while not os.path.exists(path):
                if time.monotonic() > deadline:
                    raise TimeoutError(f"fleet process {index} never ready")
                time.sleep(0.05)
        return [self.read_port(i, timeout=1.0) for i in range(self.processes)]

    def to_dict(self) -> dict:
        return {
            "processes": self.processes,
            "rendezvous": self.rendezvous,
            "host": self.host,
            "storage_root": self.storage_root,
            "storage_engine": self.storage_engine,
            "fsync": self.fsync,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        return cls(
            data["processes"],
            data["rendezvous"],
            host=data.get("host", "127.0.0.1"),
            storage_root=data.get("storage_root"),
            storage_engine=data.get("storage_engine", "file"),
            fsync=data.get("fsync", False),
            seed=data.get("seed", 0),
        )


def serve_process(index: int, spec: FleetSpec) -> dict:
    """Run fleet process *index* until SIGINT/SIGTERM, then drain.

    Returns a shutdown summary dict (also written to the rendezvous
    directory as ``{index}.drained``).
    """
    from repro.routing.domain import RoutingDomain
    from repro.routing.router import GdpRouter
    from repro.runtime.context import AsyncioContext
    from repro.runtime.socketnet import SocketNetwork
    from repro.runtime.transport import local_pair
    from repro.server.dcserver import DataCapsuleServer
    from repro.server.storage import FileStore

    ctx = AsyncioContext()
    net = SocketNetwork(ctx, seed=spec.seed + index)
    domain = RoutingDomain("global", clock=lambda: ctx.now)
    router = GdpRouter(net, spec.router_node_id(index), domain)
    # No shared GLookup across processes: responses retrace the request
    # path instead.
    router.learn_source_routes = True

    storage = None
    if spec.storage_root is not None:
        root = os.path.join(spec.storage_root, f"s{index}")
        if spec.storage_engine == "segmented":
            from repro.server.segmented import SegmentedStore

            # Batched fsync: durability with bounded loss instead of
            # one fsync per ack (ARCHITECTURE.md §14.2).
            storage = SegmentedStore(
                root,
                fsync_policy="batch:65536" if spec.fsync else "drain",
            )
        else:
            storage = FileStore(root, fsync=spec.fsync)
    server = DataCapsuleServer(
        net, spec.server_node_id(index), storage=storage
    )
    s_end, _ = local_pair(
        ctx,
        server.transport,
        router.transport,
        f"chan:{server.node_id}>{router.node_id}",
        f"chan:{router.node_id}>{server.node_id}",
    )
    server.attach_channel(s_end, router.name)

    # Interconnect wiring: static routes to remote servers by fleet index.
    def wire_remote(remote_index: int, channel) -> None:
        if remote_index == index:
            return
        router.add_static_route(spec.server_name(remote_index), channel)

    def on_channel(channel) -> None:
        remote_index = spec.index_of_label(channel.node_id)
        if remote_index is not None:
            wire_remote(remote_index, channel)

    router.transport.on_channel = on_channel

    _, port = ctx.loop.run_until_complete(
        router.transport.listen(spec.host, 0)
    )
    spec.write_file(spec.port_file(index), str(port))

    # Every process dials its lower-indexed peers; acceptors wire the
    # reverse direction from the banner label.
    for peer_index in range(index):
        peer_port = spec.read_port(peer_index)
        channel = ctx.loop.run_until_complete(
            router.transport.dial(spec.host, peer_port)
        )
        wire_remote(peer_index, channel)

    def boot():
        yield server.advertise(server.catalog_entries())

    ctx.run_process(boot(), "boot")
    spec.write_file(spec.ready_file(index), str(os.getpid()))

    # Graceful lifecycle: first signal starts the drain; the loop stops
    # once the server flushed.
    state = {"draining": False, "summary": None}

    def shutdown():
        drain_ms = yield from server.drain()
        router.transport.close()
        server.transport.close()
        if storage is not None:
            storage.close()
        state["summary"] = {
            "index": index,
            "drain_ms": drain_ms,
            "inflight_after_drain": server._inflight,
            "appends": server.stats["appends"],
            "replications": server.stats["replications"],
            "reads": server.stats["reads"],
            "pdus_delivered": router.transport.delivered,
            "pdus_sent": router.transport.sent,
        }
        ctx.loop.stop()

    def on_signal() -> None:
        if state["draining"]:
            return
        state["draining"] = True
        ctx.spawn(shutdown(), "shutdown")

    for signum in (signal.SIGINT, signal.SIGTERM):
        ctx.loop.add_signal_handler(signum, on_signal)

    ctx.loop.run_forever()
    summary = state["summary"] or {"index": index, "drain_ms": None}
    spec.write_file(spec.drained_file(index), json.dumps(summary, indent=2))
    return summary


def _child_entry(index: int, spec_dict: dict) -> None:
    serve_process(index, FleetSpec.from_dict(spec_dict))


class FleetLauncher:
    """Spawn, watch, and stop a fleet from a parent process."""

    def __init__(self, spec: FleetSpec):
        self.spec = spec
        self.children: list = []

    def start(self) -> None:
        """Spawn one OS process per fleet index."""
        import multiprocessing

        os.makedirs(self.spec.rendezvous, exist_ok=True)
        mp = multiprocessing.get_context("spawn")
        for index in range(self.spec.processes):
            child = mp.Process(
                target=_child_entry,
                args=(index, self.spec.to_dict()),
                name=f"gdp-fleet-{index}",
            )
            child.start()
            self.children.append(child)

    def wait_ready(self, timeout: float = _PEER_WAIT_S) -> list[int]:
        """Ports of the fleet, once every process reports ready."""
        return self.spec.wait_ready(timeout)

    def stop(self, timeout: float = 30.0) -> list[dict]:
        """SIGTERM every child, wait for the graceful drain, and return
        the per-process shutdown summaries."""
        for child in self.children:
            if child.is_alive():
                os.kill(child.pid, signal.SIGTERM)
        for child in self.children:
            child.join(timeout)
            if child.is_alive():
                child.terminate()
                child.join(5)
        summaries = []
        for index in range(self.spec.processes):
            try:
                with open(self.spec.drained_file(index)) as fh:
                    summaries.append(json.load(fh))
            except (FileNotFoundError, ValueError):
                summaries.append({"index": index, "drain_ms": None})
        return summaries

    def alive(self) -> bool:
        return any(child.is_alive() for child in self.children)
