"""Episode plans: everything a simulation-test episode will do, drawn
up front from one seed.

FoundationDB-style simulation testing needs the *entire* episode —
topology shape, workload mix, payload sizes, fault schedule — to be a
pure function of the seed, so a failing seed replays exactly and a
shrinker can re-run the same episode with a reduced fault schedule.
:func:`build_plan` is that function: it consumes a seeded RNG in a fixed
order and returns a fully materialized :class:`EpisodePlan`.  Passing
``faults_override`` swaps the fault schedule *after* all draws, so the
workload and topology stay byte-for-byte identical — the property the
greedy shrinker in :mod:`repro.simtest.shrink` relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.sim.workload import op_schedule, record_sizes

__all__ = [
    "FaultEvent",
    "EpisodePlan",
    "build_plan",
    "commit_plane_spec",
    "crash_biased_faults",
    "dht_churn_faults",
    "FAULT_KINDS",
    "PROFILES",
]

#: every fault kind an episode can schedule; "partition" targets a
#: backbone link, "crash" targets a server process, the rest arm a
#: network-wide delivery-fault middleware (see repro.runtime.faults)
FAULT_KINDS = ("partition", "crash", "drop", "tamper", "delay", "replay")

#: profile-only fault kind: crashes a node of the Kademlia overlay
#: backing the global GLookup tier (never drawn by the default mix —
#: adding it to FAULT_KINDS would perturb the pinned default episodes)
DHT_FAULT_KIND = "dht_crash"

_MIDDLEWARE_KINDS = frozenset({"drop", "tamper", "delay", "replay"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault window, relative to workload start."""

    kind: str
    target: int      # link index (partition), server index (crash), -1
    start: float     # seconds after the workload begins
    duration: float  # how long the window stays open
    rate: float      # per-PDU firing rate for middleware kinds

    @property
    def end(self) -> float:
        """Window close time (relative to workload start)."""
        return self.start + self.duration

    def describe(self) -> str:
        """One-line deterministic description (used in failure reports)."""
        where = "" if self.target < 0 else f" target={self.target}"
        rate = "" if not self.rate else f" rate={self.rate:.2f}"
        return (
            f"{self.kind}{where} t={self.start:.2f}s"
            f"+{self.duration:.2f}s{rate}"
        )


@dataclass
class EpisodePlan:
    """A fully materialized episode: pure data, no live objects."""

    seed: int
    # topology shape (drives sim.topology.federated_campus)
    n_domains: int
    routers_per_domain: int
    intra_latency: float
    backbone_latency: float
    # derived world sizing
    n_links: int
    n_servers: int
    # workload
    ops: list[str]
    payload_sizes: list[int]
    ack_policies: list[str]
    gaps: list[float]
    read_fracs: list[float]
    use_subscriber: bool
    # fault schedule
    faults: list[FaultEvent] = field(default_factory=list)
    #: sharded-commit-plane workload spec (the ``"commit"`` profile);
    #: ``None`` means the episode runs without a commit plane
    commit_plane: dict | None = None

    @property
    def workload_span(self) -> float:
        """Nominal workload duration (sum of inter-op gaps)."""
        return sum(self.gaps)

    @property
    def fault_horizon(self) -> float:
        """When the last fault window closes (relative to workload
        start); 0.0 for a fault-free episode."""
        return max((event.end for event in self.faults), default=0.0)

    def describe(self) -> list[str]:
        """Deterministic summary lines for reports."""
        lines = [
            f"topology: domains={self.n_domains} "
            f"routers/domain={self.routers_per_domain} "
            f"servers={self.n_servers}",
            f"workload: ops={len(self.ops)} "
            f"appends={sum(1 for op in self.ops if op == 'append')} "
            f"subscriber={'yes' if self.use_subscriber else 'no'}",
            f"faults: {len(self.faults)}",
        ]
        lines.extend(f"  - {event.describe()}" for event in self.faults)
        if self.commit_plane is not None:
            spec = self.commit_plane
            lines.append(
                f"commit plane: shards={spec['n_shards']} "
                f"submitters={spec['n_submitters']} "
                f"ops/submitter={spec['ops_per_submitter']} "
                f"hot_keys={len(spec['hot_keys'])} "
                f"hot_frac={spec['hot_frac']:.2f}"
            )
        return lines


def _draw_faults(
    rng: random.Random, span: float, n_links: int, n_servers: int
) -> list[FaultEvent]:
    """The random fault schedule: 2-6 windows inside the workload phase.

    At most one window per middleware kind, so arm/disarm windows never
    fight over one middleware's rate.
    """
    events: list[FaultEvent] = []
    used_middleware: set[str] = set()
    for _ in range(rng.randint(2, 6)):
        kind = rng.choice(FAULT_KINDS)
        start = rng.uniform(0.3, max(1.0, span * 0.7))
        duration = rng.uniform(0.5, max(1.0, span * 0.5))
        if kind == "partition":
            target, rate = rng.randrange(n_links), 0.0
        elif kind == "crash":
            target, rate = rng.randrange(n_servers), 0.0
        else:
            target, rate = -1, rng.uniform(0.05, 0.25)
            if kind in used_middleware:
                continue  # keep one window per middleware kind
            used_middleware.add(kind)
        events.append(FaultEvent(kind, target, start, duration, rate))
    return events


def crash_biased_faults(
    seed: int, span: float, n_links: int, n_servers: int
) -> list[FaultEvent]:
    """The routing-resilience soak schedule: mostly server crashes, with
    windows sized against the episode lease (simtest.world.LEASE_TTL)
    so advertisements actually *expire* while their server is down and
    clients must fail over, not just wait out a blip.

    Drawn from a dedicated RNG stream, so it never perturbs the default
    :func:`build_plan` draw sequence (same-seed default episodes stay
    byte-identical).
    """
    rng = random.Random(f"crash-bias:{seed}")
    events: list[FaultEvent] = []
    for _ in range(rng.randint(3, 6)):
        kind = rng.choice(("crash", "crash", "crash", "partition"))
        start = rng.uniform(0.3, max(1.0, span * 0.8))
        # Longer than the 8s lease more often than not: the crashed
        # server's routes lapse mid-window instead of surviving it.
        duration = rng.uniform(4.0, 14.0)
        if kind == "crash":
            target = rng.randrange(n_servers)
        else:
            target = rng.randrange(n_links)
        events.append(FaultEvent(kind, target, start, duration, 0.0))
    return events


def dht_churn_faults(
    seed: int, span: float, n_links: int, n_servers: int
) -> list[FaultEvent]:
    """The DHT-churn soak schedule: windows of overlay-node crashes
    (the episode runner caps concurrent DHT deaths at ``k - 1`` and
    never kills the home node, so resolution must keep succeeding while
    up to ``k - 1`` replica holders are dark), with an occasional
    network-wide drop window stressing the per-RPC timeout/retry path.

    Drawn from a dedicated RNG stream, like :func:`crash_biased_faults`,
    so the default draw sequence stays byte-identical.
    """
    rng = random.Random(f"dht-churn:{seed}")
    events: list[FaultEvent] = []
    for _ in range(rng.randint(3, 5)):
        start = rng.uniform(0.3, max(1.0, span * 0.8))
        # Longer than the record TTL's republish cadence more often than
        # not: re-replication (not luck) must carry the lookups.
        duration = rng.uniform(6.0, 16.0)
        events.append(FaultEvent(
            DHT_FAULT_KIND, rng.randrange(16), start, duration, 0.0
        ))
    if rng.random() < 0.5:
        events.append(FaultEvent(
            "drop",
            -1,
            rng.uniform(0.3, max(1.0, span * 0.5)),
            rng.uniform(0.5, max(1.0, span * 0.4)),
            rng.uniform(0.05, 0.2),
        ))
    return events


def commit_plane_spec(seed: int) -> dict:
    """The ``"commit"`` profile's multi-writer workload: shard count,
    submitter fleet size, per-submitter CAS op budget, and the hot-key
    mix that manufactures write-write conflicts.

    Drawn from a dedicated RNG stream (like :func:`crash_biased_faults`)
    so enabling the profile never perturbs the default draw sequence —
    same-seed default episodes stay byte-identical.
    """
    rng = random.Random(f"commit:{seed}")
    n_shards = rng.choice((1, 2, 4))
    return {
        "n_shards": n_shards,
        "n_submitters": rng.randint(2, 4),
        "ops_per_submitter": rng.randint(3, 6),
        # 1-2 hot keys concentrate CAS races; the rest of the ops spread
        # over per-submitter private keys (exercising shard routing).
        "hot_keys": [f"hot/{i}" for i in range(rng.randint(1, 2))],
        "hot_frac": round(rng.uniform(0.5, 0.9), 3),
    }


#: named episode profiles accepted by :func:`build_plan`
PROFILES = ("default", "crash_bias", "commit", "dht_churn")


def build_plan(
    seed: int,
    *,
    faults_override: list[FaultEvent] | None = None,
    profile: str = "default",
) -> EpisodePlan:
    """The pure seed -> plan function (see module docstring).

    ``faults_override`` replaces the fault schedule after every random
    draw has been made, leaving topology and workload untouched.
    ``profile`` picks a named variant the same way (post-draw swap):
    ``"crash_bias"`` substitutes :func:`crash_biased_faults` for the
    default mix — the nightly routing-resilience soak profile — and
    ``"commit"`` attaches a sharded commit plane with racing CAS
    submitters (:func:`commit_plane_spec`), keeping the default fault
    schedule so the multi-writer path is judged under the full chaos mix.
    """
    rng = random.Random(seed)
    n_domains = rng.randint(1, 3)
    routers_per_domain = rng.randint(1, 2)
    intra_latency = rng.choice([0.001, 0.002, 0.005])
    backbone_latency = rng.choice([0.010, 0.015, 0.030])
    # federated_campus creates routers_per_domain links per domain (the
    # intra-domain chain plus the gateway's backbone uplink).
    n_site_routers = n_domains * routers_per_domain
    n_links = n_site_routers
    n_servers = min(3, max(2, n_site_routers))

    n_ops = rng.randint(10, 16)
    ops = op_schedule(n_ops, seed=seed * 977 + 1)
    payload_sizes = record_sizes(n_ops, mean=96, seed=seed * 977 + 2)
    ack_policies = [
        rng.choice(["any", "any", "quorum", "all"]) for _ in range(n_ops)
    ]
    gaps = [rng.uniform(0.2, 0.8) for _ in range(n_ops)]
    read_fracs = [rng.random() for _ in range(n_ops)]
    use_subscriber = rng.random() < 0.5

    faults = _draw_faults(rng, sum(gaps), n_links, n_servers)
    plan = EpisodePlan(
        seed=seed,
        n_domains=n_domains,
        routers_per_domain=routers_per_domain,
        intra_latency=intra_latency,
        backbone_latency=backbone_latency,
        n_links=n_links,
        n_servers=n_servers,
        ops=ops,
        payload_sizes=payload_sizes,
        ack_policies=ack_policies,
        gaps=gaps,
        read_fracs=read_fracs,
        use_subscriber=use_subscriber,
        faults=faults,
    )
    if profile not in PROFILES:
        raise ValueError(f"unknown fault profile: {profile!r}")
    if profile == "crash_bias":
        plan.faults = crash_biased_faults(
            seed, sum(gaps), n_links, n_servers
        )
    if profile == "commit":
        plan.commit_plane = commit_plane_spec(seed)
    if profile == "dht_churn":
        plan.faults = dht_churn_faults(seed, sum(gaps), n_links, n_servers)
    if faults_override is not None:
        plan.faults = [replace(event) for event in faults_override]
    return plan
