"""Episode worlds: a live GDP built from an :class:`EpisodePlan`.

The world is the bridge between the pure plan and the running
simulation: a randomly shaped federation (via :mod:`repro.sim.topology`),
DataCapsule-servers with anti-entropy daemons, one writer client, and
the four delivery-fault middlewares installed *disarmed* so fault
windows can arm them without perturbing the RNG streams outside their
windows.

It also carries the episode's ground truth for the oracles: the
writer's local capsule (every record ever minted), the seqnos that were
acknowledged under ``acks=all`` (must survive on every replica), and
the deterministic operation log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.client import GdpClient, OwnerConsole
from repro.naming.names import GdpName
from repro.client.failover import SubscriptionMonitor
from repro.crypto import SigningKey
from repro.routing.lease import LeaseRefreshDaemon
from repro.runtime.faults import (
    DelayFaults,
    DropFaults,
    ReplayFaults,
    TamperFaults,
)
from repro.server import AntiEntropyDaemon, DataCapsuleServer
from repro.sim.net import Link, SimNetwork
from repro.sim.topology import Topology, federated_campus
from repro.simtest.plan import EpisodePlan

__all__ = ["EpisodeWorld", "build_world"]

#: anti-entropy gossip period inside episodes (short: episodes are
#: seconds long and must converge inside the quiesce deadline)
SYNC_INTERVAL = 2.0

#: server advertisement lease inside episodes — short enough that a
#: crashed server's routes lapse mid-episode (exercising lease expiry),
#: long enough that the half-lease refresh cadence keeps live servers up
LEASE_TTL = 8.0

#: subscription-monitor period (tip probe + stalled-push detection)
MONITOR_INTERVAL = 4.0


@dataclass
class EpisodeWorld:
    """Live handles plus ground truth for one episode."""

    plan: EpisodePlan
    topo: Topology
    backbone_links: list[Link]
    servers: list[DataCapsuleServer]
    daemons: list  # anti-entropy + lease-refresh + subscription monitor
    client: GdpClient
    console: OwnerConsole
    writer_key: SigningKey
    faults: dict  # kind -> installed (disarmed) fault middleware
    # filled in as the episode runs
    metadata: object | None = None
    placement: object | None = None
    writer: object | None = None
    durable_seqnos: list[int] = field(default_factory=list)
    op_log: list[str] = field(default_factory=list)
    pushes: list[int] = field(default_factory=list)
    #: sharded commit plane (the "commit" profile; empty otherwise)
    commit_front: object | None = None
    commit_shards: list = field(default_factory=list)
    commit_clients: list = field(default_factory=list)
    #: client-side ground truth: every CommitReceipt a submitter was
    #: handed — the commit_order oracle's "no phantom ack" evidence
    commit_receipts: list[dict] = field(default_factory=list)
    #: the heal-phase reachability probe's findings (read outcome,
    #: subscription resync count) — the reachability oracle's evidence
    probe: dict = field(default_factory=dict)
    #: the Kademlia overlay backing the global tier (dht_root worlds)
    dht: object | None = None
    dht_nodes: list = field(default_factory=list)
    dht_glookup: object | None = None

    @property
    def net(self) -> SimNetwork:
        """The owning network."""
        return self.topo.net

    @property
    def routers(self) -> list:
        """All routers (backbone + site), in creation order."""
        return list(self.topo.routers.values())

    def live_servers(self) -> list[DataCapsuleServer]:
        """Servers whose process is currently up."""
        return [server for server in self.servers if not server.crashed]


def build_world(plan: EpisodePlan, *, dht_root: bool = False) -> EpisodeWorld:
    """Materialize the plan: topology, servers, client, disarmed faults.

    Identical plans build identical worlds — node ids, key seeds, and
    fault RNG seeds are all derived from ``plan.seed``.

    ``dht_root`` swaps the global domain's GLookupService for a
    Kademlia-backed :class:`DhtGLookupService` tier (§VII's scalable
    top level).  Opt-in: the pinned determinism traces cover the
    default world, and the DHT tier must not perturb them.
    """
    topo = federated_campus(
        plan.n_domains,
        seed=plan.seed,
        intra_latency=plan.intra_latency,
        backbone_latency=plan.backbone_latency,
        routers_per_domain=plan.routers_per_domain,
    )
    net = topo.net
    # The inter-router fabric built so far is the partition target set;
    # endpoint attachment links created below (and the DHT overlay mesh)
    # stay out of it.
    backbone_links = list(net.links)
    dht = None
    dht_nodes: list = []
    dht_glookup = None
    if dht_root:
        import hashlib

        from repro.routing.dht import KademliaDht
        from repro.routing.dht_glookup import (
            DhtGLookupService,
            DhtRepublishDaemon,
        )

        # The overlay shares the episode's network/clock: DHT RPCs ride
        # the same simulated links (and the same fault middlewares), and
        # record TTLs tick on episode time.  Join traffic runs at build
        # time, before tracing starts.
        dht = KademliaDht(k=4, network=net)
        dht_names = [
            GdpName(
                hashlib.sha256(
                    b"simtest-dht:%d:%d" % (plan.seed, i)
                ).digest()
            )
            for i in range(8)
        ]
        for dht_name in dht_names:
            dht.join(dht_name)
        dht_nodes = [dht._entry_node(dht_name) for dht_name in dht_names]
        root = topo.domains["global"]
        root.glookup = DhtGLookupService(
            "global", dht, dht_names[0], clock=lambda: net.sim.now
        )
        dht_glookup = root.glookup
        for domain in topo.domains.values():
            if domain is not root:
                domain.glookup.parent = root.glookup
    site_routers = [
        router
        for node_id, router in topo.routers.items()
        if node_id != "bb0"
    ]
    servers: list[DataCapsuleServer] = []
    daemons: list = []
    for i in range(plan.n_servers):
        server = DataCapsuleServer(net, f"s{i}", lease_ttl=LEASE_TTL)
        server.attach(site_routers[i % len(site_routers)], latency=0.001)
        servers.append(server)
        # Seeded jitter desynchronizes the fleet (no sync storms) while
        # keeping same-seed replays byte-identical.
        daemons.append(AntiEntropyDaemon(
            server,
            interval=SYNC_INTERVAL,
            rng=random.Random(f"{plan.seed}:antientropy:{i}"),
        ))
        # Live servers re-advertise inside the lease; crashed ones skip
        # their turn, so their routes lapse (the lease doing its job).
        daemons.append(LeaseRefreshDaemon(
            server,
            rng=random.Random(f"{plan.seed}:leaserefresh:{i}"),
        ))
    if dht_glookup is not None:
        # Republish-on-expiry / re-replication after DHT holder churn.
        daemons.append(DhtRepublishDaemon(dht_glookup))
    client = GdpClient(net, "ep_client")
    client.attach(site_routers[0], latency=0.001)
    # Notices a silently dead serving replica (tip advancing elsewhere,
    # pushes stalled) and transparently re-subscribes.
    daemons.append(SubscriptionMonitor(
        client,
        interval=MONITOR_INTERVAL,
        rng=random.Random(f"{plan.seed}:submonitor"),
    ))
    owner_key = SigningKey.from_seed(b"simtest-owner-%d" % plan.seed)
    writer_key = SigningKey.from_seed(b"simtest-writer-%d" % plan.seed)
    console = OwnerConsole(client, owner_key)
    commit_front = None
    commit_shards: list = []
    commit_clients: list = []
    if plan.commit_plane is not None:
        from repro.caapi.commit_service import (
            CommitClient,
            CommitShard,
            ShardedCommitService,
        )

        spec = plan.commit_plane
        for i in range(spec["n_shards"]):
            shard = CommitShard(net, f"cshard{i}")
            shard.attach(site_routers[i % len(site_routers)], latency=0.001)
            commit_shards.append(shard)
        commit_front = ShardedCommitService(net, "cfront", commit_shards)
        commit_front.attach(site_routers[-1], latency=0.001)
        for i in range(spec["n_submitters"]):
            submitter = GdpClient(
                net,
                f"csub{i}",
                key=SigningKey.from_seed(
                    b"simtest-submitter-%d-%d" % (plan.seed, i)
                ),
            )
            submitter.attach(
                site_routers[i % len(site_routers)], latency=0.001
            )
            commit_clients.append(CommitClient(
                submitter,
                commit_front.name,
                coordinator_key=commit_front.key.public,
                rng=random.Random(f"{plan.seed}:casretry:{i}"),
            ))
    base = plan.seed * 31
    faults = {
        "drop": DropFaults(net, rng=random.Random(base + 1)).install(),
        "tamper": TamperFaults(net, rng=random.Random(base + 2)).install(),
        "delay": DelayFaults(
            net, seconds=0.4, rng=random.Random(base + 3)
        ).install(),
        "replay": ReplayFaults(
            net, seconds=0.3, rng=random.Random(base + 4)
        ).install(),
    }
    return EpisodeWorld(
        plan=plan,
        topo=topo,
        backbone_links=backbone_links,
        servers=servers,
        daemons=daemons,
        client=client,
        console=console,
        writer_key=writer_key,
        faults=faults,
        commit_front=commit_front,
        commit_shards=commit_shards,
        commit_clients=commit_clients,
        dht=dht,
        dht_nodes=dht_nodes,
        dht_glookup=dht_glookup,
    )
