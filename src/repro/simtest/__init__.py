"""Deterministic simulation testing (FoundationDB-style) for the GDP.

One seed determines an entire chaos episode — random topology, random
workload, random fault schedule — and a registry of invariant oracles
checks the world at quiesce.  Failures replay exactly
(``repro simtest --seed N``) and shrink greedily to a minimal fault
schedule.  See ``docs/TESTING.md`` for the workflow.
"""

from repro.simtest.episode import EpisodeResult, run_episode
from repro.simtest.oracles import ORACLES, Violation, oracle, run_oracles
from repro.simtest.plan import (
    FAULT_KINDS,
    EpisodePlan,
    FaultEvent,
    build_plan,
)
from repro.simtest.shrink import ShrinkResult, shrink_episode
from repro.simtest.world import EpisodeWorld, build_world

__all__ = [
    "EpisodePlan",
    "EpisodeResult",
    "EpisodeWorld",
    "FAULT_KINDS",
    "FaultEvent",
    "ORACLES",
    "ShrinkResult",
    "Violation",
    "build_plan",
    "build_world",
    "oracle",
    "run_episode",
    "run_oracles",
    "shrink_episode",
]
