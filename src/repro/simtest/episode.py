"""The episode runner: one seeded chaos episode, checked at quiesce.

An episode is four phases on a simulated clock:

1. **setup** (clean network): advertise everyone, place one capsule on
   every server, start the anti-entropy daemons, open the single
   writer, maybe subscribe;
2. **workload under faults**: the planned op sequence (appends with
   random durability, verified reads, latest-reads) runs while one sim
   process per :class:`FaultEvent` opens and closes its fault window;
3. **heal**: every window closed, links recovered, crashed servers
   restarted, FIBs flushed, then a convergence poll until all live
   replicas agree (or a deadline passes — divergence is the
   ``convergence`` oracle's call, not a crash);
4. **quiesce**: daemons stopped, the event queue drained, and every
   registered oracle run over the cold world.

Everything is a pure function of the seed: the failure report and the
trace stream are byte-identical across runs, and every failing report
carries its own one-line repro command.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.errors import GdpError
from repro.sim.workload import blob
from repro.simtest.oracles import Violation, run_oracles
from repro.simtest.plan import EpisodePlan, FaultEvent, build_plan
from repro.simtest.world import EpisodeWorld, build_world

__all__ = ["EpisodeResult", "run_episode"]

#: how long the convergence poll waits after the heal before giving up
CONVERGENCE_DEADLINE = 120.0

#: bounded post-scenario drain (timeouts, daemon tails, replay echoes)
DRAIN_HORIZON = 600.0


@dataclass
class EpisodeResult:
    """Everything one episode produced, reportable deterministically."""

    seed: int
    plan: EpisodePlan
    violations: list[Violation]
    sim_time: float
    trace_bytes: bytes = b""
    op_log: list[str] = field(default_factory=list)
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the episode passed every oracle without crashing."""
        return not self.violations and self.error is None

    @property
    def repro_command(self) -> str:
        """The one-liner that replays this exact episode."""
        return f"repro simtest --seed {self.seed}"

    @property
    def trace_sha256(self) -> str:
        """Digest of the deterministic trace stream."""
        return hashlib.sha256(self.trace_bytes).hexdigest()

    def report(self) -> str:
        """The deterministic multi-line report (byte-identical across
        replays of the same seed)."""
        lines = [f"episode seed={self.seed}: {'PASS' if self.ok else 'FAIL'}"]
        lines.extend(f"  {line}" for line in self.plan.describe())
        lines.append(
            f"  trace: {len(self.trace_bytes)} bytes "
            f"sha256={self.trace_sha256[:16]}"
        )
        if self.error is not None:
            lines.append(f"  error: {self.error}")
        for violation in self.violations:
            lines.append(f"  violation: {violation}")
        if not self.ok:
            lines.append(f"  repro: {self.repro_command}")
        return "\n".join(lines)


def _apply_fault(world: EpisodeWorld, event: FaultEvent):
    """Open one fault window; returns the closer callback."""
    if event.kind == "partition":
        link = world.backbone_links[event.target % len(world.backbone_links)]
        was_up = link.up
        if was_up:
            link.fail()

        def close() -> None:
            if not link.up:
                link.recover()
                for router in world.routers:
                    router.flush_fib()

        return close if was_up else (lambda: None)
    if event.kind == "dht_crash":
        nodes = world.dht_nodes
        if len(nodes) < 2:
            return lambda: None
        # Never the home node (index 0: the glookup's access point) and
        # never more than k-1 concurrent deaths — with k replicas per
        # record, k-1 dark holders is the design point resolution must
        # survive; beyond it, data loss is expected, not a finding.
        node = nodes[1:][event.target % (len(nodes) - 1)]
        crashed = sum(1 for n in nodes if n.crashed)
        if node.crashed or crashed >= world.dht.k - 1:
            return lambda: None
        node.crash()

        def close() -> None:
            if node.crashed:
                node.restart()

        return close
    if event.kind == "crash":
        server = world.servers[event.target % len(world.servers)]
        # Never kill the last live server: an all-dead fleet makes every
        # op fail vacuously and teaches the episode nothing.
        if server.crashed or len(world.live_servers()) <= 1:
            return lambda: None
        server.crash()

        def close() -> None:
            if server.crashed:
                server.restart()

        return close
    fault = world.faults[event.kind]
    fault.arm(event.rate)
    return fault.disarm


def _fault_window(world: EpisodeWorld, event: FaultEvent):
    """A sim process running one fault window."""
    yield event.start
    close = _apply_fault(world, event)
    yield event.duration
    close()


def _commit_submitter(world: EpisodeWorld, index: int, commit_client):
    """One racing multi-writer: keyed CAS submissions against the
    sharded commit plane, mostly on the shared hot keys (manufacturing
    conflicts), rebasing and retrying through ``submit_cas``.

    Faults make individual submissions fail (timeouts, unreachable
    shards, exhausted retries) — that is availability loss and is only
    logged.  What the ``commit_order`` oracle later checks is that
    every *acknowledged* receipt exists in its shard's log and that the
    committed CAS chains are linearizable.
    """
    spec = world.plan.commit_plane
    rng = random.Random(f"{world.plan.seed}:commitops:{index}")
    for op in range(spec["ops_per_submitter"]):
        if rng.random() < spec["hot_frac"]:
            key = rng.choice(spec["hot_keys"])
        else:
            key = f"sub{index}/k{rng.randint(0, 3)}"
        payload = b"commit:%d:%d:%s" % (index, op, key.encode())
        try:
            receipt = yield from commit_client.submit_cas(
                key, lambda expect: payload, attempts=12
            )
            world.commit_receipts.append({
                "submitter": index,
                "key": key,
                "seqno": receipt.seqno,
                "shard": receipt.shard,
            })
            world.op_log.append(
                f"commit{index}.{op} {key} seq={receipt.seqno} "
                f"shard={receipt.shard}"
            )
        except GdpError as exc:
            world.op_log.append(
                f"commit{index}.{op} {key} failed: {type(exc).__name__}"
            )
        yield rng.uniform(0.05, 0.4)


def _scenario(world: EpisodeWorld):
    """The episode's main sim process (see module docstring)."""
    plan = world.plan
    net = world.net
    # -- phase 1: setup on a clean network ------------------------------
    for endpoint in world.servers + [world.client]:
        yield endpoint.advertise()
    metadata = world.console.design_capsule(world.writer_key.public)
    world.metadata = metadata
    world.placement = yield from world.console.place_capsule(
        metadata, [server.metadata for server in world.servers]
    )
    yield 0.5  # let the capsule re-advertisements land
    for daemon in world.daemons:
        daemon.start()
    writer = world.client.open_writer(metadata, world.writer_key)
    world.writer = writer
    if plan.use_subscriber:
        try:
            yield from world.client.subscribe(
                metadata.name,
                lambda record, heartbeat: world.pushes.append(record.seqno),
            )
        except GdpError as exc:
            world.op_log.append(f"subscribe failed: {type(exc).__name__}")
    if world.commit_shards:
        for shard in world.commit_shards:
            yield shard.advertise()
        yield world.commit_front.advertise()
        for commit_client in world.commit_clients:
            yield commit_client.client.advertise()
        yield from world.commit_front.create(
            world.console, [server.metadata for server in world.servers]
        )
        yield 0.5  # let the shard-capsule advertisements land
    # -- phase 2: workload under the fault schedule ---------------------
    workload_start = net.sim.now
    for event in plan.faults:
        net.sim.spawn(
            _fault_window(world, event), name=f"fault:{event.kind}"
        )
    commit_procs = [
        net.sim.spawn(
            _commit_submitter(world, i, commit_client),
            name=f"commit:sub{i}",
        )
        for i, commit_client in enumerate(world.commit_clients)
    ]
    for i, op in enumerate(plan.ops):
        try:
            if op == "append":
                policy = plan.ack_policies[i]
                receipt = yield from writer.append(
                    blob(plan.payload_sizes[i], seed=plan.seed * 1009 + i),
                    acks=policy,
                )
                if policy == "all" and receipt.acks >= plan.n_servers:
                    world.durable_seqnos.append(receipt.seqno)
                world.op_log.append(
                    f"op{i} append seq={receipt.seqno} "
                    f"{policy} acks={receipt.acks}"
                )
            elif op == "read_latest":
                yield from world.client.read_latest(metadata.name)
                world.op_log.append(f"op{i} read_latest ok")
            else:  # "read"
                tip = writer.last_seqno
                if tip == 0:
                    world.op_log.append(f"op{i} read skipped (empty)")
                else:
                    seqno = min(tip, 1 + int(plan.read_fracs[i] * tip))
                    yield from world.client.read(metadata.name, seqno)
                    world.op_log.append(f"op{i} read seq={seqno} ok")
        except GdpError as exc:
            world.op_log.append(f"op{i} {op} failed: {type(exc).__name__}")
        yield plan.gaps[i]
    # The racing submitters must finish before the heal is judged: a
    # commit acknowledged mid-chaos is part of the oracle's evidence.
    for proc in commit_procs:
        yield proc.completion
    # -- phase 3: heal --------------------------------------------------
    # Outwait any fault window still open (workload ops can finish early
    # when gaps are short and faults were drawn near the span's tail).
    remaining = (workload_start + plan.fault_horizon) - net.sim.now
    if remaining > 0:
        yield remaining + 0.1
    for fault in world.faults.values():
        fault.disarm()
    for link in net.links:
        if not link.up:
            link.recover()
    for server in world.servers:
        if server.crashed:
            server.restart()
    for router in world.routers:
        router.flush_fib()
    deadline = net.sim.now + CONVERGENCE_DEADLINE
    while net.sim.now < deadline:
        summaries = {
            server.hosted[metadata.name].capsule.canonical_summary()
            for server in world.servers
            if metadata.name in server.hosted
        }
        if len(summaries) <= 1:
            break
        yield 2.0
    # Post-heal reachability probe: run *before* the daemons stop, while
    # leases are still being refreshed — this is the reachability
    # oracle's evidence.  Subscriptions must re-attach to a live replica
    # and a live anycast read of the capsule must succeed.
    try:
        world.probe["resubscribed"] = (
            yield from world.client.resync_subscriptions()
        )
    except GdpError as exc:
        world.probe["resubscribe_error"] = type(exc).__name__
    try:
        result = yield from world.client.read_latest(metadata.name)
        world.probe["read_ok"] = True
        world.probe["tip"] = 0 if result is None else result.record.seqno
    except GdpError as exc:
        world.probe["read_ok"] = False
        world.probe["read_error"] = f"{type(exc).__name__}: {exc}"
    if world.dht_glookup is not None:
        # One forced republish pass stands in for "wait one republish
        # interval": every surviving record re-lands on the currently
        # closest live holders, then the replication snapshot is taken
        # for the fib_glookup oracle's replication-factor judgment.
        try:
            yield from world.dht_glookup.republish_proc()
            world.probe["dht_replication"] = (
                world.dht_glookup.replication_report()
            )
        except Exception as exc:  # noqa: BLE001 — probe evidence only
            world.probe["dht_replication_error"] = type(exc).__name__
    for daemon in world.daemons:
        daemon.stop()


def run_episode(
    seed: int,
    *,
    faults_override: list[FaultEvent] | None = None,
    trace: bool = True,
    profile: str = "default",
    dht_root: bool = False,
) -> EpisodeResult:
    """Run one complete episode; never raises for in-episode failures —
    scenario crashes and oracle violations both land in the result.

    ``profile`` selects a named episode variant (see
    :func:`repro.simtest.plan.build_plan`); ``"crash_bias"`` is the
    routing-resilience soak mix, ``"commit"`` attaches a sharded
    commit plane with racing CAS submitters judged by the
    ``commit_order`` oracle.  ``dht_root`` runs the episode with
    the Kademlia-backed global GLookup tier (see
    :func:`repro.simtest.world.build_world`)."""
    plan = build_plan(seed, faults_override=faults_override, profile=profile)
    # The churn profile is *about* the DHT tier: it implies dht_root.
    world = build_world(plan, dht_root=dht_root or profile == "dht_churn")
    tracer = world.net.enable_tracing() if trace else None
    error = None
    try:
        world.net.sim.run_process(_scenario(world))
    except Exception as exc:  # noqa: BLE001 — the report carries it
        error = f"{type(exc).__name__}: {exc}"
    finally:
        for daemon in world.daemons:
            daemon.stop()
        for fault in world.faults.values():
            fault.disarm()
    # Bounded drain: in-flight timeouts, daemon tails, delayed echoes.
    world.net.sim.run(until=world.net.sim.now + DRAIN_HORIZON)
    if world.metadata is not None:
        violations = run_oracles(world)
    else:
        violations = []
        if error is None:
            error = "episode ended before a capsule was placed"
    return EpisodeResult(
        seed=seed,
        plan=plan,
        violations=violations,
        sim_time=world.net.sim.now,
        trace_bytes=tracer.to_bytes() if tracer is not None else b"",
        op_log=list(world.op_log),
        error=error,
    )
