"""Invariant oracles: what must hold at quiesce, no matter the faults.

Every oracle checks a **safety** property — "nothing wrong survived" —
never liveness.  Records can be lost forever (a PDU dropped before any
server stored it leaves a permanent hole); that is an availability loss
the paper's threat model explicitly tolerates, so oracles *skip* holes
(:class:`HoleError`) and empty replicas.  What they must never see is
wrong data surviving verification, live replicas that disagree after a
full heal, unverifiable routing state, or a message the network cannot
account for.

Oracles register themselves in :data:`ORACLES` via the :func:`oracle`
decorator; :func:`run_oracles` runs them in sorted-name order (so
reports are deterministic) and returns the collected
:class:`Violation`\\ s.  An oracle takes the finished
:class:`~repro.simtest.world.EpisodeWorld` and returns a list of
violations — every diagnostic it emits must be a pure function of the
episode seed (node ids, seqnos, digests: yes; raw correlation ids or
wall-clock times: never), so a failing seed reproduces its report
byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro import encoding
from repro.caapi.commit_service import (
    NO_PRECONDITION,
    read_committed_entry,
    shard_of,
)
from repro.capsule import DataCapsule, Heartbeat, Record
from repro.capsule.proofs import build_position_proof
from repro.errors import (
    BranchError,
    GdpError,
    HoleError,
    RecordNotFoundError,
)
from repro.routing.dht_glookup import DhtGLookupService
from repro.routing.glookup import RouteEntry

__all__ = ["Violation", "ORACLES", "oracle", "run_oracles"]


@dataclass(frozen=True)
class Violation:
    """One invariant violation with a deterministic diagnostic."""

    oracle: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"{self.oracle}: {self.subject}: {self.detail}"


#: the oracle registry: name -> check function (world -> violations)
ORACLES: dict[str, Callable] = {}


def oracle(name: str) -> Callable:
    """Register a check function under *name* (decorator)."""

    def register(fn: Callable) -> Callable:
        ORACLES[name] = fn
        return fn

    return register


def run_oracles(world, *, names: Iterable[str] | None = None) -> list[Violation]:
    """Run the selected oracles (default: all, in sorted-name order)."""
    selected = sorted(ORACLES) if names is None else list(names)
    violations: list[Violation] = []
    for name in selected:
        violations.extend(ORACLES[name](world))
    return violations


def _hosted_capsules(world):
    """Yield ``(server, capsule)`` for every replica of the episode's
    capsule, flagging replicas that lost their hosting state."""
    for server in world.servers:
        hosted = server.hosted.get(world.metadata.name)
        if hosted is not None:
            yield server, hosted.capsule


@oracle("hash_chain")
def check_hash_chain(world) -> list[Violation]:
    """Hash-chain + heartbeat integrity per replica (§IV, §V-A).

    Every stored heartbeat must carry a valid writer signature, and a
    hole-free replica's full history must verify end-to-end.  Holes are
    availability loss and are skipped; a signature or chain failure
    means tampered data survived server-side validation — never
    acceptable.
    """
    violations = []
    for server, capsule in _hosted_capsules(world):
        for heartbeat in capsule.heartbeats():
            try:
                # Strict mode: our writers only emit canonical low-S
                # signatures, so a surviving high-S variant means
                # something malleated a stored heartbeat in flight.
                heartbeat.verify(capsule.writer_key, require_low_s=True)
            except GdpError as exc:
                violations.append(Violation(
                    "hash_chain",
                    f"{server.node_id}/hb{heartbeat.seqno}",
                    f"stored heartbeat fails verification: {exc}",
                ))
        if capsule.latest_heartbeat is None or capsule.holes():
            continue  # empty or holed replica: nothing to chain-walk
        try:
            capsule.verify_history()
        except (HoleError, RecordNotFoundError, BranchError):
            continue  # tip missing or branched: availability loss
        except GdpError as exc:
            violations.append(Violation(
                "hash_chain",
                server.node_id,
                f"history fails verification: {type(exc).__name__}: {exc}",
            ))
    return violations


@oracle("read_proof")
def check_read_proof(world) -> list[Violation]:
    """Read-proof verifiability: every record a replica would serve must
    come with a position proof that verifies against the writer key
    (§V: readers trust proofs, not servers)."""
    violations = []
    for server, capsule in _hosted_capsules(world):
        for seqno in capsule.seqnos():
            try:
                proof = build_position_proof(capsule, seqno)
                proof.verify_record(capsule.get(seqno), capsule.writer_key)
            except (HoleError, RecordNotFoundError):
                continue  # proof path crosses a hole: cannot serve, ok
            except BranchError:
                # A tampered sync reply can plant an unattested sibling
                # (absorbed by design — see replication._absorb); the
                # replica then refuses linear serving of that seqno
                # (§VI-C branches: readers fall back to the branch API
                # and its deterministic resolution).  Detected
                # availability loss, never silently-wrong data — the
                # chain walk in hash_chain still covers the attested
                # history.
                continue
            except GdpError as exc:
                violations.append(Violation(
                    "read_proof",
                    f"{server.node_id}/record{seqno}",
                    f"unverifiable proof: {type(exc).__name__}: {exc}",
                ))
    return violations


@oracle("convergence")
def check_convergence(world) -> list[Violation]:
    """Anti-entropy convergence + durability (§V-A, §VI-B).

    After the heal phase every live replica must hold the same record
    set, and every record acknowledged under ``acks=all`` must be on
    every live replica.
    """
    violations = []
    live = [
        (server, capsule)
        for server, capsule in _hosted_capsules(world)
        if not server.crashed
    ]
    if not live:
        return [Violation(
            "convergence", "episode", "no live replica survived the heal"
        )]
    reference_server, reference = live[0]
    reference_summary = reference.canonical_summary()
    for server, capsule in live[1:]:
        summary = capsule.canonical_summary()
        if summary != reference_summary:
            violations.append(Violation(
                "convergence",
                f"{reference_server.node_id}~{server.node_id}",
                f"replicas diverged after heal: "
                f"{len(reference_summary)} vs {len(summary)} seqnos, "
                f"tips {reference.last_seqno} vs {capsule.last_seqno}",
            ))
    for seqno in world.durable_seqnos:
        for server, capsule in live:
            if seqno not in capsule.seqnos():
                violations.append(Violation(
                    "convergence",
                    f"{server.node_id}/record{seqno}",
                    "record acknowledged with acks=all is missing",
                ))
    return violations


@oracle("fib_glookup")
def check_fib_glookup(world) -> list[Violation]:
    """FIB / GLookupService consistency (§VII).

    FIB next hops and attachment bindings must point at adjacent nodes
    (a router can only forward over its own links), and every live
    GLookupService entry must still carry verifiable delegation
    evidence — a forged or corrupted entry surviving in routing state is
    a safety violation even if no PDU happened to use it.
    """
    violations = []
    now = world.net.sim.now
    for router in world.routers:
        adjacent = {id(node) for node in router.neighbors()}
        for name, node in sorted(
            router.attached.items(), key=lambda item: item[0].raw
        ):
            if id(node) not in adjacent:
                violations.append(Violation(
                    "fib_glookup",
                    f"{router.node_id}/attached/{name.human()}",
                    f"attachment binding points at non-adjacent "
                    f"node {node.node_id}",
                ))
        for name, (node, expiry) in sorted(
            router.fib.items(), key=lambda item: item[0].raw
        ):
            if expiry < now:
                continue  # expired cache entry: culled on next use
            if id(node) not in adjacent:
                violations.append(Violation(
                    "fib_glookup",
                    f"{router.node_id}/fib/{name.human()}",
                    f"FIB next hop {node.node_id} is not adjacent",
                ))
    for domain_name in sorted(world.topo.domains):
        glookup = world.topo.domains[domain_name].glookup
        for name in sorted(glookup.names(), key=lambda n: n.raw):
            for entry in glookup.peek(name):
                if entry.is_expired(now):
                    continue
                if entry.name != name:
                    violations.append(Violation(
                        "fib_glookup",
                        f"glookup:{domain_name}/{name.human()}",
                        f"entry filed under the wrong name "
                        f"({entry.name.human()})",
                    ))
                    continue
                try:
                    entry.verify(now=now)
                except Exception as exc:  # noqa: BLE001 — any failure counts
                    violations.append(Violation(
                        "fib_glookup",
                        f"glookup:{domain_name}/{name.human()}",
                        f"unverifiable route entry: "
                        f"{type(exc).__name__}: {exc}",
                    ))
        if isinstance(glookup, DhtGLookupService):
            violations.extend(
                _check_dht_tier(domain_name, glookup, now, world.probe)
            )
    return violations


def _check_dht_tier(
    domain_name: str,
    glookup: "DhtGLookupService",
    now: float,
    probe: dict,
) -> list[Violation]:
    """The DHT backing a global GLookup tier is untrusted key-value
    state (§VII) — but after an episode its *surviving* contents must
    still be the kind of garbage verification catches, never a
    well-formed entry that verifies under the wrong name.  Undecodable
    values and forged entries are tolerated in storage (routers skip
    them); an entry that decodes, verifies, and is filed under a key
    other than its own name would be silently routable and is flagged.

    Two structural invariants ride along: unregister/expiry must never
    leave an empty record slot behind (the per-principal merge deletes
    drained keys), and the heal-phase replication snapshot (taken after
    one republish pass, while every overlay node was back up) must show
    every published name on at least ``min(k, live_nodes)`` holders —
    re-replication after churn actually happened, k-replica durability
    wasn't luck.
    """
    violations = []
    seen: set[bytes] = set()
    for node_name in sorted(glookup.dht.nodes, key=lambda n: n.raw):
        node = glookup.dht.nodes[node_name]
        for key in sorted(node.store, key=lambda n: n.raw):
            slot = node.store[key]
            if not slot:
                violations.append(Violation(
                    "fib_glookup",
                    f"dht:{domain_name}/{key.human()}",
                    f"empty record slot left behind on "
                    f"{node.node_id}",
                ))
                continue
            for principal in sorted(slot):
                record = slot[principal]
                if record.get("t"):
                    continue  # tombstone: carries no routable value
                wire = record.get("d")
                blob = encoding.encode(wire)
                if blob in seen:
                    continue  # replica copy already judged
                seen.add(blob)
                try:
                    entry = RouteEntry.from_wire(wire)
                except Exception:  # noqa: BLE001 — undecodable: skipped
                    continue
                try:
                    entry.verify(now=now)
                except Exception:  # noqa: BLE001 — forged: skipped
                    continue
                if entry.name != key and not entry.is_expired(now):
                    violations.append(Violation(
                        "fib_glookup",
                        f"dht:{domain_name}/{key.human()}",
                        f"verified DHT entry filed under the wrong "
                        f"name ({entry.name.human()})",
                    ))
    report = probe.get("dht_replication") if probe else None
    if report:
        want = min(report["k"], report["live_nodes"])
        for name_hex, holders in sorted(report["names"].items()):
            if holders < want:
                violations.append(Violation(
                    "fib_glookup",
                    f"dht:{domain_name}/{name_hex[:16]}",
                    f"published name under-replicated after heal: "
                    f"{holders} holders < {want}",
                ))
    return violations


@oracle("reachability")
def check_reachability(world) -> list[Violation]:
    """Post-heal reachability (§VII: leases + client failover).

    The one liveness property the routing plane does promise: after
    every fault window closed and the fleet healed, the capsule must be
    reachable again.  The evidence is the heal-phase probe recorded in
    ``world.probe`` (taken while lease refresh was still running): a
    live anycast read must have succeeded, every subscription must have
    re-attached to a replica that is alive and hosting, and no
    duplicate push may ever have reached the application callback —
    duplicate *suppression* is the failover mechanism working, a
    duplicate in ``world.pushes`` is it failing.
    """
    violations = []
    probe = world.probe
    if not probe:
        # The scenario died before the heal finished; run_episode
        # reports that crash itself — there is no probe to judge.
        return violations
    live_names = {
        server.name
        for server in world.live_servers()
        if world.metadata.name in server.hosted
    }
    if live_names and not probe.get("read_ok"):
        violations.append(Violation(
            "reachability",
            "episode",
            f"post-heal read failed with live replicas up: "
            f"{probe.get('read_error', 'no result recorded')}",
        ))
    subscriptions = getattr(world.client, "_subscriptions", {})
    for capsule, sub in sorted(
        subscriptions.items(), key=lambda item: item[0].raw
    ):
        if live_names and (
            sub.server is None or sub.server not in live_names
        ):
            violations.append(Violation(
                "reachability",
                f"subscription/{capsule.human()}",
                "subscription is not attached to a live hosting "
                "replica after the heal",
            ))
    if len(world.pushes) != len(set(world.pushes)):
        duplicated = sorted(
            seqno
            for seqno in set(world.pushes)
            if world.pushes.count(seqno) > 1
        )
        violations.append(Violation(
            "reachability",
            "subscription/pushes",
            f"duplicate deliveries reached the callback: "
            f"seqnos {duplicated}",
        ))
    return violations


@oracle("storage_round_trip")
def check_storage_round_trip(world) -> list[Violation]:
    """Storage round-trip fidelity (ROADMAP item 3: the log *is* the
    replica).

    Every live replica's persisted log must rebuild — via
    ``load_entries`` alone, the crash-recovery path — to exactly the
    in-memory capsule state.  A record the server acknowledged but
    never persisted, a frame that fails validation on replay, or a
    stored phantom the capsule does not know about would all surface
    here: after a real crash the storage rebuild *becomes* the replica,
    so any drift between the two is silent data loss (or invention)
    waiting for the next restart.
    """
    violations = []
    for server, capsule in _hosted_capsules(world):
        if server.crashed:
            continue  # a dead replica's log is judged when it recovers
        rebuilt = DataCapsule(capsule.metadata, verify_metadata=False)
        try:
            for tag, wire in server.storage.load_entries(capsule.name):
                if tag == "r":
                    rebuilt.insert(
                        Record.from_wire(capsule.name, wire),
                        enforce_strategy=False,
                    )
                elif tag == "h":
                    rebuilt.add_heartbeat(Heartbeat.from_wire(wire))
        except GdpError as exc:
            violations.append(Violation(
                "storage_round_trip",
                server.node_id,
                f"stored frame fails replay validation: "
                f"{type(exc).__name__}: {exc}",
            ))
            continue
        if rebuilt.canonical_summary() != capsule.canonical_summary():
            violations.append(Violation(
                "storage_round_trip",
                server.node_id,
                f"persisted log rebuilds to a different replica: "
                f"{len(rebuilt.seqnos())} stored vs "
                f"{len(capsule.seqnos())} in-memory seqnos, tips "
                f"{rebuilt.last_seqno} vs {capsule.last_seqno}",
            ))
    return violations


@oracle("commit_order")
def check_commit_order(world) -> list[Violation]:
    """Per-shard commit linearizability on the sharded commit plane
    (§V-A: the multi-writer serialization point).

    Only episodes with a commit plane (the ``"commit"`` profile) are
    judged; everything else returns clean.  Faults may make individual
    submissions *fail* — that is availability loss — but every commit a
    shard **acknowledged** must satisfy, at quiesce:

    - shard-log seqnos are strictly increasing (one serial order);
    - every keyed commit landed in the shard that owns its key;
    - every CAS precondition equals the seqno it overwrote — judged in
      commit order, the compare-and-swap register's linearizability;
    - the version cache agrees with the log tip per key, and the
      committed counter with the log length;
    - every receipt a client was handed exists in the owning shard's
      log (no phantom acknowledgments), and every logged commit is
      stored on at least one replica with a matching provenance
      wrapper (no acknowledged-then-lost updates).
    """
    shards = getattr(world, "commit_shards", None)
    if not shards:
        return []
    violations = []
    n_shards = len(shards)
    for shard in shards:
        log = shard.commit_log
        seqnos = [entry["seqno"] for entry in log]
        if any(b <= a for a, b in zip(seqnos, seqnos[1:])):
            violations.append(Violation(
                "commit_order",
                shard.node_id,
                f"shard-log seqnos are not strictly increasing: {seqnos}",
            ))
        versions: dict[str, int] = {}
        for entry in log:
            key = entry["key"]
            if key is None:
                continue
            owner = shard_of(key, n_shards)
            if n_shards > 1 and owner != shard.shard_index:
                violations.append(Violation(
                    "commit_order",
                    f"{shard.node_id}/record{entry['seqno']}",
                    f"key {key!r} committed in shard "
                    f"{shard.shard_index}, owned by shard {owner}",
                ))
            if entry["expect"] != NO_PRECONDITION:
                overwritten = versions.get(key, 0)
                if entry["expect"] != overwritten:
                    violations.append(Violation(
                        "commit_order",
                        f"{shard.node_id}/record{entry['seqno']}",
                        f"CAS on {key!r} carried precondition "
                        f"{entry['expect']} but overwrote version "
                        f"{overwritten} (lost update)",
                    ))
            versions[key] = entry["seqno"]
        for key in sorted(versions):
            if shard.version_of(key) != versions[key]:
                violations.append(Violation(
                    "commit_order",
                    f"{shard.node_id}/{key}",
                    f"version cache says {shard.version_of(key)}, "
                    f"log tip for the key is {versions[key]}",
                ))
        if shard.stats_committed != len(log):
            violations.append(Violation(
                "commit_order",
                shard.node_id,
                f"committed counter {shard.stats_committed} != "
                f"{len(log)} logged commits",
            ))
    logged = {
        (shard.shard_index, entry["seqno"], entry["key"])
        for shard in shards
        for entry in shard.commit_log
    }
    for receipt in world.commit_receipts:
        if (receipt["shard"], receipt["seqno"], receipt["key"]) not in logged:
            violations.append(Violation(
                "commit_order",
                f"receipt/sub{receipt['submitter']}",
                f"acknowledged receipt (shard {receipt['shard']} "
                f"seqno {receipt['seqno']} key {receipt['key']!r}) "
                f"is missing from the shard log",
            ))
    for shard in shards:
        if shard._writer is None:
            continue  # plane never finished setup: nothing durable yet
        replicas = [
            server.hosted[shard.capsule_name].capsule
            for server in world.servers
            if shard.capsule_name in server.hosted
        ]
        for entry in shard.commit_log:
            # A failed-then-retried append can leave branch siblings at
            # the same seqno (QSW divergence); the acknowledged commit
            # survives as long as *some* stored record at its seqno
            # carries the matching provenance wrapper.
            found = False
            for capsule in replicas:
                for record in capsule.get_all(entry["seqno"]):
                    try:
                        wrapped = read_committed_entry(record.payload)
                    except Exception:  # noqa: BLE001 — sibling garbage
                        continue
                    if (wrapped["key"] == entry["key"]
                            and wrapped["submitter"] == entry["submitter"]):
                        found = True
                        break
                if found:
                    break
            if not found:
                violations.append(Violation(
                    "commit_order",
                    f"{shard.node_id}/record{entry['seqno']}",
                    "acknowledged commit is on no replica "
                    "(acknowledged-then-lost update)",
                ))
    return violations


@oracle("conservation")
def check_conservation(world) -> list[Violation]:
    """Metrics conservation: on every link, at quiesce,
    ``sent == dropped + delivered`` — each message offered to a link was
    either dropped (link down, loss, fault middleware) or handed to the
    receiver; nothing vanishes unaccounted."""
    violations = []
    for link in world.net.links:
        sent = link.stats_sent
        dropped = link.stats_dropped
        delivered = link.stats_delivered
        if sent != dropped + delivered:
            violations.append(Violation(
                "conservation",
                f"link:{link.a.node_id}~{link.b.node_id}",
                f"sent {sent} != dropped {dropped} "
                f"+ delivered {delivered}",
            ))
    return violations
