"""Greedy fault-schedule shrinking for failing episodes.

A failing seed usually fails because of one or two of its scheduled
faults; the rest are noise that makes the trace hard to read.  The
shrinker re-runs the episode with each fault removed in turn (one
greedy pass): if the episode still fails without a fault, that fault is
permanently dropped; if removing it makes the episode pass, it is
load-bearing and stays.  Because :func:`repro.simtest.plan.build_plan`
draws the workload before the faults and ``faults_override`` replaces
the schedule after all draws, every shrink re-run exercises the exact
same topology and workload — only the fault schedule varies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.simtest.episode import EpisodeResult, run_episode
from repro.simtest.plan import FaultEvent

__all__ = ["ShrinkResult", "shrink_episode"]


@dataclass
class ShrinkResult:
    """The outcome of a shrink pass."""

    original: EpisodeResult
    final: EpisodeResult
    removed: list[FaultEvent] = field(default_factory=list)

    @property
    def minimized(self) -> list[FaultEvent]:
        """The load-bearing fault schedule that still fails."""
        return list(self.final.plan.faults)

    def describe(self) -> list[str]:
        """Deterministic summary lines."""
        lines = [
            f"shrink: {len(self.original.plan.faults)} -> "
            f"{len(self.minimized)} faults "
            f"({len(self.removed)} removed)"
        ]
        lines.extend(f"  kept: {event.describe()}" for event in self.minimized)
        return lines


def shrink_episode(
    seed: int, *, run: Callable[..., EpisodeResult] = run_episode
) -> ShrinkResult:
    """One greedy pass over the fault schedule (see module docstring).

    *run* is injectable for tests; it must accept
    ``run(seed, faults_override=...)`` and return an
    :class:`EpisodeResult`-alike with ``.ok`` and ``.plan.faults``.
    """
    original = run(seed)
    if original.ok:
        return ShrinkResult(original, original)
    faults = list(original.plan.faults)
    removed: list[FaultEvent] = []
    current = original
    index = 0
    while index < len(faults):
        candidate = faults[:index] + faults[index + 1:]
        result = run(seed, faults_override=candidate)
        if not result.ok:
            removed.append(faults[index])
            faults = candidate
            current = result
        else:
            index += 1  # load-bearing: keep it, try the next
    return ShrinkResult(original, current, removed)
