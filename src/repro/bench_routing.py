"""Routing-fabric benchmark: the engine behind
``repro bench --suite routing``.

The paper's scaling claim (§VII) — a flat 256-bit namespace resolved
through hierarchical GLookup over untrusted key-value state — turns
into four measured scenarios:

**Packed tables** (gated).  Fill :class:`~repro.routing.fib.CompactFib`
and the packed :class:`~repro.routing.glookup.GLookupService` at
10k -> 100k -> 1M names (``--quick``: 10k only), reporting tracemalloc
bytes-per-entry and warm get/lookup latency percentiles.  The gate
requires FIB memory <= 200 bytes/entry and warm resolution p99 <= 1 ms
at the largest level.

**Cold resolution.**  Real signed delegation chains registered in a
child domain, resolved through the hierarchy with full evidence
re-verification — the price of the first packet to a name, dominated by
ECDSA.

**Forwarding.**  A small federated sim world pushing reads end to end;
reported as simulated data-PDU forwards per wall-clock second (whole
stack: packed FIB hit + pipeline + delivery).

**DHT tier** (gated).  Kademlia rings of 32/64/128 nodes serving
sampled put/get traffic; per-query iterative rounds must stay within
the O(log n) bound (ceil(log2 n) + 2).

**DHT churn** (gated).  Store keys in a 64-node ring, crash up to k-1
of each key's replica holders, and resolve through a surviving access
point: every get must still return the value.

**Purge scaling** (gated).  Lease-wheel reclamation with 1% of names
live: the per-expired-entry cost at the largest level must be within
5x of the 10k-name cost — O(expired), not O(table).

Wall-clock numbers are machine-dependent; the CI gate enforces the
absolute memory/hop/purge bounds plus a 30% regression band on
bytes-per-entry and warm p99 against levels present in the committed
baseline.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
import tracemalloc

__all__ = ["run_bench", "check_regression", "GATED_LIMITS"]

#: absolute ceilings the CI gate enforces (ISSUE acceptance criteria)
GATED_LIMITS = {
    "fib_bytes_per_entry": 200.0,
    "warm_resolution_p99_ms": 1.0,
    "purge_cost_ratio": 5.0,
}

_REGRESSION_TOLERANCE = 0.30
#: latency regressions below this are scheduler/timer noise, not an
#: algorithmic change — the absolute 1 ms ceiling still applies.  A
#: packed-table lookup is tens of microseconds; a 30% band at that
#: scale would flap on every CI runner.
_LATENCY_NOISE_FLOOR_MS = 0.25

LEVELS = (10_000, 100_000, 1_000_000)
LEVELS_QUICK = (10_000,)
WARM_SAMPLES = 10_000
COLD_SAMPLES = 64
DHT_RINGS = (32, 64, 128)
DHT_RINGS_QUICK = (32,)
DHT_OPS_PER_RING = 64
DHT_CHURN_NODES = 64
DHT_CHURN_KEYS = 32
FORWARD_READS = 1_500
FORWARD_READS_QUICK = 200
#: fraction of names whose lease is still live in the purge scenario
PURGE_LIVE_FRACTION = 0.01


def _name_raw(i: int) -> bytes:
    return hashlib.sha256(b"bench-routing:%d" % i).digest()


def _percentiles(samples_ms: list[float]) -> dict:
    samples_ms.sort()
    n = len(samples_ms)
    return {
        "samples": n,
        "p50_ms": round(samples_ms[n // 2], 6),
        "p99_ms": round(samples_ms[min(n - 1, int(n * 0.99))], 6),
        "max_ms": round(samples_ms[-1], 6),
    }


def _shared_evidence():
    """One server identity whose metadata/RtCert all synthetic entries
    share — the interning pool stores it once, which is exactly the
    per-entry memory shape a real 1M-name domain has."""
    from repro.crypto.keys import SigningKey
    from repro.naming.metadata import make_server_metadata

    server = SigningKey.from_seed(b"bench-routing-server")
    server_md = make_server_metadata(server, server.public)
    return server_md


def _synthetic_entry(name_raw: bytes, server_md, expires_at=None):
    from repro.naming.names import GdpName
    from repro.routing.glookup import RouteEntry

    return RouteEntry(
        GdpName(name_raw),
        router=server_md.name,
        principal=server_md.name,
        principal_metadata=server_md,
        rtcert=None,
        chain=None,
        router_metadata=None,
        expires_at=expires_at,
    )


def _bench_fib_level(n: int) -> dict:
    """CompactFib at *n* names: fill rate, resident bytes/entry
    (tracemalloc delta over the fill), warm-hit latency."""
    import random

    from repro.naming.names import GdpName
    from repro.routing.fib import CompactFib

    names = [GdpName(_name_raw(i)) for i in range(n)]
    hop = object()
    clock = {"now": 0.0}
    tracemalloc.start()
    base = tracemalloc.get_traced_memory()[0]
    t0 = time.perf_counter()
    fib = CompactFib(clock=lambda: clock["now"])
    for name in names:
        fib[name] = (hop, 1e18)
    fib._map.compact()
    fill_seconds = time.perf_counter() - t0
    resident = tracemalloc.get_traced_memory()[0] - base
    tracemalloc.stop()

    rng = random.Random(20260807)
    probes = [names[rng.randrange(n)] for _ in range(WARM_SAMPLES)]
    get = fib.get
    latencies = []
    for name in probes:
        t0 = time.perf_counter()
        get(name)
        latencies.append((time.perf_counter() - t0) * 1000.0)
    return {
        "names": n,
        "fill_seconds": round(fill_seconds, 3),
        "fills_per_sec": round(n / fill_seconds, 1),
        "bytes_per_entry": round(resident / n, 1),
        "warm_get": _percentiles(latencies),
    }


def _bench_glookup_level(n: int, server_md) -> dict:
    """Packed GLookupService at *n* names (shared evidence, verification
    off — the registration crypto is the crypto suite's business):
    bytes/entry and warm lookup latency through RouteEntry rebuild."""
    import random

    from repro.naming.names import GdpName
    from repro.routing.glookup import GLookupService

    entries = [
        _synthetic_entry(_name_raw(i), server_md) for i in range(n)
    ]
    clock = {"now": 0.0}
    tracemalloc.start()
    base = tracemalloc.get_traced_memory()[0]
    t0 = time.perf_counter()
    service = GLookupService(
        "bench", verify_on_register=False, clock=lambda: clock["now"]
    )
    for entry in entries:
        service.register(entry)
    service._map.compact()
    fill_seconds = time.perf_counter() - t0
    resident = tracemalloc.get_traced_memory()[0] - base
    tracemalloc.stop()

    rng = random.Random(20260807)
    probes = [
        GdpName(_name_raw(rng.randrange(n))) for _ in range(WARM_SAMPLES)
    ]
    lookup = service.lookup
    latencies = []
    for name in probes:
        t0 = time.perf_counter()
        found = lookup(name)
        latencies.append((time.perf_counter() - t0) * 1000.0)
        if not found:
            raise RuntimeError("warm lookup missed a registered name")
    return {
        "names": n,
        "fill_seconds": round(fill_seconds, 3),
        "registers_per_sec": round(n / fill_seconds, 1),
        "bytes_per_entry": round(resident / n, 1),
        "evidence_records": len(service._pool),
        "warm_lookup": _percentiles(latencies),
    }


def _bench_cold_resolution() -> dict:
    """Full-evidence resolution: a local miss escalating to the parent
    tier, then chain verification before install (what a router pays on
    the first packet to a name)."""
    from repro.crypto.keys import SigningKey
    from repro.delegation.certs import AdCert, RtCert
    from repro.delegation.chain import ServiceChain
    from repro.naming.metadata import (
        make_capsule_metadata,
        make_router_metadata,
        make_server_metadata,
    )
    from repro.routing.glookup import GLookupService, RouteEntry

    owner = SigningKey.from_seed(b"bench-cold-owner")
    writer = SigningKey.from_seed(b"bench-cold-writer")
    server = SigningKey.from_seed(b"bench-cold-server")
    router = SigningKey.from_seed(b"bench-cold-router")
    server_md = make_server_metadata(server, server.public)
    router_md = make_router_metadata(router, router.public)
    rtcert = RtCert.issue(server, server_md.name, router_md.name)

    root = GLookupService("global")
    site = GLookupService("global.site", root)
    leaf = GLookupService("global.site.rack", site)
    names = []
    for i in range(COLD_SAMPLES):
        capsule_md = make_capsule_metadata(
            owner, writer.public, extra={"bench": i}
        )
        adcert = AdCert.issue(owner, capsule_md.name, server_md.name)
        chain = ServiceChain(capsule_md, adcert, server_md)
        entry = RouteEntry(
            capsule_md.name,
            router=router_md.name,
            principal=server_md.name,
            principal_metadata=server_md,
            rtcert=rtcert,
            chain=chain,
            router_metadata=router_md,
        )
        site.register(entry, propagate=True)
        names.append(capsule_md.name)

    latencies = []
    for name in names:
        t0 = time.perf_counter()
        _, found = leaf.lookup_recursive(name)
        for entry in found:
            entry.verify(now=0.0)
        latencies.append((time.perf_counter() - t0) * 1000.0)
        if not found:
            raise RuntimeError("cold resolution missed a registered name")
    return _percentiles(latencies)


def _bench_forwarding(quick: bool) -> dict:
    """End-to-end reads through a federated sim world: total data-PDU
    forwards per wall-clock second (packed-FIB hits on every hop)."""
    from repro.client import GdpClient, OwnerConsole
    from repro.crypto.keys import SigningKey
    from repro.server import DataCapsuleServer
    from repro.sim.topology import federated_campus

    reads = FORWARD_READS_QUICK if quick else FORWARD_READS
    topo = federated_campus(2, seed=7, routers_per_domain=2)
    net = topo.net
    server = DataCapsuleServer(net, "bench_srv")
    server.attach(topo.routers["site0_r1"], latency=0.001)
    writer_client = GdpClient(net, "bench_w")
    writer_client.attach(topo.routers["site0_r0"], latency=0.001)
    reader_client = GdpClient(net, "bench_r")
    reader_client.attach(topo.routers["site1_r1"], latency=0.001)
    owner = SigningKey.from_seed(b"bench-fwd-owner")
    writer_key = SigningKey.from_seed(b"bench-fwd-writer")
    console = OwnerConsole(writer_client, owner)

    def scenario():
        for endpoint in (server, writer_client, reader_client):
            yield endpoint.advertise()
        metadata = console.design_capsule(writer_key.public)
        yield from console.place_capsule(metadata, [server.metadata])
        yield 0.5
        writer = writer_client.open_writer(metadata, writer_key)
        yield from writer.append(b"bench-payload")
        for _ in range(reads):
            yield from reader_client.read(metadata.name, 1)
        return True

    t0 = time.perf_counter()
    net.sim.run_process(scenario())
    elapsed = time.perf_counter() - t0
    forwarded = sum(r.stats_forwarded for r in topo.routers.values())
    return {
        "reads": reads,
        "pdus_forwarded": forwarded,
        "wall_seconds": round(elapsed, 3),
        "pdus_per_sec": round(forwarded / elapsed, 1),
    }


def _bench_dht_ring(n_nodes: int) -> dict:
    """One Kademlia ring: sampled put/get traffic with per-query round
    accounting against the ceil(log2 n) + 2 bound."""
    from repro.naming.names import GdpName
    from repro.routing.dht import build_dht

    ring = build_dht(
        [
            GdpName(hashlib.sha256(b"bench-dht:%d:%d" % (n_nodes, i)).digest())
            for i in range(n_nodes)
        ],
        k=8,
    )
    vias = sorted(ring.nodes)
    bound = math.ceil(math.log2(n_nodes)) + 2
    hops, messages = [], []
    for i in range(DHT_OPS_PER_RING):
        key = GdpName(hashlib.sha256(b"bench-dht-key:%d" % i).digest())
        ring.put(vias[i % len(vias)], key, b"v%d" % i)
        hops.append(ring.last_hops)
        messages.append(ring.last_messages)
        values = ring.get(vias[(i * 7 + 3) % len(vias)], key)
        hops.append(ring.last_hops)
        messages.append(ring.last_messages)
        if b"v%d" % i not in values:
            raise RuntimeError("DHT get missed a stored key")
    return {
        "nodes": n_nodes,
        "operations": DHT_OPS_PER_RING * 2,
        "mean_hops": round(sum(hops) / len(hops), 2),
        "max_hops": max(hops),
        "hop_bound": bound,
        "mean_messages": round(sum(messages) / len(messages), 1),
    }


def _bench_dht_churn() -> dict:
    """The churn cell: store keys, crash up to k-1 of each key's holder
    nodes, and resolve through a surviving access point — every get must
    still return the value (k-replica durability is the design point,
    not luck).  Crashed holders restart between keys so churn windows
    stay at exactly k-1 dark replicas."""
    from repro.naming.names import GdpName
    from repro.routing.dht import build_dht

    n_nodes = DHT_CHURN_NODES
    ring = build_dht(
        [
            GdpName(
                hashlib.sha256(b"bench-dht-churn:%d" % i).digest()
            )
            for i in range(n_nodes)
        ],
        k=8,
    )
    vias = sorted(ring.nodes)
    survived = 0
    max_killed = 0
    hops = []
    for i in range(DHT_CHURN_KEYS):
        key = GdpName(
            hashlib.sha256(b"bench-dht-churn-key:%d" % i).digest()
        )
        value = b"churn%d" % i
        ring.put(vias[i % len(vias)], key, value)
        # God-mode holder census (bench harness, not protocol code).
        holders = [
            name
            for name in vias
            if ring.nodes[name].store.get(key)
        ]
        killed = []
        for holder in holders[: ring.k - 1]:
            node = ring.nodes[holder]
            if not node.crashed:
                node.crash()
                killed.append(node)
        max_killed = max(max_killed, len(killed))
        dark = {node.name for node in killed}
        via = next(name for name in vias if name not in dark)
        values = ring.get(via, key)
        hops.append(ring.last_hops)
        if value in values:
            survived += 1
        for node in killed:
            node.restart()
    return {
        "nodes": n_nodes,
        "keys": DHT_CHURN_KEYS,
        "replicas_killed_per_key": max_killed,
        "survived": survived,
        "mean_hops": round(sum(hops) / len(hops), 2),
        "survival": survived == DHT_CHURN_KEYS,
    }


def _bench_purge_level(n: int, server_md) -> dict:
    """Lease-wheel reclamation with PURGE_LIVE_FRACTION of names still
    live: wall time and per-expired-entry cost."""
    from repro.routing.glookup import GLookupService

    live_every = max(1, int(1 / PURGE_LIVE_FRACTION))
    clock = {"now": 0.0}
    service = GLookupService(
        "bench-purge", verify_on_register=False, clock=lambda: clock["now"]
    )
    for i in range(n):
        expires = 1e18 if i % live_every == 0 else 10.0 + (i % 50) * 0.01
        service.register(
            _synthetic_entry(_name_raw(i), server_md, expires_at=expires)
        )
    service._map.compact()
    expected = n - len(range(0, n, live_every))
    clock["now"] = 100.0
    t0 = time.perf_counter()
    purged = service.purge_expired()
    elapsed = time.perf_counter() - t0
    if purged != expected:
        raise RuntimeError(
            f"purge reclaimed {purged}, expected {expected}"
        )
    return {
        "names": n,
        "purged": purged,
        "live_after": len(service),
        "seconds": round(elapsed, 4),
        "us_per_expired": round(elapsed / purged * 1e6, 3),
    }


def run_bench(*, quick: bool = False, progress=None) -> dict:
    """Run every scenario; returns the BENCH_routing.json document."""

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    levels = LEVELS_QUICK if quick else LEVELS
    rings = DHT_RINGS_QUICK if quick else DHT_RINGS
    server_md = _shared_evidence()

    level_docs = []
    for n in levels:
        note(f"packed tables: {n:,} names (FIB)")
        fib = _bench_fib_level(n)
        note(f"packed tables: {n:,} names (GLookup)")
        glookup = _bench_glookup_level(n, server_md)
        level_docs.append({"names": n, "fib": fib, "glookup": glookup})

    note(f"cold resolution: {COLD_SAMPLES} signed chains")
    cold = _bench_cold_resolution()
    note("forwarding: federated sim world")
    forwarding = _bench_forwarding(quick)
    ring_docs = []
    for n_nodes in rings:
        note(f"dht ring: {n_nodes} nodes")
        ring_docs.append(_bench_dht_ring(n_nodes))
    note(f"dht churn: kill k-1 holders per key, {DHT_CHURN_KEYS} keys")
    churn = _bench_dht_churn()
    note("purge scaling: lease wheel with 1% live names")
    purge_small = _bench_purge_level(levels[0], server_md)
    purge_large = (
        purge_small
        if len(levels) == 1
        else _bench_purge_level(levels[-1], server_md)
    )

    top = level_docs[-1]
    gates = {
        "fib_bytes_per_entry": top["fib"]["bytes_per_entry"],
        "warm_resolution_p99_ms": top["glookup"]["warm_lookup"]["p99_ms"],
        "dht_hops_within_bound": all(
            ring["max_hops"] <= ring["hop_bound"] for ring in ring_docs
        ),
        "dht_churn_survival": churn["survival"],
        "purge_cost_ratio": round(
            purge_large["us_per_expired"]
            / max(purge_small["us_per_expired"], 1e-9),
            2,
        ),
    }
    return {
        "schema": "gdp-bench-routing/1",
        "quick": quick,
        "levels": level_docs,
        "cold_resolution": cold,
        "forwarding": forwarding,
        "dht": ring_docs,
        "dht_churn": churn,
        "purge": {
            "live_fraction": PURGE_LIVE_FRACTION,
            "small": purge_small,
            "large": purge_large,
        },
        "gates": gates,
    }


def check_regression(current: dict, baseline: dict) -> list[str]:
    """Compare a fresh run against the checked-in baseline; returns a
    list of failure strings (empty = gate passes).

    Absolute gates: FIB bytes/entry, warm resolution p99, the DHT hop
    bound, and the purge cost ratio (ISSUE acceptance criteria).
    Regression gates: bytes/entry and warm p99 compared level-by-level
    against matching levels in the baseline (a ``--quick`` run checks
    only its 10k level against the committed full baseline's 10k
    level), 30% tolerance.  Latency values under the noise floor are
    exempt from the band (but never from the absolute ceiling) —
    microsecond-scale percentile jitter is not a regression.
    """
    failures = []
    gates = current.get("gates", {})
    for key in ("fib_bytes_per_entry", "warm_resolution_p99_ms",
                "purge_cost_ratio"):
        value = gates.get(key)
        if value is None:
            failures.append(f"gates.{key}: missing from current run")
        elif value > GATED_LIMITS[key]:
            failures.append(
                f"gates.{key}: {value} exceeds the "
                f"{GATED_LIMITS[key]} ceiling"
            )
    if not gates.get("dht_hops_within_bound", False):
        failures.append(
            "gates.dht_hops_within_bound: a DHT lookup exceeded "
            "ceil(log2 n) + 2 iterative rounds"
        )
    if not gates.get("dht_churn_survival", False):
        failures.append(
            "gates.dht_churn_survival: a get failed after k-1 replica "
            "holders crashed"
        )
    base_levels = {
        doc.get("names"): doc for doc in baseline.get("levels", [])
    }
    for doc in current.get("levels", []):
        base = base_levels.get(doc.get("names"))
        if base is None:
            continue
        n = doc["names"]
        pairs = (
            (
                f"levels[{n}].fib.bytes_per_entry",
                doc["fib"]["bytes_per_entry"],
                base["fib"]["bytes_per_entry"],
                None,
            ),
            (
                f"levels[{n}].glookup.warm_lookup.p99_ms",
                doc["glookup"]["warm_lookup"]["p99_ms"],
                base["glookup"]["warm_lookup"]["p99_ms"],
                _LATENCY_NOISE_FLOOR_MS,
            ),
        )
        for label, cur_value, base_value, noise_floor in pairs:
            if noise_floor is not None and cur_value <= noise_floor:
                continue
            if cur_value > base_value * (1 + _REGRESSION_TOLERANCE):
                failures.append(
                    f"{label}: {cur_value} regressed >30% from "
                    f"baseline {base_value}"
                )
    return failures


def format_table(doc: dict) -> str:
    """Human-readable summary of a benchmark document."""
    lines = [
        "packed tables",
        "names        fib B/entry  fib p99 us   gl B/entry   gl p99 us",
        "-" * 62,
    ]
    for level in doc["levels"]:
        fib = level["fib"]
        gl = level["glookup"]
        lines.append(
            f"{level['names']:>10,}  {fib['bytes_per_entry']:>10.1f} "
            f"{fib['warm_get']['p99_ms'] * 1000:>11.1f} "
            f"{gl['bytes_per_entry']:>11.1f} "
            f"{gl['warm_lookup']['p99_ms'] * 1000:>11.1f}"
        )
    cold = doc["cold_resolution"]
    forwarding = doc["forwarding"]
    purge = doc["purge"]
    lines += [
        "",
        f"cold resolution ({cold['samples']} signed chains): "
        f"p50 {cold['p50_ms']:.2f}ms, p99 {cold['p99_ms']:.2f}ms",
        f"forwarding: {forwarding['pdus_forwarded']:,} PDUs in "
        f"{forwarding['wall_seconds']:.1f}s wall = "
        f"{forwarding['pdus_per_sec']:,.0f} PDU/s",
        "",
        "dht rings",
        "nodes   mean hops   max hops   bound   mean msgs",
        "-" * 48,
    ]
    for ring in doc["dht"]:
        lines.append(
            f"{ring['nodes']:>5} {ring['mean_hops']:>11.2f} "
            f"{ring['max_hops']:>10} {ring['hop_bound']:>7} "
            f"{ring['mean_messages']:>11.1f}"
        )
    churn = doc.get("dht_churn")
    if churn:
        lines.append(
            f"churn: {churn['survived']}/{churn['keys']} gets survived "
            f"{churn['replicas_killed_per_key']} dark holders "
            f"({churn['nodes']} nodes, mean {churn['mean_hops']:.2f} hops)"
        )
    lines += [
        "",
        f"purge ({purge['live_fraction']:.0%} live): "
        f"{purge['small']['us_per_expired']:.2f}us/entry @ "
        f"{purge['small']['names']:,} -> "
        f"{purge['large']['us_per_expired']:.2f}us/entry @ "
        f"{purge['large']['names']:,} "
        f"(ratio {doc['gates']['purge_cost_ratio']:.2f}x)",
    ]
    return "\n".join(lines)


def load_baseline(path: str) -> dict:
    """Read a BENCH_routing.json document from *path*."""
    with open(path) as fh:
        return json.load(fh)
