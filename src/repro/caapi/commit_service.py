"""Multi-writer support: the sharded distributed commit plane (§V-A).

"Multiple writers can be accommodated in two ways: (a) by using a
distributed commit service that accepts updates from multiple writers,
serializes them, and appends them to a DataCapsule ... In the first
case, such a distributed commit service is the single writer, and
represents a separation of write decisions from durability
responsibilities."

The plane has three pieces:

- :class:`CommitShard` — one serialization point.  It is the single
  writer of its own capsule-backed shard log; clients submit updates
  (op ``submit``), the shard authorizes them (submitter signature +
  ACL and/or a pluggable credential authorizer), serializes, appends
  through the normal writer path, and answers with the assigned seqno.
  Each committed record wraps the submitter identity, so provenance
  survives the indirection.  :class:`CommitService` is the single-shard
  surface (the pre-sharding API, unchanged).
- :class:`ShardedCommitService` — the front.  It owns N shards, routes
  ``submit`` by a deterministic key→shard hash, and serves a *signed*
  :class:`ShardMap` so clients can verify the shard set once and route
  directly (the front never becomes the choke point the sharding
  removed).
- **Optimistic concurrency** (SCL-style compare-seqno CAS): a
  submission may carry ``key`` + ``expect_seqno``.  The precondition is
  judged *at commit time in serialization order* — expect 0 means "key
  unwritten", expect n means "key last committed at shard seqno n" — and
  a losing submission is rejected with a conflict envelope carrying the
  winning seqno so the client can rebase and retry (with jittered
  backoff; see :meth:`CommitClient.submit_cas`).
"""

from __future__ import annotations

import random
import warnings
from typing import Any, Callable, Generator, Sequence

from repro import encoding
from repro.caapi.base import create_backed_capsule
from repro.client.client import ClientWriter, GdpClient
from repro.client.owner import OwnerConsole
from repro.crypto.hashing import sha256
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.errors import (
    AuthorizationError,
    CapsuleError,
    CommitConflictError,
    DelegationError,
    GdpError,
)
from repro.naming.metadata import Metadata
from repro.naming.names import GdpName
from repro.routing.pdu import Pdu
from repro.runtime.dispatch import dispatch_op, op, opt
from repro.sim.engine import Future
from repro.sim.net import SimNetwork

__all__ = [
    "CommitService",
    "CommitShard",
    "ShardedCommitService",
    "ShardMap",
    "CommitReceipt",
    "CommitClient",
    "shard_of",
    "submit_update",
    "build_submission",
    "read_committed",
    "read_committed_entry",
]

#: v1 signature domain: keyless submissions (the pre-CAS wire format)
_DOMAIN_SUBMIT = b"gdp.commit.submit"
#: v2 signature domain: keyed/CAS submissions — the precondition is
#: inside the signed preimage, so a relay cannot strip or alter it
_DOMAIN_SUBMIT_V2 = b"gdp.commit.submit.v2"
#: shard-map statements are signed by the front's (coordinator's) key
_DOMAIN_SHARD_MAP = b"gdp.commit.shardmap"
#: keyless submissions spread across shards by data hash under this tag
_DOMAIN_KEYLESS = b"gdp.commit.keyless"

#: sentinel for "no precondition" in the signed preimage / ground truth
NO_PRECONDITION = -1


def shard_of(key: str, shard_count: int) -> int:
    """Deterministic key→shard map: uniform hash over the key bytes."""
    if shard_count <= 1:
        return 0
    digest = sha256(key.encode("utf-8"))
    return int.from_bytes(digest[:8], "big") % shard_count


def _shard_of_bytes(data: bytes, shard_count: int) -> int:
    """Keyless submissions spread by content hash (no ordering contract
    across them, so any deterministic spread is correct)."""
    if shard_count <= 1:
        return 0
    digest = sha256(_DOMAIN_KEYLESS + data)
    return int.from_bytes(digest[:8], "big") % shard_count


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (removal scheduled for the "
        "next release)",
        DeprecationWarning,
        stacklevel=3,
    )


class CommitReceipt:
    """What an accepted submission produced (PR 4 envelope style).

    Attributes:
        seqno: the assigned sequence number in the shard log.
        acks: replica acknowledgments the backing append collected.
        shard: index of the shard that committed the update.
        capsule: the shard log's capsule name (``None`` when unknown).
        key: the CAS key the submission carried (``None`` for keyless).
        conflict: always ``None`` on a receipt — conflicts raise
            :class:`~repro.errors.CommitConflictError` instead; the
            attribute exists so envelope-shaped consumers can branch
            uniformly.
    """

    __slots__ = ("seqno", "acks", "shard", "capsule", "key", "conflict")

    def __init__(
        self,
        seqno: int,
        *,
        acks: int = 1,
        shard: int = 0,
        capsule: GdpName | None = None,
        key: str | None = None,
    ):
        self.seqno = seqno
        self.acks = acks
        self.shard = shard
        self.capsule = capsule
        self.key = key
        self.conflict = None

    # -- deprecation shims: submit_update used to return a bare int ----

    def __int__(self) -> int:
        _warn("int(CommitReceipt)", "CommitReceipt.seqno")
        return self.seqno

    def __index__(self) -> int:
        _warn("using a CommitReceipt as an integer", "CommitReceipt.seqno")
        return self.seqno

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, CommitReceipt):
            return (
                self.seqno == other.seqno
                and self.shard == other.shard
                and self.key == other.key
            )
        if isinstance(other, int):
            _warn(
                "comparing a CommitReceipt to an int",
                "CommitReceipt.seqno",
            )
            return self.seqno == other
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"CommitReceipt(seqno={self.seqno}, acks={self.acks}, "
            f"shard={self.shard}, key={self.key!r})"
        )


class ShardMap:
    """The signed shard routing record: version + per-shard (service
    endpoint name, shard-log capsule name), signed by the coordinator.

    A client verifies the statement once against the coordinator's key
    and then routes every submission directly to the owning shard —
    stale maps are self-healing because shards answer ``wrong_shard``
    with the correct index (see :meth:`CommitClient.submit`).
    """

    __slots__ = ("version", "services", "capsules", "signature")

    def __init__(
        self,
        version: int,
        services: Sequence[GdpName],
        capsules: Sequence[GdpName],
        signature: bytes = b"",
    ):
        if len(services) != len(capsules) or not services:
            raise CapsuleError("shard map needs one capsule per service")
        self.version = version
        self.services = tuple(services)
        self.capsules = tuple(capsules)
        self.signature = bytes(signature)

    @property
    def shard_count(self) -> int:
        """How many shards the plane runs."""
        return len(self.services)

    def shard_of(self, key: str) -> int:
        """The shard index owning *key*."""
        return shard_of(key, self.shard_count)

    def route(self, key: str | None, data: bytes = b"") -> int:
        """The shard index for a submission (keyed or keyless)."""
        if key is not None:
            return self.shard_of(key)
        return _shard_of_bytes(data, self.shard_count)

    def signing_preimage(self) -> bytes:
        """The exact bytes the coordinator signature covers."""
        return _DOMAIN_SHARD_MAP + encoding.encode([
            "shardmap",
            self.version,
            [name.raw for name in self.services],
            [name.raw for name in self.capsules],
        ])

    @classmethod
    def issue(
        cls,
        coordinator: SigningKey,
        version: int,
        services: Sequence[GdpName],
        capsules: Sequence[GdpName],
    ) -> "ShardMap":
        """Create and sign the statement."""
        unsigned = cls(version, services, capsules)
        return cls(
            version,
            services,
            capsules,
            coordinator.sign(unsigned.signing_preimage()),
        )

    def verify(self, coordinator_key: VerifyingKey) -> None:
        """Raise unless the coordinator signed exactly this map."""
        if not coordinator_key.verify(self.signing_preimage(), self.signature):
            raise DelegationError(
                "shard map signature does not verify against the "
                "coordinator key"
            )

    def to_wire(self) -> dict:
        """Wire-encodable representation."""
        return {
            "version": self.version,
            "services": [name.raw for name in self.services],
            "capsules": [name.raw for name in self.capsules],
            "signature": self.signature,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "ShardMap":
        """Rebuild from a wire form; raises on malformed input."""
        try:
            return cls(
                wire["version"],
                [GdpName(raw) for raw in wire["services"]],
                [GdpName(raw) for raw in wire["capsules"]],
                wire["signature"],
            )
        except (KeyError, TypeError) as exc:
            raise CapsuleError(f"malformed shard map: {exc}") from exc

    def __repr__(self) -> str:
        return f"ShardMap(v{self.version}, shards={self.shard_count})"


#: credential authorizer hook: (shard, submitter key bytes, key, payload)
#: -> None or raise AuthorizationError.  Runs after the signature/ACL
#: checks; the filesystem CAAPI uses it for per-path AdCert evidence.
Authorizer = Callable[["CommitShard", bytes, "str | None", dict], None]


class CommitShard(GdpClient):
    """One serialization point of the commit plane: the single writer
    of its own capsule-backed shard log (see module docstring)."""

    def __init__(
        self,
        network: SimNetwork,
        node_id: str,
        *,
        key: SigningKey | None = None,
        allowed_writers: Sequence[VerifyingKey] = (),
        shard_index: int = 0,
        shard_count: int = 1,
        authorizer: Authorizer | None = None,
    ):
        super().__init__(network, node_id, key=key)
        self.allowed_writers: set[bytes] = {
            k.to_bytes() for k in allowed_writers
        }
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.authorizer = authorizer
        self._writer: ClientWriter | None = None
        self._commit_chain: Future | None = None
        #: key -> shard-log seqno of its last committed mutation (the
        #: CAS register; rebuilt from the log on restart via replay)
        self._key_versions: dict[str, int] = {}
        #: ground truth for the ``commit_order`` oracle: every commit
        #: this shard ever acknowledged, in commit order
        self.commit_log: list[dict] = []
        metrics = network.metrics.node(node_id)
        self._c_committed = metrics.counter("commit.committed")
        self._c_rejected = metrics.counter("commit.rejected")
        self._c_conflicts = metrics.counter("commit.conflicts")

    # -- back-compat counter surface (PR 1 convention) ------------------

    @property
    def stats_committed(self) -> int:
        """Registry counter ``commit.committed`` (back-compat name)."""
        return self._c_committed.value

    @property
    def stats_rejected(self) -> int:
        """Registry counter ``commit.rejected`` (back-compat name)."""
        return self._c_rejected.value

    @property
    def stats_conflicts(self) -> int:
        """Registry counter ``commit.conflicts`` (back-compat name)."""
        return self._c_conflicts.value

    def allow_writer(self, key: VerifyingKey) -> None:
        """Add a key to the write ACL."""
        self.allowed_writers.add(key.to_bytes())

    def create_capsule(
        self,
        console: OwnerConsole,
        server_metadatas: Sequence[Metadata],
        *,
        scopes: Sequence[str] = (),
        acks: str = "any",
        label: str = "caapi.commit",
        extra: dict | None = None,
    ) -> Generator:
        """Create the backing shard log with *this service* as the
        single writer; returns its name."""
        metadata, writer = yield from create_backed_capsule(
            self,
            console,
            server_metadatas,
            writer_key=self.key,
            pointer_strategy="chain",
            label=label,
            extra={
                "caapi": "commit",
                "shard": self.shard_index,
                **(extra or {}),
            },
            scopes=scopes,
            acks=acks,
        )
        self._writer = writer
        return metadata.name

    @property
    def capsule_name(self) -> GdpName:
        """The backing shard log's name."""
        if self._writer is None:
            raise CapsuleError("commit shard has no capsule yet")
        return self._writer.capsule_name

    def version_of(self, key: str) -> int:
        """The shard-log seqno of *key*'s last committed mutation (0 =
        never written) — the value a CAS precondition compares against."""
        return self._key_versions.get(key, 0)

    # -- the service side -----------------------------------------------------

    def on_request(self, pdu: Pdu) -> Any:
        """Serve one application request through the shared op registry
        (same typed-payload validation as every other GDP node role)."""
        return dispatch_op(self, pdu, pdu.payload)

    @op(
        "submit",
        submitter=bytes,
        data=bytes,
        signature=object,
        key=opt(str),
        expect_seqno=opt(int),
        credential=opt(object),
    )
    def _op_submit(self, pdu: Pdu, payload: dict) -> Any:
        if self._writer is None:
            return {"ok": False, "error": "service not ready"}
        key = payload.get("key")
        if key is not None and self.shard_count > 1:
            owner = shard_of(key, self.shard_count)
            if owner != self.shard_index:
                self._c_rejected.inc()
                return {
                    "ok": False,
                    "wrong_shard": True,
                    "shard": owner,
                    "error": (
                        f"key {key!r} belongs to shard {owner}, "
                        f"this is shard {self.shard_index}"
                    ),
                }
        try:
            self._authorize(payload)
        except AuthorizationError as exc:
            self._c_rejected.inc()
            return {"ok": False, "error": str(exc)}
        return self._serialize_and_commit(pdu, payload)

    def _authorize(self, payload: dict) -> None:
        """Check the submitter's signature over the update (write access
        control at the commit point), then the optional credential
        authorizer (per-key delegation evidence, e.g. CapsuleFS path
        grants)."""
        try:
            submitter = VerifyingKey.from_bytes(payload["submitter"])
            data = payload["data"]
            signature = payload["signature"]
        except (KeyError, TypeError) as exc:
            raise AuthorizationError(f"malformed submission: {exc}") from exc
        if self.allowed_writers and submitter.to_bytes() not in self.allowed_writers:
            raise AuthorizationError("submitter is not on the write ACL")
        key = payload.get("key")
        preimage = _submission_preimage(
            self.capsule_name,
            data,
            key=key,
            expect_seqno=payload.get("expect_seqno"),
        )
        if not submitter.verify(preimage, signature):
            raise AuthorizationError("submission signature invalid")
        if self.authorizer is not None:
            self.authorizer(self, submitter.to_bytes(), key, payload)

    def _serialize_and_commit(self, pdu: Pdu, payload: dict) -> Future:
        """Append submissions strictly one at a time (the serialization
        responsibility the writer carries, §V-A); concurrent arrivals
        chain behind each other.  CAS preconditions are judged here —
        when the submission's turn in the serial order comes, against
        the then-current version — never at arrival time."""
        result = self.sim.future()
        previous = self._commit_chain
        self._commit_chain = result
        key = payload.get("key")
        expect = payload.get("expect_seqno")

        def run(_: Future | None = None) -> None:
            if key is not None and expect is not None and expect >= 0:
                current = self._key_versions.get(key, 0)
                if current != expect:
                    self._c_conflicts.inc()
                    result.resolve({
                        "ok": False,
                        "conflict": True,
                        "key": key,
                        "winning_seqno": current,
                        "expected": expect,
                        "shard": self.shard_index,
                        "error": (
                            f"commit conflict on {key!r}: expected "
                            f"seqno {expect}, key is at {current}"
                        ),
                    })
                    return
            entry = {
                "submitter": payload["submitter"],
                "data": payload["data"],
            }
            if key is not None:
                entry["key"] = key
                entry["shard"] = self.shard_index
            process = self.sim.spawn(
                self._writer.append(encoding.encode(entry)),
                name="commit.append",
            )

            def done(fut: Future) -> None:
                try:
                    receipt = fut.result()
                except Exception as exc:  # noqa: BLE001 — reported to client
                    result.resolve({"ok": False, "error": str(exc)})
                    return
                if key is not None:
                    self._key_versions[key] = receipt.seqno
                self._c_committed.inc()
                self.commit_log.append({
                    "seqno": receipt.seqno,
                    "key": key,
                    "expect": NO_PRECONDITION if expect is None else expect,
                    "submitter": payload["submitter"],
                })
                result.resolve({
                    "ok": True,
                    "seqno": receipt.seqno,
                    "acks": receipt.acks,
                    "shard": self.shard_index,
                })

            process.completion.add_callback(done)

        if previous is None or previous.done:
            run()
        else:
            previous.add_callback(run)
        return result


class CommitService(CommitShard):
    """The single-shard commit service: the pre-sharding surface, now a
    1-shard special case of the plane (§V-A's "distributed commit
    service" in its simplest deployment)."""

    def __init__(
        self,
        network: SimNetwork,
        node_id: str,
        *,
        key: SigningKey | None = None,
        allowed_writers: Sequence[VerifyingKey] = (),
        authorizer: Authorizer | None = None,
    ):
        super().__init__(
            network,
            node_id,
            key=key,
            allowed_writers=allowed_writers,
            shard_index=0,
            shard_count=1,
            authorizer=authorizer,
        )


class ShardedCommitService(GdpClient):
    """The commit-plane front: routes ``submit`` by the deterministic
    key→shard map and serves the signed :class:`ShardMap` so clients can
    verify once and route directly."""

    def __init__(
        self,
        network: SimNetwork,
        node_id: str,
        shards: Sequence[CommitShard],
        *,
        key: SigningKey | None = None,
    ):
        super().__init__(network, node_id, key=key)
        if not shards:
            raise CapsuleError("a commit plane needs at least one shard")
        self.shards = list(shards)
        for index, shard in enumerate(self.shards):
            shard.shard_index = index
            shard.shard_count = len(self.shards)
        self._map: ShardMap | None = None
        metrics = network.metrics.node(node_id)
        self._c_routed = metrics.counter("commit.routed")
        self._c_map_served = metrics.counter("commit.map_served")

    @property
    def shard_map(self) -> ShardMap:
        """The current signed shard map."""
        if self._map is None:
            raise CapsuleError("commit plane not created yet")
        return self._map

    def allow_writer(self, key: VerifyingKey) -> None:
        """Add a key to every shard's write ACL."""
        for shard in self.shards:
            shard.allow_writer(key)

    def create(
        self,
        console: OwnerConsole,
        server_metadatas: Sequence[Metadata],
        *,
        scopes: Sequence[str] = (),
        acks: str = "any",
        per_shard_servers: Sequence[Sequence[Metadata]] | None = None,
    ) -> Generator:
        """Create every shard's backing log and sign the shard map;
        returns the :class:`ShardMap`.  ``per_shard_servers`` assigns a
        distinct replica set per shard (the scaling deployment — shard
        logs on disjoint servers append in parallel)."""
        capsules: list[GdpName] = []
        for index, shard in enumerate(self.shards):
            servers = (
                per_shard_servers[index]
                if per_shard_servers is not None
                else server_metadatas
            )
            name = yield from shard.create_capsule(
                console, servers, scopes=scopes, acks=acks
            )
            capsules.append(name)
        self._map = ShardMap.issue(
            self.key,
            1,
            [shard.name for shard in self.shards],
            capsules,
        )
        return self._map

    def on_request(self, pdu: Pdu) -> Any:
        """Serve one application request through the shared op registry."""
        return dispatch_op(self, pdu, pdu.payload)

    @op("shard_map")
    def _op_shard_map(self, pdu: Pdu, payload: dict) -> Any:
        if self._map is None:
            return {"ok": False, "error": "service not ready"}
        self._c_map_served.inc()
        return {"ok": True, "map": self._map.to_wire()}

    @op(
        "submit",
        submitter=bytes,
        data=bytes,
        signature=object,
        key=opt(str),
        expect_seqno=opt(int),
        credential=opt(object),
    )
    def _op_submit(self, pdu: Pdu, payload: dict) -> Any:
        """Route a submission to its owning shard and relay the reply
        (for clients that have not fetched the shard map; map holders
        skip this hop entirely)."""
        if self._map is None:
            return {"ok": False, "error": "service not ready"}
        index = self._map.route(payload.get("key"), payload["data"])
        self._c_routed.inc()
        result = self.sim.future()
        target = self.shards[index].name

        def forward() -> Generator:
            try:
                reply = yield self.rpc(target, dict(payload), timeout=30.0)
            except GdpError as exc:
                result.resolve({
                    "ok": False,
                    "error": f"shard {index} unreachable: {exc}",
                })
                return
            body = reply.get("body", reply) if isinstance(reply, dict) else reply
            result.resolve(body)

        self.sim.spawn(forward(), name=f"commit.route:{index}")
        return result


def _submission_preimage(
    capsule_name: GdpName,
    data: bytes,
    *,
    key: str | None = None,
    expect_seqno: int | None = None,
) -> bytes:
    """The bytes a submitter signs.  Keyless submissions keep the v1
    domain (wire compatibility); keyed submissions sign the v2 domain
    covering the key and precondition, so neither can be stripped or
    rewritten between submitter and shard."""
    if key is None:
        return _DOMAIN_SUBMIT + encoding.encode([capsule_name.raw, data])
    expect = NO_PRECONDITION if expect_seqno is None else expect_seqno
    return _DOMAIN_SUBMIT_V2 + encoding.encode(
        [capsule_name.raw, key, expect, data]
    )


def build_submission(
    signing_key: SigningKey,
    capsule_name: GdpName,
    data: bytes,
    *,
    key: str | None = None,
    expect_seqno: int | None = None,
    credential: dict | None = None,
) -> dict:
    """The signed ``submit`` payload for one update."""
    payload = {
        "op": "submit",
        "submitter": signing_key.public.to_bytes(),
        "data": data,
        "signature": signing_key.sign(
            _submission_preimage(
                capsule_name, data, key=key, expect_seqno=expect_seqno
            )
        ),
    }
    if key is not None:
        payload["key"] = key
        if expect_seqno is not None:
            payload["expect_seqno"] = expect_seqno
    if credential is not None:
        payload["credential"] = credential
    return payload


def _reply_body(reply: Any) -> dict:
    return reply.get("body", reply) if isinstance(reply, dict) else reply


def _raise_rejection(body: dict, key: str | None) -> None:
    """Map a rejection envelope to the right exception."""
    if body.get("conflict"):
        raise CommitConflictError(
            body.get("key", key or ""),
            body.get("winning_seqno", 0),
            body.get("expected", 0),
        )
    raise CapsuleError(body.get("error", "commit rejected"))


class CommitClient:
    """Client-side routing for the commit plane.

    Fetches and verifies the signed shard map once, then submits
    directly to the owning shard.  A ``wrong_shard`` answer (stale map
    after a re-shard) refreshes the map and retries once; a conflict
    raises :class:`~repro.errors.CommitConflictError` with the winning
    seqno so callers can rebase (or use :meth:`submit_cas`, which
    retries with jittered exponential backoff).
    """

    def __init__(
        self,
        client: GdpClient,
        front_name: GdpName,
        *,
        coordinator_key: VerifyingKey | None = None,
        rng: random.Random | None = None,
    ):
        self.client = client
        self.front_name = front_name
        self.coordinator_key = coordinator_key
        self._map: ShardMap | None = None
        self._rng = rng or random.Random(
            f"commit-client:{client.node_id}"
        )

    @property
    def shard_map(self) -> ShardMap | None:
        """The verified shard map, if fetched."""
        return self._map

    def backoff_delay(
        self, attempt: int, *, base_delay: float = 0.05
    ) -> float:
        """Jittered exponential backoff for CAS retry *attempt* (0-based).
        Jitter is drawn from this client's own seeded stream, so retry
        schedules stay deterministic per client in simulation."""
        return (
            base_delay * (2 ** min(attempt, 6)) * (0.5 + self._rng.random())
        )

    def fetch_map(self, *, timeout: float = 30.0) -> Generator:
        """Fetch + verify the shard map from the front; returns it."""
        reply = yield self.client.rpc(
            self.front_name, {"op": "shard_map"}, timeout=timeout
        )
        body = _reply_body(reply)
        if not body.get("ok"):
            raise CapsuleError(body.get("error", "no shard map"))
        shard_map = ShardMap.from_wire(body["map"])
        if self.coordinator_key is not None:
            shard_map.verify(self.coordinator_key)
        self._map = shard_map
        return shard_map

    def _submit_to(
        self,
        index: int,
        data: bytes,
        key: str | None,
        expect_seqno: int | None,
        credential: dict | None,
        timeout: float,
    ) -> Generator:
        payload = build_submission(
            self.client.key,
            self._map.capsules[index],
            data,
            key=key,
            expect_seqno=expect_seqno,
            credential=credential,
        )
        reply = yield self.client.rpc(
            self._map.services[index], payload, timeout=timeout
        )
        return _reply_body(reply)

    def submit(
        self,
        data: bytes,
        *,
        key: str | None = None,
        expect_seqno: int | None = None,
        credential: dict | None = None,
        timeout: float = 30.0,
    ) -> Generator:
        """Submit one update; returns a :class:`CommitReceipt`.  Raises
        :class:`~repro.errors.CommitConflictError` when a CAS
        precondition lost, :class:`~repro.errors.CapsuleError` on any
        other rejection."""
        if self._map is None:
            yield from self.fetch_map(timeout=timeout)
        index = self._map.route(key, data)
        body = yield from self._submit_to(
            index, data, key, expect_seqno, credential, timeout
        )
        if body.get("wrong_shard"):
            # Stale map (the plane re-sharded): refresh and retry once.
            yield from self.fetch_map(timeout=timeout)
            index = self._map.route(key, data)
            body = yield from self._submit_to(
                index, data, key, expect_seqno, credential, timeout
            )
        if not body.get("ok"):
            _raise_rejection(body, key)
        return CommitReceipt(
            body["seqno"],
            acks=body.get("acks", 1),
            shard=body.get("shard", index),
            capsule=self._map.capsules[body.get("shard", index)],
            key=key,
        )

    def submit_cas(
        self,
        key: str,
        build: Callable[[int], bytes],
        *,
        expect_seqno: int = 0,
        attempts: int = 8,
        base_delay: float = 0.05,
        credential: dict | None = None,
        timeout: float = 30.0,
    ) -> Generator:
        """The rebase/retry loop: ``build(current_seqno)`` produces the
        update payload against the version the key is currently at; a
        conflict rebases onto the winning seqno and retries after a
        jittered exponential backoff.  Returns the winning
        :class:`CommitReceipt` or re-raises the final conflict."""
        expect = expect_seqno
        conflict: CommitConflictError | None = None
        for attempt in range(attempts):
            try:
                receipt = yield from self.submit(
                    build(expect),
                    key=key,
                    expect_seqno=expect,
                    credential=credential,
                    timeout=timeout,
                )
                return receipt
            except CommitConflictError as exc:
                conflict = exc
                expect = exc.winning_seqno
                yield self.backoff_delay(attempt, base_delay=base_delay)
        raise conflict


def submit_update(
    client: GdpClient,
    service_name: GdpName,
    capsule_name: GdpName,
    data: bytes,
    *,
    key: str | None = None,
    expect_seqno: int | None = None,
    credential: dict | None = None,
    timeout: float = 30.0,
) -> Generator:
    """Client-side submission to a commit service; returns a
    :class:`CommitReceipt` (which still compares equal to the bare
    seqno int through a deprecation shim)."""
    payload = build_submission(
        client.key,
        capsule_name,
        data,
        key=key,
        expect_seqno=expect_seqno,
        credential=credential,
    )
    reply = yield client.rpc(service_name, payload, timeout=timeout)
    body = _reply_body(reply)
    if not body.get("ok"):
        _raise_rejection(body, key)
    return CommitReceipt(
        body["seqno"],
        acks=body.get("acks", 1),
        shard=body.get("shard", 0),
        capsule=capsule_name,
        key=key,
    )


def read_committed(record_payload: bytes) -> tuple[bytes, bytes]:
    """Unwrap a committed record: ``(submitter key bytes, data)`` —
    provenance through the commit indirection."""
    entry = encoding.decode(record_payload)
    return entry["submitter"], entry["data"]


def read_committed_entry(record_payload: bytes) -> dict:
    """Unwrap a committed record with full provenance: ``submitter`` /
    ``data`` plus ``key`` / ``shard`` for keyed submissions (None for
    keyless v1 records)."""
    entry = encoding.decode(record_payload)
    return {
        "submitter": entry["submitter"],
        "data": entry["data"],
        "key": entry.get("key"),
        "shard": entry.get("shard"),
    }
