"""Multi-writer support: the distributed commit service (§V-A).

"Multiple writers can be accommodated in two ways: (a) by using a
distributed commit service that accepts updates from multiple writers,
serializes them, and appends them to a DataCapsule ... In the first
case, such a distributed commit service is the single writer, and
represents a separation of write decisions from durability
responsibilities."

:class:`CommitService` is a GDP endpoint that *is* the capsule's single
writer.  Clients submit updates (op ``submit``); the service authorizes
them against an owner-maintained ACL, serializes in arrival order,
appends through the normal writer path, and returns the assigned
sequence number.  Each committed record wraps the submitter identity, so
provenance survives the indirection.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro import encoding
from repro.client.client import ClientWriter, GdpClient
from repro.client.owner import OwnerConsole
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.errors import AuthorizationError, CapsuleError
from repro.naming.metadata import Metadata
from repro.naming.names import GdpName
from repro.routing.pdu import Pdu
from repro.runtime.dispatch import dispatch_op, op
from repro.sim.engine import Future
from repro.sim.net import SimNetwork

__all__ = ["CommitService", "submit_update"]


class CommitService(GdpClient):
    """A serialization point turning a single-writer capsule into a
    multi-writer repository."""

    def __init__(
        self,
        network: SimNetwork,
        node_id: str,
        *,
        key: SigningKey | None = None,
        allowed_writers: Sequence[VerifyingKey] = (),
    ):
        super().__init__(network, node_id, key=key)
        self.allowed_writers: set[bytes] = {
            k.to_bytes() for k in allowed_writers
        }
        self._writer: ClientWriter | None = None
        self._commit_chain: Future | None = None
        self.stats_committed = 0
        self.stats_rejected = 0

    def allow_writer(self, key: VerifyingKey) -> None:
        """Add a key to the write ACL."""
        self.allowed_writers.add(key.to_bytes())

    def create_capsule(
        self,
        console: OwnerConsole,
        server_metadatas: Sequence[Metadata],
        *,
        scopes: Sequence[str] = (),
        acks: str = "any",
    ) -> Generator:
        """Create the backing capsule with *this service* as the single
        writer; returns its name."""
        metadata = console.design_capsule(
            self.key.public,
            pointer_strategy="chain",
            label="caapi.commit",
            extra={"caapi": "commit"},
        )
        yield from console.place_capsule(
            metadata, server_metadatas, scopes=scopes
        )
        self._writer = self.open_writer(metadata, self.key, acks=acks)
        yield 0.2
        return metadata.name

    @property
    def capsule_name(self) -> GdpName:
        """The backing capsule's name."""
        if self._writer is None:
            raise CapsuleError("commit service has no capsule yet")
        return self._writer.capsule_name

    # -- the service side -----------------------------------------------------

    def on_request(self, pdu: Pdu) -> Any:
        """Serve one application request through the shared op registry
        (same typed-payload validation as every other GDP node role)."""
        return dispatch_op(self, pdu, pdu.payload)

    @op("submit", submitter=bytes, data=bytes, signature=object)
    def _op_submit(self, pdu: Pdu, payload: dict) -> Any:
        if self._writer is None:
            return {"ok": False, "error": "service not ready"}
        try:
            self._authorize(payload)
        except AuthorizationError as exc:
            self.stats_rejected += 1
            return {"ok": False, "error": str(exc)}
        return self._serialize_and_commit(pdu, payload)

    def _authorize(self, payload: dict) -> None:
        """Check the submitter's signature over the update (write access
        control at the commit point)."""
        try:
            submitter = VerifyingKey.from_bytes(payload["submitter"])
            data = payload["data"]
            signature = payload["signature"]
        except (KeyError, TypeError) as exc:
            raise AuthorizationError(f"malformed submission: {exc}") from exc
        if self.allowed_writers and submitter.to_bytes() not in self.allowed_writers:
            raise AuthorizationError("submitter is not on the write ACL")
        preimage = b"gdp.commit.submit" + encoding.encode(
            [self.capsule_name.raw, data]
        )
        if not submitter.verify(preimage, signature):
            raise AuthorizationError("submission signature invalid")

    def _serialize_and_commit(self, pdu: Pdu, payload: dict) -> Future:
        """Append submissions strictly one at a time (the serialization
        responsibility the writer carries, §V-A); concurrent arrivals
        chain behind each other."""
        result = self.sim.future()
        previous = self._commit_chain
        self._commit_chain = result

        def run(_: Future | None = None) -> None:
            wrapped = encoding.encode(
                {"submitter": payload["submitter"], "data": payload["data"]}
            )
            process = self.sim.spawn(
                self._writer.append(wrapped), name="commit.append"
            )

            def done(fut: Future) -> None:
                try:
                    receipt = fut.result()
                except Exception as exc:  # noqa: BLE001 — reported to client
                    result.resolve({"ok": False, "error": str(exc)})
                    return
                self.stats_committed += 1
                result.resolve(
                    {"ok": True, "seqno": receipt.seqno, "acks": receipt.acks}
                )

            process.completion.add_callback(done)

        if previous is None or previous.done:
            run()
        else:
            previous.add_callback(run)
        return result


def submit_update(
    client: GdpClient,
    service_name: GdpName,
    capsule_name: GdpName,
    data: bytes,
    *,
    timeout: float = 30.0,
) -> Generator:
    """Client-side submission to a commit service; returns the assigned
    seqno."""
    preimage = b"gdp.commit.submit" + encoding.encode([capsule_name.raw, data])
    reply = yield client.rpc(
        service_name,
        {
            "op": "submit",
            "submitter": client.key.public.to_bytes(),
            "data": data,
            "signature": client.key.sign(preimage),
        },
        timeout=timeout,
    )
    body = reply.get("body", reply) if isinstance(reply, dict) else reply
    if not body.get("ok"):
        raise CapsuleError(body.get("error", "commit rejected"))
    return body["seqno"]


def read_committed(record_payload: bytes) -> tuple[bytes, bytes]:
    """Unwrap a committed record: ``(submitter key bytes, data)`` —
    provenance through the commit indirection."""
    entry = encoding.decode(record_payload)
    return entry["submitter"], entry["data"]
