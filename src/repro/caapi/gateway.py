"""Web gateway CAAPI (§VIII): GDP access for legacy clients.

The Berkeley deployment ran "web gateways using REST and websockets" so
browsers and plain HTTP tooling could reach capsules without speaking
the GDP protocol.  This module reproduces that boundary: a
:class:`GatewayService` is a GDP endpoint that accepts *HTTP-shaped*
requests (method + path + body dicts standing in for REST) from
non-GDP nodes attached to it, performs fully verified GDP operations on
their behalf, and returns JSON-shaped responses.  "Websocket" push is a
persistent legacy-node registration fed from a GDP subscription.

The trust trade-off is the real one: a legacy client trusts its gateway
(exactly as a browser trusts its TLS terminator); the gateway itself
trusts nothing — every record it relays was proof-checked first, so a
compromised *infrastructure* still cannot feed garbage through an
honest gateway.

Routes:

====================================  ==================================
``GET  /capsule/<hex>/record/<n>``    verified single-record read
``GET  /capsule/<hex>/latest``        verified newest record
``GET  /capsule/<hex>/range/<a>/<b>`` verified range read
``GET  /capsule/<hex>/metadata``      capsule metadata (verified)
``WS   /capsule/<hex>/subscribe``     verified live push to the client
====================================  ==================================
"""

from __future__ import annotations

from typing import Any, Generator

from repro.caapi.commit_service import CommitClient
from repro.client.client import GdpClient
from repro.errors import CommitConflictError, GdpError
from repro.naming.names import GdpName
from repro.runtime.dispatch import handles, resolve_route
from repro.sim.net import Link, Node, SimNetwork

__all__ = ["GatewayService", "LegacyHttpClient"]


class GatewayService(GdpClient):
    """A GDP client that serves HTTP-shaped requests from legacy nodes.

    Legacy nodes attach with ordinary links and send
    ``{"method", "path", "reply_to"}`` dicts; responses are
    ``{"status", "body"}`` dicts.  Subscriptions push
    ``{"event": "record", ...}`` frames.
    """

    def __init__(self, network: SimNetwork, node_id: str, **kwargs):
        super().__init__(network, node_id, **kwargs)
        self._ws_subscribers: dict[GdpName, list[Node]] = {}
        self._commit: CommitClient | None = None
        metrics = network.metrics.node(node_id)
        self._c_http_ok = metrics.counter("gateway.http_ok")
        self._c_http_errors = metrics.counter("gateway.http_errors")
        self._c_pushes = metrics.counter("gateway.pushes")
        self._c_commits = metrics.counter("gateway.commits")

    def attach_commit(self, commit: CommitClient) -> None:
        """Expose a commit plane to legacy clients via
        ``POST /commit/submit/<key>`` (body: ``{"data_hex", and optional
        "expect_seqno"}``).  Submissions are signed with the *gateway's*
        key — the legacy client trusts its terminator, exactly as for
        reads — so the gateway's key must be on the shards' write ACL."""
        self._commit = commit

    @property
    def stats_http(self) -> dict:
        """Counter snapshot, keyed by the historical short names
        (registry names: ``gateway.http_ok`` etc.)."""
        return {
            "ok": self._c_http_ok.value,
            "errors": self._c_http_errors.value,
            "pushes": self._c_pushes.value,
        }

    # -- legacy-side transport ------------------------------------------------

    def receive(self, message: Any, sender: Node, link: Link) -> None:
        """Inbound message dispatch (overrides the base handler)."""
        if isinstance(message, dict) and "method" in message:
            self.sim.spawn(
                self._serve_http(message, sender),
                name=f"gateway:{message.get('path')}",
            )
            return
        super().receive(message, sender, link)

    def _reply(self, client: Node, request: dict, status: int, body: Any) -> None:
        response = {
            "id": request.get("id"),
            "status": status,
            "body": body,
        }
        if status == 200:
            self._c_http_ok.inc()
        else:
            self._c_http_errors.inc()
        self.send(client, response, 200 + len(repr(body)))

    # -- request routing --------------------------------------------------------

    def _serve_http(self, request: dict, client: Node) -> Generator:
        """Route an HTTP-shaped request through the ``"http"`` dispatch
        space: routes are keyed ``"<METHOD> <leaf>"`` and declare their
        expected path arity in route metadata; trailing path segments
        become integer arguments."""
        method = request.get("method", "GET")
        parts = [p for p in str(request.get("path", "")).split("/") if p]
        try:
            if parts and parts[0] == "commit":
                yield from self._serve_commit(client, request, method, parts)
                return
            if len(parts) >= 2 and parts[0] == "capsule":
                name = GdpName.from_hex(parts[1])
                route = resolve_route(self, method, parts[2:])
                if route is not None:
                    handler, extra = route
                    yield from handler(client, request, name, *extra)
                    return
            self._reply(client, request, 404, {"error": "no such route"})
        except (GdpError, ValueError) as exc:
            self._reply(
                client, request, 502,
                {"error": f"{type(exc).__name__}: {exc}"},
            )

    def _serve_commit(
        self, client: Node, request: dict, method: str, parts: list
    ) -> Generator:
        """``POST /commit/submit/<key...>`` — submit through the
        attached commit plane (409 on a CAS conflict, carrying the
        winning seqno so the legacy client can rebase)."""
        if self._commit is None:
            self._reply(
                client, request, 404, {"error": "no commit plane attached"}
            )
            return
        if method != "POST" or len(parts) < 2 or parts[1] != "submit":
            self._reply(client, request, 404, {"error": "no such route"})
            return
        key = "/".join(parts[2:]) or None
        body = request.get("body") or {}
        data = bytes.fromhex(str(body.get("data_hex", "")))
        expect = body.get("expect_seqno")
        try:
            receipt = yield from self._commit.submit(
                data, key=key, expect_seqno=expect
            )
        except CommitConflictError as exc:
            self._reply(
                client, request, 409,
                {
                    "conflict": True,
                    "key": exc.key,
                    "winning_seqno": exc.winning_seqno,
                    "expected": exc.expected,
                },
            )
            return
        self._c_commits.inc()
        self._reply(
            client, request, 200,
            {
                "seqno": receipt.seqno,
                "shard": receipt.shard,
                "acks": receipt.acks,
            },
        )

    # -- handlers ---------------------------------------------------------------

    @staticmethod
    def _record_json(record) -> dict:
        return {
            "seqno": record.seqno,
            "payload_hex": record.payload.hex(),
            "digest_hex": record.digest.hex(),
        }

    @handles("http", "GET record", meta={"arity": 2})
    def _get_record(self, client, request, name, seqno) -> Generator:
        result = yield from self.read(name, seqno)
        self._reply(client, request, 200, self._record_json(result.record))

    @handles("http", "GET latest", meta={"arity": 1})
    def _get_latest(self, client, request, name) -> Generator:
        result = yield from self.read_latest(name)
        if result is None:
            self._reply(client, request, 200, {"empty": True})
        else:
            self._reply(client, request, 200, self._record_json(result.record))

    @handles("http", "GET range", meta={"arity": 3})
    def _get_range(self, client, request, name, first, last) -> Generator:
        result = yield from self.read_range(name, first, last)
        self._reply(
            client, request, 200,
            {"records": [self._record_json(r) for r in result.records]},
        )

    @handles("http", "GET metadata", meta={"arity": 1})
    def _get_metadata(self, client, request, name) -> Generator:
        metadata = yield from self.fetch_metadata(name)
        properties = {
            key: (value.hex() if isinstance(value, bytes) else value)
            for key, value in metadata.properties.items()
        }
        self._reply(
            client, request, 200,
            {"kind": metadata.kind, "properties": properties},
        )

    @handles("http", "WS subscribe", meta={"arity": 1})
    def _subscribe(self, client, request, name) -> Generator:
        subscribers = self._ws_subscribers.setdefault(name, [])
        first_for_capsule = not subscribers
        subscribers.append(client)
        if first_for_capsule:
            def fan_out(record, heartbeat, _name=name):
                frame = {"event": "record", **self._record_json(record)}
                for legacy in self._ws_subscribers.get(_name, []):
                    self._c_pushes.inc()
                    self.send(legacy, dict(frame), 200 + len(record.payload) * 2)

            yield from super().subscribe(name, fan_out)
        self._reply(client, request, 200, {"subscribed": True})


class LegacyHttpClient(Node):
    """A plain node that speaks only the HTTP-shaped dialect."""

    def __init__(self, network: SimNetwork, node_id: str):
        super().__init__(network, node_id)
        self.gateway: GatewayService | None = None
        self._pending: dict[int, Any] = {}
        self._next_id = 0
        self.events: list[dict] = []

    def connect_to(self, gateway: GatewayService, **link_kwargs) -> None:
        """Attach to a gateway over a plain link."""
        defaults = {"latency": 0.002, "bandwidth": 12_500_000.0}
        defaults.update(link_kwargs)
        self.network.connect(self, gateway, **defaults)
        self.gateway = gateway

    def request(self, method: str, path: str, body: Any = None):
        """Send a request; returns a future of ``{"status", "body"}``."""
        if self.gateway is None:
            raise RuntimeError("not connected to a gateway")
        self._next_id += 1
        request_id = self._next_id
        future = self.sim.future()
        self._pending[request_id] = future
        message = {"method": method, "path": path, "id": request_id}
        if body is not None:
            message["body"] = body
        self.send(
            self.gateway, message, 200 + len(path) + len(repr(body or ""))
        )
        return self.sim.timeout(future, 30.0, f"{method} {path}")

    def receive(self, message: Any, sender: Node, link: Link) -> None:
        """Inbound message dispatch (overrides the base handler)."""
        if not isinstance(message, dict):
            return
        if message.get("event"):
            self.events.append(message)
            return
        future = self._pending.pop(message.get("id"), None)
        if future is not None and not future.done:
            future.resolve(message)
