"""The shared CAAPI lifecycle: one base class instead of six copies.

Every CAAPI ("Common Access API", §V-B) fronts one capsule with the
same bootstrap dance: design metadata with an owner console, place it
on a server set, open the single writer, let the re-advertisements
land.  Before this module each CAAPI re-implemented those ~40 lines
with drifting signatures (``stream`` had no ``acks=``, ``audit`` no
``mount()``...).  :class:`CapsuleApp` is the one copy: subclasses
declare their capsule shape (label, pointer strategy, metadata extras)
and inherit a uniform ``create()`` / ``mount()`` / ``name`` surface
with consistent ``writer_key=`` / ``scopes=`` / ``acks=`` kwargs.

Service-side CAAPIs (commit shards, aggregation) are themselves
:class:`~repro.client.client.GdpClient` endpoints rather than wrappers
around one; they share the same bootstrap through
:func:`create_backed_capsule`.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.client.client import ClientWriter, GdpClient
from repro.client.owner import OwnerConsole
from repro.crypto.keys import SigningKey
from repro.errors import CapsuleError
from repro.naming.metadata import Metadata
from repro.naming.names import GdpName

__all__ = ["CapsuleApp", "create_backed_capsule"]

#: settle time after placement: lets the servers' capsule
#: re-advertisements land before the first operation routes by name
SETTLE_SECONDS = 0.2


def create_backed_capsule(
    client: GdpClient,
    console: OwnerConsole,
    server_metadatas: Sequence[Metadata],
    *,
    writer_key: SigningKey,
    pointer_strategy: str,
    label: str,
    extra: dict | None = None,
    scopes: Sequence[str] = (),
    acks: str = "any",
) -> Generator:
    """The one capsule-bootstrap sequence every CAAPI shares: design,
    place, open the writer, settle.  Returns ``(metadata, writer)``."""
    metadata = console.design_capsule(
        writer_key.public,
        pointer_strategy=pointer_strategy,
        label=label,
        extra=dict(extra or {}),
    )
    yield from console.place_capsule(
        metadata, server_metadatas, scopes=scopes
    )
    writer = client.open_writer(metadata, writer_key, acks=acks)
    yield SETTLE_SECONDS
    return metadata, writer


class CapsuleApp:
    """Base class for client-side CAAPIs backed by one capsule.

    Subclasses set :attr:`CAAPI_KIND` / :attr:`CAAPI_LABEL` /
    :attr:`WRITER_SEED` and override :meth:`_pointer_strategy` /
    :meth:`_design_extra` to describe their capsule; the lifecycle
    (``create`` / ``mount`` / ``name``) comes from here.
    """

    #: value of the ``caapi`` metadata extra (subsystem discriminator)
    CAAPI_KIND = "app"
    #: human-facing capsule label
    CAAPI_LABEL = "caapi.app"
    #: seed prefix for the default per-client writer key
    WRITER_SEED = b"appwriter:"

    def __init__(
        self,
        client: GdpClient,
        console: OwnerConsole,
        server_metadatas: Sequence[Metadata],
        *,
        writer_key: SigningKey | None = None,
        scopes: Sequence[str] = (),
        acks: str = "any",
    ):
        self.client = client
        self.console = console
        self.servers = list(server_metadatas)
        self.writer_key = writer_key or SigningKey.from_seed(
            self.WRITER_SEED + client.node_id.encode()
        )
        self.scopes = tuple(scopes)
        self.acks = acks
        self._writer: ClientWriter | None = None
        self._name: GdpName | None = None

    @property
    def name(self) -> GdpName:
        """The flat GDP name of this object."""
        if self._name is None:
            raise CapsuleError(
                f"{type(self).__name__} not created/mounted yet"
            )
        return self._name

    def _pointer_strategy(self) -> str:
        """The backing capsule's pointer strategy."""
        return "chain"

    def _design_extra(self) -> dict:
        """Extra metadata properties beyond the ``caapi`` kind tag."""
        return {}

    def create(self) -> Generator:
        """Create the backing capsule (this app is its single writer);
        returns its name."""
        metadata, writer = yield from create_backed_capsule(
            self.client,
            self.console,
            self.servers,
            writer_key=self.writer_key,
            pointer_strategy=self._pointer_strategy(),
            label=self.CAAPI_LABEL,
            extra={"caapi": self.CAAPI_KIND, **self._design_extra()},
            scopes=self.scopes,
            acks=self.acks,
        )
        self._writer = writer
        self._name = metadata.name
        return metadata.name

    def mount(self, name: GdpName) -> Generator:
        """Attach read-only to an existing instance by name."""
        yield from self.client.fetch_metadata(name)
        self._name = name
        return name
