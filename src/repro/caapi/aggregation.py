"""Multi-writer support (b): the aggregation service (§V-A).

"... or (b) by creating an aggregation service that subscribes to
multiple single-writer DataCapsules and combines them based on some
application-level logic."

:class:`AggregationService` subscribes to N input capsules (each with
its own honest single writer) and appends combined records to one output
capsule it writes.  The combine function is application logic; the
default annotates each input record with its source capsule, giving a
fan-in merge whose provenance chain is: input writer signature →
aggregator signature.
"""

from __future__ import annotations

from typing import Callable, Generator, Sequence

from repro import encoding
from repro.caapi.base import create_backed_capsule
from repro.capsule.heartbeat import Heartbeat
from repro.capsule.records import Record
from repro.client.client import ClientWriter, GdpClient
from repro.client.owner import OwnerConsole
from repro.crypto.keys import SigningKey
from repro.errors import CapsuleError
from repro.naming.metadata import Metadata
from repro.naming.names import GdpName
from repro.sim.engine import Future
from repro.sim.net import SimNetwork

__all__ = ["AggregationService"]

CombineFn = Callable[[GdpName, Record], bytes]


def _default_combine(source: GdpName, record: Record) -> bytes:
    return encoding.encode(
        {
            "source": source.raw,
            "source_seqno": record.seqno,
            "data": record.payload,
        }
    )


class AggregationService(GdpClient):
    """Fan-in: many single-writer capsules -> one combined capsule."""

    def __init__(
        self,
        network: SimNetwork,
        node_id: str,
        *,
        key: SigningKey | None = None,
        combine: CombineFn | None = None,
    ):
        super().__init__(network, node_id, key=key)
        self.combine = combine or _default_combine
        self._writer: ClientWriter | None = None
        self._append_chain: Future | None = None
        self._c_aggregated = network.metrics.node(node_id).counter(
            "aggregate.records"
        )

    @property
    def stats_aggregated(self) -> int:
        """Registry counter ``aggregate.records`` (back-compat name)."""
        return self._c_aggregated.value

    def create_output(
        self,
        console: OwnerConsole,
        server_metadatas: Sequence[Metadata],
        *,
        scopes: Sequence[str] = (),
        acks: str = "any",
    ) -> Generator:
        """Create the output capsule (this service is its writer)."""
        metadata, writer = yield from create_backed_capsule(
            self,
            console,
            server_metadatas,
            writer_key=self.key,
            pointer_strategy="chain",
            label="caapi.aggregate",
            extra={"caapi": "aggregate"},
            scopes=scopes,
            acks=acks,
        )
        self._writer = writer
        return metadata.name

    @property
    def output_name(self) -> GdpName:
        """The output capsule's name."""
        if self._writer is None:
            raise CapsuleError("aggregation service has no output capsule")
        return self._writer.capsule_name

    def follow(self, source: GdpName) -> Generator:
        """Subscribe to one input capsule; every verified new record is
        combined and appended to the output."""
        if self._writer is None:
            raise CapsuleError("create_output first")

        def on_record(record: Record, heartbeat: Heartbeat) -> None:
            self._enqueue(source, record)

        result = yield from self.subscribe(source, on_record)
        return result

    def _enqueue(self, source: GdpName, record: Record) -> None:
        """Serialize output appends (the service is a single writer —
        appends must not interleave)."""
        previous = self._append_chain
        slot = self.sim.future()
        self._append_chain = slot

        def run(_: Future | None = None) -> None:
            payload = self.combine(source, record)
            process = self.sim.spawn(
                self._writer.append(payload), name="aggregate.append"
            )

            def done(fut: Future) -> None:
                try:
                    fut.result()
                    self._c_aggregated.inc()
                except Exception:  # noqa: BLE001 — aggregation is lossy-ok
                    pass
                slot.resolve(None)

            process.completion.add_callback(done)

        if previous is None or previous.done:
            run()
        else:
            previous.add_callback(run)
