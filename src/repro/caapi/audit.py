"""Merkle-audited log CAAPI: O(log n) membership proofs from summaries.

§V notes that "a reader can also get cryptographic proofs for specific
records from a DataCapsule in a similar way as the well-known Merkle
hash trees".  This CAAPI makes that concrete by composing the two proof
systems the library already has:

- every K data records, the writer appends a **summary record** whose
  payload is the Merkle root over all data-record payload hashes so far;
- an auditor verifies record *i* with
  (a) one capsule **position proof** pinning the *summary* record
      (O(log n) hops under the skip-list strategy), plus
  (b) one Merkle **inclusion proof** of record *i*'s payload under the
      summary's root (O(log n) siblings)

— total O(log n) verification data for any record, against nothing but
the capsule name, without fetching the intervening records at all.

Layout: data records and summary records interleave in one capsule.
Data record *i* (1-based among data records) sits at capsule seqno
``i + (i - 1) // K``; summary *s* covers data records ``1..s*K``.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro import encoding
from repro.caapi.base import CapsuleApp
from repro.capsule.proofs import PositionProof
from repro.client.client import GdpClient
from repro.client.owner import OwnerConsole
from repro.crypto.keys import SigningKey
from repro.crypto.merkle import MerkleTree
from repro.errors import CapsuleError, IntegrityError
from repro.naming.metadata import Metadata
from repro.naming.names import GdpName

__all__ = ["AuditedLog", "AuditProof"]

_SUMMARY_PREFIX = b"gdp.audit.summary\x00"


class AuditProof:
    """Everything an auditor needs to verify one audited entry."""

    __slots__ = ("entry_index", "payload", "summary_record",
                 "position_proof", "inclusion_proof")

    def __init__(self, entry_index, payload, summary_record,
                 position_proof, inclusion_proof):
        self.entry_index = entry_index
        self.payload = payload
        self.summary_record = summary_record
        self.position_proof = position_proof
        self.inclusion_proof = inclusion_proof

    def verify(self, capsule_name: GdpName, writer_key) -> None:
        """Raise unless the payload is entry *entry_index* of the
        audited history committed by the (capsule-proof-pinned)
        summary."""
        # (a) the summary record really is part of the capsule history.
        self.position_proof.verify_record(self.summary_record, writer_key)
        summary = _parse_summary(self.summary_record.payload)
        if summary is None:
            raise IntegrityError("pinned record is not a summary")
        if not 1 <= self.entry_index <= summary["count"]:
            raise IntegrityError("entry index outside the summary's range")
        # The inclusion proof must be for the *claimed* slot: the proof
        # object carries its own leaf index, which must agree.
        if self.inclusion_proof.index != self.entry_index - 1:
            raise IntegrityError(
                "inclusion proof is for a different entry index"
            )
        if self.inclusion_proof.tree_size != summary["count"]:
            raise IntegrityError(
                "inclusion proof tree size disagrees with the summary"
            )
        # (b) the payload is under the summary's Merkle root.
        from repro.crypto.hashing import sha256

        self.inclusion_proof.verify(sha256(self.payload), summary["root"])


def _parse_summary(payload: bytes) -> dict | None:
    """Decode a summary record payload, or None for data records."""
    if not payload.startswith(_SUMMARY_PREFIX):
        return None
    wire = encoding.decode(payload[len(_SUMMARY_PREFIX):])
    return {"count": wire["count"], "root": wire["root"]}


class AuditedLog(CapsuleApp):
    """An append-only log with periodic Merkle summaries.

    Skip-list pointers so summary records are O(log n) to pin."""

    CAAPI_KIND = "audit"
    CAAPI_LABEL = "caapi.audit"
    WRITER_SEED = b"auditwriter:"

    def __init__(
        self,
        client: GdpClient,
        console: OwnerConsole,
        server_metadatas: Sequence[Metadata],
        *,
        writer_key: SigningKey | None = None,
        summary_interval: int = 16,
        scopes: Sequence[str] = (),
        acks: str = "any",
    ):
        if summary_interval < 2:
            raise CapsuleError("summary_interval must be >= 2")
        super().__init__(
            client,
            console,
            server_metadatas,
            writer_key=writer_key,
            scopes=scopes,
            acks=acks,
        )
        self.summary_interval = summary_interval
        self._tree = MerkleTree()  # payload hashes of data records
        self._entries = 0

    def _pointer_strategy(self) -> str:
        return "skiplist"

    def _design_extra(self) -> dict:
        return {"summary_interval": self.summary_interval}

    # -- writer side -----------------------------------------------------

    def append(self, payload: bytes) -> Generator:
        """Append one entry; a summary follows automatically every
        *summary_interval* entries.  Returns the entry index."""
        if self._writer is None:
            raise CapsuleError("log not created yet")
        from repro.crypto.hashing import sha256

        yield from self._writer.append(payload)
        self._tree.append(sha256(payload))
        self._entries += 1
        if self._entries % self.summary_interval == 0:
            summary = _SUMMARY_PREFIX + encoding.encode(
                {"count": self._entries, "root": self._tree.root()}
            )
            yield from self._writer.append(summary)
        return self._entries

    # -- auditor side -------------------------------------------------------

    @staticmethod
    def data_seqno(entry_index: int, interval: int) -> int:
        """Capsule seqno of data entry *entry_index* (summaries
        interleave every *interval* data records)."""
        return entry_index + (entry_index - 1) // interval

    @staticmethod
    def summary_seqno(summary_index: int, interval: int) -> int:
        """Capsule seqno of the *summary_index*-th summary record."""
        return summary_index * (interval + 1)

    def audit_entry(self, entry_index: int) -> Generator:
        """Build an :class:`AuditProof` for one entry, fetching only the
        entry itself, the covering summary record, and O(log n) proof
        data — never the records in between.

        This is the *prover* side (run by whoever holds the Merkle tree
        — the writer, or any replica that rebuilt it).  The resulting
        bundle is self-contained: a third-party auditor verifies it with
        :meth:`AuditProof.verify` holding nothing but the capsule name
        and metadata, so a hostile prover gains nothing.
        """
        from repro.capsule.records import Record

        interval = self.summary_interval
        summary_index = (entry_index + interval - 1) // interval
        covered = summary_index * interval
        if covered > self._entries:
            raise CapsuleError(
                f"entry {entry_index} is not covered by a summary yet"
            )
        entry_record = yield from self.client.read(
            self.name, self.data_seqno(entry_index, interval)
        )
        # Fetch the summary record keeping the server's position proof
        # (the client's read() verifies it and we reuse it verbatim).
        summary_seqno = self.summary_seqno(summary_index, interval)
        corr_id, future = self.client.request(
            self.name,
            {"op": "read", "capsule": self.name.raw, "seqno": summary_seqno},
        )
        wrapped = yield future
        body = self.client._unwrap(
            wrapped, corr_id=corr_id, capsule=self.name
        )
        summary_record = Record.from_wire(self.name, body["record"])
        position_proof = PositionProof.from_wire(body["proof"])
        reader = self.client.readers[self.name]
        position_proof.verify_record(summary_record, reader.capsule.writer_key)
        inclusion_proof = self._tree.prove(entry_index - 1, size=covered)
        return AuditProof(
            entry_index,
            entry_record.payload,
            summary_record,
            position_proof,
            inclusion_proof,
        )
