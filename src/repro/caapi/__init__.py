"""Common Access APIs (CAAPIs): richer interfaces over DataCapsules
(§V-B) — filesystem, key-value store, time-series, lossy streams,
multi-writer commit service, and aggregation."""

from repro.caapi.aggregation import AggregationService
from repro.caapi.audit import AuditedLog, AuditProof
from repro.caapi.commit_service import (
    CommitService,
    read_committed,
    submit_update,
)
from repro.caapi.filesystem import CapsuleFileSystem
from repro.caapi.gateway import GatewayService, LegacyHttpClient
from repro.caapi.kvstore import CapsuleKVStore
from repro.caapi.stream import Frame, StreamPublisher, StreamSubscriber
from repro.caapi.timeseries import Sample, TimeSeriesLog

__all__ = [
    "CapsuleFileSystem",
    "CapsuleKVStore",
    "TimeSeriesLog",
    "Sample",
    "StreamPublisher",
    "StreamSubscriber",
    "Frame",
    "CommitService",
    "submit_update",
    "read_committed",
    "AggregationService",
    "GatewayService",
    "LegacyHttpClient",
    "AuditedLog",
    "AuditProof",
]
