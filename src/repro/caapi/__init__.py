"""Common Access APIs (CAAPIs): richer interfaces over DataCapsules
(§V-B) — filesystem, key-value store, time-series, lossy streams, the
sharded multi-writer commit plane, and aggregation."""

from repro.caapi.aggregation import AggregationService
from repro.caapi.audit import AuditedLog, AuditProof
from repro.caapi.base import CapsuleApp, create_backed_capsule
from repro.caapi.commit_service import (
    CommitClient,
    CommitReceipt,
    CommitService,
    CommitShard,
    ShardedCommitService,
    ShardMap,
    read_committed,
    read_committed_entry,
    shard_of,
    submit_update,
)
from repro.caapi.filesystem import (
    CapsuleFileSystem,
    grant_write,
    path_write_authorizer,
    writer_principal,
)
from repro.caapi.gateway import GatewayService, LegacyHttpClient
from repro.caapi.kvstore import CapsuleKVStore
from repro.caapi.stream import Frame, StreamPublisher, StreamSubscriber
from repro.caapi.timeseries import Sample, TimeSeriesLog

__all__ = [
    "CapsuleApp",
    "create_backed_capsule",
    "CapsuleFileSystem",
    "grant_write",
    "path_write_authorizer",
    "writer_principal",
    "CapsuleKVStore",
    "TimeSeriesLog",
    "Sample",
    "StreamPublisher",
    "StreamSubscriber",
    "Frame",
    "CommitService",
    "CommitShard",
    "ShardedCommitService",
    "ShardMap",
    "CommitClient",
    "CommitReceipt",
    "shard_of",
    "submit_update",
    "read_committed",
    "read_committed_entry",
    "AggregationService",
    "GatewayService",
    "LegacyHttpClient",
    "AuditedLog",
    "AuditProof",
]
