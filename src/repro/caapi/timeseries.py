"""Time-series CAAPI — "time-series data representing ambient
temperature" is the paper's running example of a DataCapsule (§IV-A),
and the Berkeley deployment's first real workload ("time-series
environmental sensors", §VIII).

One record per sample, ``{"t": <ms timestamp>, "v": <value>}``.  Since
the single writer appends in time order, record seqno is monotone in
timestamp, so time-window queries binary-search the capsule by seqno
using verified point reads, then fetch the window with one range proof.
Subscriptions give live tailing; the same capsule replayed later gives
the paper's *time-shift* property.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro import encoding
from repro.caapi.base import CapsuleApp
from repro.capsule.heartbeat import Heartbeat
from repro.capsule.records import Record
from repro.errors import CapsuleError

__all__ = ["TimeSeriesLog", "Sample"]


class Sample:
    """One (timestamp, value) measurement."""

    __slots__ = ("timestamp", "value", "seqno")

    def __init__(self, timestamp: float, value: float, seqno: int = 0):
        self.timestamp = timestamp
        self.value = value
        self.seqno = seqno

    @classmethod
    def from_record(cls, record: Record) -> "Sample":
        """Decode from a capsule record."""
        entry = encoding.decode(record.payload)
        return cls(entry["t"] / 1000.0, entry["v"] / 1000.0, record.seqno)

    def __repr__(self) -> str:
        return f"Sample(t={self.timestamp}, v={self.value}, #{self.seqno})"


class TimeSeriesLog(CapsuleApp):
    """An append-only measurement log over one DataCapsule.

    Skip-list pointers: point lookups inside long histories are the
    common read."""

    CAAPI_KIND = "timeseries"
    CAAPI_LABEL = "caapi.timeseries"
    WRITER_SEED = b"tswriter:"

    def _pointer_strategy(self) -> str:
        return "skiplist"

    # -- writes ---------------------------------------------------------------

    def record(self, timestamp: float, value: float) -> Generator:
        """Append one sample (timestamp seconds, value float; both kept
        at millisecond/milli-unit integer precision on the wire)."""
        if self._writer is None:
            raise CapsuleError("log is read-only (mounted) or not created")
        payload = encoding.encode(
            {"t": int(round(timestamp * 1000)), "v": int(round(value * 1000))}
        )
        receipt = yield from self._writer.append(payload)
        return receipt.seqno

    # -- reads ----------------------------------------------------------------

    def _sample_at(self, seqno: int) -> Generator:
        record = yield from self.client.read(self.name, seqno)
        return Sample.from_record(record)

    def last_sample(self) -> Generator:
        """The newest sample, or None."""
        record = yield from self.client.read_latest(self.name)
        if record is None:
            return None
        return Sample.from_record(record)

    def window(self, t_start: float, t_end: float) -> Generator:
        """All samples with ``t_start <= timestamp <= t_end``, found by
        binary search over verified point reads then one range read."""
        if t_end < t_start:
            raise CapsuleError("empty window (t_end < t_start)")
        tip = yield from self.client.read_latest(self.name)
        if tip is None:
            return []
        last = tip.seqno

        def bisect_left(target: float) -> Generator:
            lo, hi = 1, last + 1
            while lo < hi:
                mid = (lo + hi) // 2
                sample = yield from self._sample_at(mid)
                if sample.timestamp < target:
                    lo = mid + 1
                else:
                    hi = mid
            return lo

        first = yield from bisect_left(t_start)
        after = yield from bisect_left(t_end + 1e-9)
        if first >= after:
            return []
        records = yield from self.client.read_range(
            self.name, first, after - 1
        )
        return [Sample.from_record(r) for r in records]

    def aggregate(self, t_start: float, t_end: float) -> Generator:
        """``(count, min, max, mean)`` over a time window."""
        samples = yield from self.window(t_start, t_end)
        if not samples:
            return (0, None, None, None)
        values = [s.value for s in samples]
        return (
            len(values),
            min(values),
            max(values),
            sum(values) / len(values),
        )

    # -- live tail ---------------------------------------------------------------

    def tail(self, callback: Callable[[Sample], None]) -> Generator:
        """Subscribe; *callback* fires per verified new sample."""

        def on_record(record: Record, heartbeat: Heartbeat) -> None:
            callback(Sample.from_record(record))

        result = yield from self.client.subscribe(self.name, on_record)
        return result
