"""Key-value store CAAPI.

"It should come as no surprise that DataCapsules are sufficient to
implement any convenient, mutable data storage repository" (§V-B).  This
CAAPI materializes a mutable map from an append-only log of put/delete
operations, with periodic *snapshot* records so late readers replay
O(snapshot interval) records instead of the whole history.

Snapshot records pair naturally with the ``checkpoint:K`` pointer
strategy: a reader can hop checkpoint-to-checkpoint to the latest
snapshot with O(n/K) proof work, then replay the tail.

Two write paths:

- **direct** (the default): this store is the capsule's single writer.
- **commit plane** (pass ``commit=CommitClient(...)``): mutations are
  optimistic-CAS submissions keyed by the kv key, so many writers can
  safely share one store.  The writer-side ``_view`` becomes a verified
  cache — invalidated on conflict, rebased onto the winning seqno, and
  retried with jittered backoff.  Reads replay the commit plane's shard
  logs (each key lives in exactly one shard, so per-key order is exactly
  shard-log order).
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro import encoding
from repro.caapi.base import CapsuleApp
from repro.caapi.commit_service import CommitClient, read_committed_entry
from repro.client.client import GdpClient
from repro.client.owner import OwnerConsole
from repro.crypto.keys import SigningKey
from repro.errors import (
    CapsuleError,
    CommitConflictError,
    RecordNotFoundError,
)
from repro.naming.metadata import Metadata

__all__ = ["CapsuleKVStore"]

_OP_PUT = "put"
_OP_DELETE = "del"
_OP_SNAPSHOT = "snap"

#: CAS retry budget before a mutation gives up and re-raises
_CAS_ATTEMPTS = 8
#: base for the jittered exponential backoff between CAS retries
_CAS_BASE_DELAY = 0.05


class CapsuleKVStore(CapsuleApp):
    """A mutable string-keyed map over one DataCapsule (or, in
    multi-writer mode, over a sharded commit plane)."""

    CAAPI_KIND = "kvstore"
    CAAPI_LABEL = "caapi.kvstore"
    WRITER_SEED = b"kvwriter:"

    def __init__(
        self,
        client: GdpClient,
        console: OwnerConsole,
        server_metadatas: Sequence[Metadata],
        *,
        writer_key: SigningKey | None = None,
        snapshot_interval: int = 64,
        scopes: Sequence[str] = (),
        acks: str = "any",
        commit: CommitClient | None = None,
    ):
        if snapshot_interval < 2:
            raise CapsuleError("snapshot_interval must be >= 2")
        super().__init__(
            client,
            console,
            server_metadatas,
            writer_key=writer_key,
            scopes=scopes,
            acks=acks,
        )
        self.snapshot_interval = snapshot_interval
        self.commit = commit
        self._view: dict[str, Any] = {}  # writer-side materialized state
        self._since_snapshot = 0
        #: commit mode: kv key -> last-known shard seqno (CAS expects)
        self._versions: dict[str, int] = {}

    def _pointer_strategy(self) -> str:
        return f"checkpoint:{self.snapshot_interval}"

    # -- mutation (writer side) ----------------------------------------------

    def _log(self, entry: dict) -> Generator:
        if self._writer is None:
            raise CapsuleError("store is read-only (mounted) or not created")
        yield from self._writer.append(encoding.encode(entry))
        self._since_snapshot += 1
        if self._since_snapshot >= self.snapshot_interval:
            yield from self._snapshot()

    def _snapshot(self) -> Generator:
        assert self._writer is not None
        snap = {"op": _OP_SNAPSHOT, "state": dict(self._view)}
        yield from self._writer.append(encoding.encode(snap))
        self._since_snapshot = 0

    def _submit_mutation(self, key: str, entry: dict) -> Generator:
        """Commit-plane CAS loop: submit with the last seqno we saw for
        *key* as the precondition; on conflict, invalidate the cached
        value, rebase onto the winning seqno, back off, retry."""
        assert self.commit is not None
        expect = self._versions.get(key, 0)
        conflict: CommitConflictError | None = None
        for attempt in range(_CAS_ATTEMPTS):
            try:
                receipt = yield from self.commit.submit(
                    encoding.encode(entry), key=key, expect_seqno=expect
                )
                self._versions[key] = receipt.seqno
                return receipt
            except CommitConflictError as exc:
                conflict = exc
                expect = exc.winning_seqno
                self._versions[key] = expect
                self._view.pop(key, None)  # cache no longer trustworthy
                yield self.commit.backoff_delay(
                    attempt, base_delay=_CAS_BASE_DELAY
                )
        raise conflict

    def put(self, key: str, value: Any) -> Generator:
        """Bind *key* to *value* (any wire-encodable value)."""
        entry = {"op": _OP_PUT, "key": key, "value": value}
        if self.commit is not None:
            yield from self._submit_mutation(key, entry)
            self._view[key] = value
            return
        self._view[key] = value
        yield from self._log(entry)

    def delete(self, key: str) -> Generator:
        """Remove a key; raises if absent."""
        if self.commit is not None:
            view = yield from self._replay()
            if key not in view:
                raise RecordNotFoundError(f"no such key {key!r}")
            yield from self._submit_mutation(
                key, {"op": _OP_DELETE, "key": key}
            )
            self._view.pop(key, None)
            return
        if key not in self._view:
            raise RecordNotFoundError(f"no such key {key!r}")
        del self._view[key]
        yield from self._log({"op": _OP_DELETE, "key": key})

    # -- reads (any client) ------------------------------------------------------

    def _replay(self) -> Generator:
        """Verified rebuild of the map: find the latest snapshot, replay
        the tail (direct mode), or replay the commit plane's shard logs
        (commit mode)."""
        if self.commit is not None:
            view = yield from self._replay_commit()
            return view
        name = self.name
        latest = yield from self.client.read_latest(name)
        if latest is None:
            return {}
        last = latest.seqno
        # Walk backwards to the nearest snapshot (bounded by interval).
        view: dict[str, Any] = {}
        start = 1
        for seqno in range(last, max(0, last - self.snapshot_interval), -1):
            record = yield from self.client.read(name, seqno)
            entry = encoding.decode(record.payload)
            if entry["op"] == _OP_SNAPSHOT:
                view = dict(entry["state"])
                start = seqno + 1
                break
        else:
            start = max(1, last - self.snapshot_interval + 1)
            if start > 1:
                # No snapshot in the window: fall back to full replay.
                start = 1
        if start <= last:
            records = yield from self.client.read_range(name, start, last)
            for record in records:
                entry = encoding.decode(record.payload)
                if entry["op"] == _OP_PUT:
                    view[entry["key"]] = entry["value"]
                elif entry["op"] == _OP_DELETE:
                    view.pop(entry["key"], None)
        return view

    def _replay_commit(self) -> Generator:
        """Rebuild the map from every shard log, unwrapping the commit
        plane's provenance wrapper.  Shards are replayed sequentially —
        safe because the key→shard map puts each key's whole history in
        one shard.  Refreshes the CAS version cache as a side effect."""
        assert self.commit is not None
        shard_map = self.commit.shard_map
        if shard_map is None:
            shard_map = yield from self.commit.fetch_map()
        view: dict[str, Any] = {}
        for capsule in shard_map.capsules:
            latest = yield from self.client.read_latest(capsule)
            if latest is None:
                continue
            result = yield from self.client.read_range(
                capsule, 1, latest.seqno
            )
            for record in result.records:
                wrapped = read_committed_entry(record.payload)
                entry = encoding.decode(wrapped["data"])
                if wrapped["key"] is not None:
                    self._versions[wrapped["key"]] = record.seqno
                if entry["op"] == _OP_PUT:
                    view[entry["key"]] = entry["value"]
                elif entry["op"] == _OP_DELETE:
                    view.pop(entry["key"], None)
        return view

    def get(self, key: str) -> Generator:
        """Verified lookup of one key; raises if absent."""
        view = yield from self._replay()
        if key not in view:
            raise RecordNotFoundError(f"no such key {key!r}")
        return view[key]

    def keys(self) -> Generator:
        """Sorted live keys (verified replay)."""
        view = yield from self._replay()
        return sorted(view)

    def items(self) -> Generator:
        """The full verified map."""
        view = yield from self._replay()
        return dict(view)
