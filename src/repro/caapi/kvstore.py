"""Key-value store CAAPI.

"It should come as no surprise that DataCapsules are sufficient to
implement any convenient, mutable data storage repository" (§V-B).  This
CAAPI materializes a mutable map from an append-only log of put/delete
operations, with periodic *snapshot* records so late readers replay
O(snapshot interval) records instead of the whole history.

Snapshot records pair naturally with the ``checkpoint:K`` pointer
strategy: a reader can hop checkpoint-to-checkpoint to the latest
snapshot with O(n/K) proof work, then replay the tail.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro import encoding
from repro.client.client import ClientWriter, GdpClient
from repro.client.owner import OwnerConsole
from repro.crypto.keys import SigningKey
from repro.errors import CapsuleError, RecordNotFoundError
from repro.naming.metadata import Metadata
from repro.naming.names import GdpName

__all__ = ["CapsuleKVStore"]

_OP_PUT = "put"
_OP_DELETE = "del"
_OP_SNAPSHOT = "snap"


class CapsuleKVStore:
    """A mutable string-keyed map over one DataCapsule."""

    def __init__(
        self,
        client: GdpClient,
        console: OwnerConsole,
        server_metadatas: Sequence[Metadata],
        *,
        writer_key: SigningKey | None = None,
        snapshot_interval: int = 64,
        scopes: Sequence[str] = (),
        acks: str = "any",
    ):
        if snapshot_interval < 2:
            raise CapsuleError("snapshot_interval must be >= 2")
        self.client = client
        self.console = console
        self.servers = list(server_metadatas)
        self.writer_key = writer_key or SigningKey.from_seed(
            b"kvwriter:" + client.node_id.encode()
        )
        self.snapshot_interval = snapshot_interval
        self.scopes = tuple(scopes)
        self.acks = acks
        self._writer: ClientWriter | None = None
        self._name: GdpName | None = None
        self._view: dict[str, Any] = {}  # writer-side materialized state
        self._since_snapshot = 0

    @property
    def name(self) -> GdpName:
        """The flat GDP name of this object."""
        if self._name is None:
            raise CapsuleError("store not created/mounted yet")
        return self._name

    # -- lifecycle -----------------------------------------------------------

    def create(self) -> Generator:
        """Create the backing capsule; returns its name."""
        metadata = self.console.design_capsule(
            self.writer_key.public,
            pointer_strategy=f"checkpoint:{self.snapshot_interval}",
            label="caapi.kvstore",
            extra={"caapi": "kvstore"},
        )
        yield from self.console.place_capsule(
            metadata, self.servers, scopes=self.scopes
        )
        self._writer = self.client.open_writer(
            metadata, self.writer_key, acks=self.acks
        )
        self._name = metadata.name
        yield 0.2
        return metadata.name

    def mount(self, name: GdpName) -> Generator:
        """Attach read-only to an existing store."""
        yield from self.client.fetch_metadata(name)
        self._name = name
        return name

    # -- mutation (writer side) ----------------------------------------------

    def _log(self, entry: dict) -> Generator:
        if self._writer is None:
            raise CapsuleError("store is read-only (mounted) or not created")
        yield from self._writer.append(encoding.encode(entry))
        self._since_snapshot += 1
        if self._since_snapshot >= self.snapshot_interval:
            yield from self._snapshot()

    def _snapshot(self) -> Generator:
        assert self._writer is not None
        snap = {"op": _OP_SNAPSHOT, "state": dict(self._view)}
        yield from self._writer.append(encoding.encode(snap))
        self._since_snapshot = 0

    def put(self, key: str, value: Any) -> Generator:
        """Bind *key* to *value* (any wire-encodable value)."""
        self._view[key] = value
        yield from self._log({"op": _OP_PUT, "key": key, "value": value})

    def delete(self, key: str) -> Generator:
        """Remove a key; raises if absent."""
        if key not in self._view:
            raise RecordNotFoundError(f"no such key {key!r}")
        del self._view[key]
        yield from self._log({"op": _OP_DELETE, "key": key})

    # -- reads (any client) ------------------------------------------------------

    def _replay(self) -> Generator:
        """Verified rebuild of the map: find the latest snapshot, replay
        the tail."""
        name = self.name
        latest = yield from self.client.read_latest(name)
        if latest is None:
            return {}
        last = latest.seqno
        # Walk backwards to the nearest snapshot (bounded by interval).
        view: dict[str, Any] = {}
        start = 1
        for seqno in range(last, max(0, last - self.snapshot_interval), -1):
            record = yield from self.client.read(name, seqno)
            entry = encoding.decode(record.payload)
            if entry["op"] == _OP_SNAPSHOT:
                view = dict(entry["state"])
                start = seqno + 1
                break
        else:
            start = max(1, last - self.snapshot_interval + 1)
            if start > 1:
                # No snapshot in the window: fall back to full replay.
                start = 1
        if start <= last:
            records = yield from self.client.read_range(name, start, last)
            for record in records:
                entry = encoding.decode(record.payload)
                if entry["op"] == _OP_PUT:
                    view[entry["key"]] = entry["value"]
                elif entry["op"] == _OP_DELETE:
                    view.pop(entry["key"], None)
        return view

    def get(self, key: str) -> Generator:
        """Verified lookup of one key; raises if absent."""
        view = yield from self._replay()
        if key not in view:
            raise RecordNotFoundError(f"no such key {key!r}")
        return view[key]

    def keys(self) -> Generator:
        """Sorted live keys (verified replay)."""
        view = yield from self._replay()
        return sorted(view)

    def items(self) -> Generator:
        """The full verified map."""
        view = yield from self._replay()
        return dict(view)
