"""Filesystem CAAPI — the paper's TensorFlow-plugin design (§IX).

"Internally, this CAAPI maintains a top-level directory in a single
DataCapsule. Each filename is represented as its own DataCapsule; the
top-level directory merely maps filenames to DataCapsule-names."

- The **directory capsule** is a log of ``{path -> file-capsule name}``
  bindings (and tombstones); its materialized view is rebuilt by verified
  replay, so the whole namespace inherits capsule integrity.
- Each **file capsule** (checkpoint pointer strategy) holds the file
  content as fixed-size chunk records; a range read reassembles the file
  with a single range proof.

Every method is a generator coroutine (run inside a sim process); the
filesystem is a *client-side* construct — servers see only ordinary
capsules ("the infrastructure merely makes the information durable and
available", §V-B).

**Multi-writer directories (CapsuleFS-style).**  With
:meth:`CapsuleFileSystem.attach_commit`, directory mutations flow
through the commit plane instead of a locally-held directory writer, and
write access is *per path prefix*: the owner issues an AdCert delegating
a path subtree to a writer principal (:func:`grant_write`), and the
commit shard checks that delegation evidence at the commit point
(:func:`path_write_authorizer`).  Granting write access no longer means
sharing the directory key — each collaborator keeps their own signing
key, mints their own file capsules, and presents the certificate with
every directory binding.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro import encoding
from repro.caapi.base import CapsuleApp
from repro.caapi.commit_service import Authorizer, CommitClient, CommitShard
from repro.capsule.sealed import ContentKey, ReadGrant, open_payload, seal_payload
from repro.client.client import GdpClient
from repro.client.owner import OwnerConsole
from repro.crypto.hashing import sha256
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.delegation.certs import AdCert
from repro.errors import (
    AuthorizationError,
    CapsuleError,
    DelegationError,
    IntegrityError,
    RecordNotFoundError,
)
from repro.naming.metadata import Metadata
from repro.naming.names import GdpName

__all__ = [
    "CapsuleFileSystem",
    "DEFAULT_CHUNK",
    "grant_write",
    "path_write_authorizer",
    "writer_principal",
]

DEFAULT_CHUNK = 1 * 1024 * 1024  # 1 MiB chunk records

#: domain tag turning a writer's public key into a delegable principal
_WRITER_PRINCIPAL_DOMAIN = b"gdp.fs.writer"


def writer_principal(key_bytes: bytes) -> GdpName:
    """The flat-name principal an AdCert delegates to: derived from the
    writer's public key, so the certificate binds to the *key* that
    signs submissions, not to any transport identity."""
    return GdpName(sha256(_WRITER_PRINCIPAL_DOMAIN + key_bytes))


def _path_in_scope(path: str, scope: str) -> bool:
    """Explicit path-prefix semantics: a scope covers itself and its
    subtree, on whole path components (``/a`` covers ``/a/b`` but never
    ``/ab``).  AdCert's dotted-domain matching is wrong for paths, so
    filesystem grants use this instead."""
    scope = scope.rstrip("/")
    return path == scope or path.startswith(scope + "/")


def grant_write(
    console: OwnerConsole,
    grantee: VerifyingKey,
    prefix: str,
    *,
    directory: GdpName,
    expires_at: float | None = None,
) -> AdCert:
    """Owner-side: delegate write access to the *prefix* subtree of the
    directory identified by *directory* (for a commit-plane directory,
    the shard log's capsule name).  Returns the AdCert the grantee must
    present with every directory binding."""
    return AdCert.issue(
        console.owner_key,
        directory,
        writer_principal(grantee.to_bytes()),
        scopes=(prefix,),
        expires_at=expires_at,
    )


def path_write_authorizer(owner_key: VerifyingKey) -> Authorizer:
    """A :class:`~repro.caapi.commit_service.CommitShard` authorizer
    enforcing per-path write credentials at the commit point.

    The capsule owner writes freely; any other submitter must present an
    AdCert issued by the owner, delegating to *their* key's writer
    principal, bound to this shard's directory capsule, unexpired at
    commit time, whose scope prefix covers the path being bound.
    """
    owner_bytes = owner_key.to_bytes()

    def authorize(
        shard: CommitShard,
        submitter: bytes,
        key: str | None,
        payload: dict,
    ) -> None:
        if submitter == owner_bytes:
            return
        try:
            entry = encoding.decode(payload["data"])
            path = entry["path"]
        except Exception as exc:  # noqa: BLE001 — any parse failure rejects
            raise AuthorizationError(
                f"malformed directory entry: {exc}"
            ) from exc
        wire = payload.get("credential")
        if wire is None:
            raise AuthorizationError(
                f"writing {path!r} requires a write credential"
            )
        try:
            cert = AdCert.from_wire(wire)
            cert.verify(
                owner_key,
                now=shard.sim.now,
                capsule=shard.capsule_name,
                delegate=writer_principal(submitter),
            )
        except DelegationError as exc:
            raise AuthorizationError(
                f"write credential rejected: {exc}"
            ) from exc
        if not any(_path_in_scope(path, scope) for scope in cert.scopes):
            raise AuthorizationError(
                f"write credential does not cover path {path!r}"
            )

    return authorize


class CapsuleFileSystem(CapsuleApp):
    """A mutable filesystem interface over immutable capsules."""

    CAAPI_KIND = "filesystem"
    CAAPI_LABEL = "caapi.fs.directory"
    WRITER_SEED = b"fswriter:"

    def __init__(
        self,
        client: GdpClient,
        console: OwnerConsole,
        server_metadatas: Sequence[Metadata],
        *,
        writer_key: SigningKey | None = None,
        chunk_size: int = DEFAULT_CHUNK,
        scopes: Sequence[str] = (),
        acks: str = "any",
        encrypt: bool = False,
    ):
        if chunk_size < 1:
            raise CapsuleError("chunk_size must be >= 1")
        super().__init__(
            client,
            console,
            server_metadatas,
            writer_key=writer_key,
            scopes=scopes,
            acks=acks,
        )
        self.chunk_size = chunk_size
        self.encrypt = encrypt
        self._file_seq = 0
        #: per-file content keys (owner side, or unwrapped from grants)
        self._content_keys: dict[GdpName, ContentKey] = {}
        #: commit-plane directory (multi-writer mode), else None
        self.commit: CommitClient | None = None
        #: the AdCert presented with every directory binding (grantees)
        self._write_credential: AdCert | None = None

    @property
    def directory_name(self) -> GdpName:
        """The top-level directory capsule's name."""
        if self._name is None:
            raise CapsuleError("filesystem is not formatted yet")
        return self._name

    # -- lifecycle -----------------------------------------------------------

    def format(self) -> Generator:
        """Create the top-level directory capsule; returns its name."""
        name = yield from self.create()
        return name

    def attach_commit(
        self,
        commit: CommitClient,
        *,
        credential: AdCert | None = None,
    ) -> None:
        """Switch directory mutations onto a commit plane (multi-writer
        directory).  Grantees pass the AdCert from :func:`grant_write`
        as *credential*; the owner needs none."""
        self.commit = commit
        self._write_credential = credential

    # -- directory replay ------------------------------------------------------

    @staticmethod
    def _apply_dir_entry(
        view: dict[str, tuple[bytes, int, bool]], entry: dict
    ) -> None:
        if entry.get("tombstone"):
            view.pop(entry["path"], None)
        else:
            view[entry["path"]] = (
                entry["capsule"],
                entry["size"],
                bool(entry.get("encrypted")),
            )

    def _directory_view(self) -> Generator:
        """Replay the directory log into
        ``{path: (capsule raw, size, encrypted)}``."""
        view: dict[str, tuple[bytes, int, bool]] = {}
        if self.commit is not None:
            # Multi-writer directory: the log lives in the commit
            # plane's shard capsules, each entry provenance-wrapped.
            # Bindings are keyed by path, so one path's history sits
            # entirely inside one shard — sequential replay is safe.
            from repro.caapi.commit_service import read_committed_entry

            shard_map = self.commit.shard_map
            if shard_map is None:
                shard_map = yield from self.commit.fetch_map()
            for capsule in shard_map.capsules:
                latest = yield from self.client.read_latest(capsule)
                if latest is None:
                    continue
                result = yield from self.client.read_range(
                    capsule, 1, latest.seqno
                )
                for record in result.records:
                    wrapped = read_committed_entry(record.payload)
                    self._apply_dir_entry(
                        view, encoding.decode(wrapped["data"])
                    )
            return view
        assert self._name is not None
        latest = yield from self.client.read_latest(self._name)
        if latest is None:
            return view
        records = yield from self.client.read_range(
            self._name, 1, latest.seqno
        )
        for record in records:
            self._apply_dir_entry(view, encoding.decode(record.payload))
        return view

    def listdir(self) -> Generator:
        """All live paths, sorted."""
        view = yield from self._directory_view()
        return sorted(view)

    def stat(self, path: str) -> Generator:
        """``(file capsule name, size)``; raises if absent."""
        view = yield from self._directory_view()
        if path not in view:
            raise RecordNotFoundError(f"no such file: {path!r}")
        raw, size, _encrypted = view[path]
        return GdpName(raw), size

    # -- file IO -----------------------------------------------------------------

    def _bind_path(self, entry: dict) -> Generator:
        """Append one directory binding: through the commit plane (with
        delegation evidence, checked at the commit point) when attached,
        else through the locally-held directory writer."""
        if self.commit is not None:
            credential = (
                self._write_credential.to_wire()
                if self._write_credential is not None
                else None
            )
            receipt = yield from self.commit.submit(
                encoding.encode(entry),
                key=entry["path"],
                credential=credential,
            )
            return receipt
        if self._writer is None:
            raise CapsuleError(
                "filesystem is read-only (mounted) or unformatted"
            )
        receipt = yield from self._writer.append(encoding.encode(entry))
        return receipt

    def write_file(self, path: str, data: bytes) -> Generator:
        """Create/replace *path* with *data*; returns the file capsule
        name.  A replace writes a fresh capsule and re-binds the path —
        old versions stay intact and addressable (multi-versioned, as
        the paper's "secure, multi-versioned binaries" need)."""
        if self.commit is None and self._writer is None:
            raise CapsuleError(
                "filesystem is read-only (mounted) or unformatted"
            )
        self._file_seq += 1
        metadata = self.console.design_capsule(
            self.writer_key.public,
            pointer_strategy="checkpoint:16",
            label=f"caapi.fs.file:{path}",
            extra={"caapi": "filesystem.file", "fileseq": self._file_seq},
        )
        yield from self.console.place_capsule(
            metadata, self.servers, scopes=self.scopes
        )
        yield 0.2  # advertisement settling
        writer = self.client.open_writer(
            metadata, self.writer_key, acks=self.acks
        )
        content_key: ContentKey | None = None
        if self.encrypt:
            # §V: "read access control is maintained by selective
            # sharing of decryption keys" — one content key per file;
            # the infrastructure stores only ciphertext.
            content_key = ContentKey.generate(metadata.name)
            self._content_keys[metadata.name] = content_key
        chunks: list[bytes] = []
        seqno = 0
        for offset in range(0, len(data), self.chunk_size):
            chunk = data[offset : offset + self.chunk_size]
            seqno += 1
            if content_key is not None:
                chunk = seal_payload(content_key, seqno, chunk)
            chunks.append(chunk)
        if not data:
            chunks.append(
                seal_payload(content_key, 1, b"")
                if content_key is not None
                else b""
            )
        # Pipelined appends keep the uplink full instead of paying one
        # round trip per chunk (the paper's event-driven client library).
        yield from writer.append_stream(chunks)
        yield from self._bind_path(
            {
                "path": path,
                "capsule": metadata.name.raw,
                "size": len(data),
                "encrypted": self.encrypt,
            }
        )
        return metadata.name

    def read_file(self, path: str) -> Generator:
        """Read and reassemble *path* with verified range proofs;
        encrypted files are decrypted with the held content key."""
        view = yield from self._directory_view()
        if path not in view:
            raise RecordNotFoundError(f"no such file: {path!r}")
        raw, size, encrypted = view[path]
        file_name = GdpName(raw)
        latest = yield from self.client.read_latest(file_name)
        if latest is None:
            raise RecordNotFoundError(f"file capsule for {path!r} is empty")
        records = yield from self.client.read_range(
            file_name, 1, latest.seqno
        )
        if encrypted:
            content_key = self._content_keys.get(file_name)
            if content_key is None:
                raise IntegrityError(
                    f"file {path!r} is encrypted and no content key/grant "
                    "is held"
                )
            chunks = [
                open_payload(content_key, record.seqno, record.payload)
                for record in records
            ]
        else:
            chunks = [record.payload for record in records]
        data = b"".join(chunks)
        if len(data) != size:
            raise CapsuleError(
                f"file {path!r}: directory says {size} bytes, "
                f"capsule holds {len(data)}"
            )
        return data

    # -- read access control (key sharing) ---------------------------------

    def grant_read(self, path: str, reader_key: VerifyingKey) -> Generator:
        """Wrap *path*'s content key to a reader's public key; returns
        the :class:`ReadGrant` to hand over out of band (or store in a
        capsule)."""
        file_name, _size = yield from self.stat(path)
        content_key = self._content_keys.get(file_name)
        if content_key is None:
            raise IntegrityError(
                f"no content key held for {path!r} (not encrypted, or not "
                "the owner)"
            )
        return ReadGrant.create(content_key, reader_key)

    def accept_grant(self, grant: ReadGrant, reader_key: SigningKey) -> None:
        """Unwrap a received grant so :meth:`read_file` can decrypt."""
        content_key = grant.unwrap(reader_key)
        self._content_keys[grant.capsule] = content_key

    def delete(self, path: str) -> Generator:
        """Unlink *path* (tombstone in the directory log; the file
        capsule itself is immutable history)."""
        if self.commit is None and self._writer is None:
            raise CapsuleError(
                "filesystem is read-only (mounted) or unformatted"
            )
        view = yield from self._directory_view()
        if path not in view:
            raise RecordNotFoundError(f"no such file: {path!r}")
        yield from self._bind_path({"path": path, "tombstone": True})
