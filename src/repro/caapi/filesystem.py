"""Filesystem CAAPI — the paper's TensorFlow-plugin design (§IX).

"Internally, this CAAPI maintains a top-level directory in a single
DataCapsule. Each filename is represented as its own DataCapsule; the
top-level directory merely maps filenames to DataCapsule-names."

- The **directory capsule** is a log of ``{path -> file-capsule name}``
  bindings (and tombstones); its materialized view is rebuilt by verified
  replay, so the whole namespace inherits capsule integrity.
- Each **file capsule** (checkpoint pointer strategy) holds the file
  content as fixed-size chunk records; a range read reassembles the file
  with a single range proof.

Every method is a generator coroutine (run inside a sim process); the
filesystem is a *client-side* construct — servers see only ordinary
capsules ("the infrastructure merely makes the information durable and
available", §V-B).
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro import encoding
from repro.capsule.sealed import ContentKey, ReadGrant, open_payload, seal_payload
from repro.client.client import ClientWriter, GdpClient
from repro.client.owner import OwnerConsole
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.errors import CapsuleError, IntegrityError, RecordNotFoundError
from repro.naming.metadata import Metadata
from repro.naming.names import GdpName

__all__ = ["CapsuleFileSystem", "DEFAULT_CHUNK"]

DEFAULT_CHUNK = 1 * 1024 * 1024  # 1 MiB chunk records


class CapsuleFileSystem:
    """A mutable filesystem interface over immutable capsules."""

    def __init__(
        self,
        client: GdpClient,
        console: OwnerConsole,
        server_metadatas: Sequence[Metadata],
        *,
        writer_key: SigningKey | None = None,
        chunk_size: int = DEFAULT_CHUNK,
        scopes: Sequence[str] = (),
        acks: str = "any",
        encrypt: bool = False,
    ):
        if chunk_size < 1:
            raise CapsuleError("chunk_size must be >= 1")
        self.client = client
        self.console = console
        self.servers = list(server_metadatas)
        self.writer_key = writer_key or SigningKey.from_seed(
            b"fswriter:" + client.node_id.encode()
        )
        self.chunk_size = chunk_size
        self.scopes = tuple(scopes)
        self.acks = acks
        self.encrypt = encrypt
        self._dir_writer: ClientWriter | None = None
        self._dir_name: GdpName | None = None
        self._file_seq = 0
        #: per-file content keys (owner side, or unwrapped from grants)
        self._content_keys: dict[GdpName, ContentKey] = {}

    @property
    def directory_name(self) -> GdpName:
        """The top-level directory capsule's name."""
        if self._dir_name is None:
            raise CapsuleError("filesystem is not formatted yet")
        return self._dir_name

    # -- lifecycle -----------------------------------------------------------

    def format(self) -> Generator:
        """Create the top-level directory capsule; returns its name."""
        metadata = self.console.design_capsule(
            self.writer_key.public,
            pointer_strategy="chain",
            label="caapi.fs.directory",
            extra={"caapi": "filesystem"},
        )
        yield from self.console.place_capsule(
            metadata, self.servers, scopes=self.scopes
        )
        self._dir_writer = self.client.open_writer(
            metadata, self.writer_key, acks=self.acks
        )
        self._dir_name = metadata.name
        yield 0.2  # allow server re-advertisements to land
        return metadata.name

    def mount(self, directory_name: GdpName) -> Generator:
        """Read-only attach to an existing filesystem's directory."""
        yield from self.client.fetch_metadata(directory_name)
        self._dir_name = directory_name
        return directory_name

    # -- directory replay ------------------------------------------------------

    def _directory_view(self) -> Generator:
        """Replay the directory log into
        ``{path: (capsule raw, size, encrypted)}``."""
        assert self._dir_name is not None
        latest = yield from self.client.read_latest(self._dir_name)
        view: dict[str, tuple[bytes, int, bool]] = {}
        if latest is None:
            return view
        records = yield from self.client.read_range(
            self._dir_name, 1, latest.seqno
        )
        for record in records:
            entry = encoding.decode(record.payload)
            if entry.get("tombstone"):
                view.pop(entry["path"], None)
            else:
                view[entry["path"]] = (
                    entry["capsule"],
                    entry["size"],
                    bool(entry.get("encrypted")),
                )
        return view

    def listdir(self) -> Generator:
        """All live paths, sorted."""
        view = yield from self._directory_view()
        return sorted(view)

    def stat(self, path: str) -> Generator:
        """``(file capsule name, size)``; raises if absent."""
        view = yield from self._directory_view()
        if path not in view:
            raise RecordNotFoundError(f"no such file: {path!r}")
        raw, size, _encrypted = view[path]
        return GdpName(raw), size

    # -- file IO -----------------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> Generator:
        """Create/replace *path* with *data*; returns the file capsule
        name.  A replace writes a fresh capsule and re-binds the path —
        old versions stay intact and addressable (multi-versioned, as
        the paper's "secure, multi-versioned binaries" need)."""
        if self._dir_writer is None:
            raise CapsuleError("filesystem is read-only (mounted) or unformatted")
        self._file_seq += 1
        metadata = self.console.design_capsule(
            self.writer_key.public,
            pointer_strategy="checkpoint:16",
            label=f"caapi.fs.file:{path}",
            extra={"caapi": "filesystem.file", "fileseq": self._file_seq},
        )
        yield from self.console.place_capsule(
            metadata, self.servers, scopes=self.scopes
        )
        yield 0.2  # advertisement settling
        writer = self.client.open_writer(
            metadata, self.writer_key, acks=self.acks
        )
        content_key: ContentKey | None = None
        if self.encrypt:
            # §V: "read access control is maintained by selective
            # sharing of decryption keys" — one content key per file;
            # the infrastructure stores only ciphertext.
            content_key = ContentKey.generate(metadata.name)
            self._content_keys[metadata.name] = content_key
        chunks: list[bytes] = []
        seqno = 0
        for offset in range(0, len(data), self.chunk_size):
            chunk = data[offset : offset + self.chunk_size]
            seqno += 1
            if content_key is not None:
                chunk = seal_payload(content_key, seqno, chunk)
            chunks.append(chunk)
        if not data:
            chunks.append(
                seal_payload(content_key, 1, b"")
                if content_key is not None
                else b""
            )
        # Pipelined appends keep the uplink full instead of paying one
        # round trip per chunk (the paper's event-driven client library).
        yield from writer.append_stream(chunks)
        entry = encoding.encode(
            {
                "path": path,
                "capsule": metadata.name.raw,
                "size": len(data),
                "encrypted": self.encrypt,
            }
        )
        yield from self._dir_writer.append(entry)
        return metadata.name

    def read_file(self, path: str) -> Generator:
        """Read and reassemble *path* with verified range proofs;
        encrypted files are decrypted with the held content key."""
        view = yield from self._directory_view()
        if path not in view:
            raise RecordNotFoundError(f"no such file: {path!r}")
        raw, size, encrypted = view[path]
        file_name = GdpName(raw)
        latest = yield from self.client.read_latest(file_name)
        if latest is None:
            raise RecordNotFoundError(f"file capsule for {path!r} is empty")
        records = yield from self.client.read_range(
            file_name, 1, latest.seqno
        )
        if encrypted:
            content_key = self._content_keys.get(file_name)
            if content_key is None:
                raise IntegrityError(
                    f"file {path!r} is encrypted and no content key/grant "
                    "is held"
                )
            chunks = [
                open_payload(content_key, record.seqno, record.payload)
                for record in records
            ]
        else:
            chunks = [record.payload for record in records]
        data = b"".join(chunks)
        if len(data) != size:
            raise CapsuleError(
                f"file {path!r}: directory says {size} bytes, "
                f"capsule holds {len(data)}"
            )
        return data

    # -- read access control (key sharing) ---------------------------------

    def grant_read(self, path: str, reader_key: VerifyingKey) -> Generator:
        """Wrap *path*'s content key to a reader's public key; returns
        the :class:`ReadGrant` to hand over out of band (or store in a
        capsule)."""
        file_name, _size = yield from self.stat(path)
        content_key = self._content_keys.get(file_name)
        if content_key is None:
            raise IntegrityError(
                f"no content key held for {path!r} (not encrypted, or not "
                "the owner)"
            )
        return ReadGrant.create(content_key, reader_key)

    def accept_grant(self, grant: ReadGrant, reader_key: SigningKey) -> None:
        """Unwrap a received grant so :meth:`read_file` can decrypt."""
        content_key = grant.unwrap(reader_key)
        self._content_keys[grant.capsule] = content_key

    def delete(self, path: str) -> Generator:
        """Unlink *path* (tombstone in the directory log; the file
        capsule itself is immutable history)."""
        if self._dir_writer is None:
            raise CapsuleError("filesystem is read-only (mounted) or unformatted")
        view = yield from self._directory_view()
        if path not in view:
            raise RecordNotFoundError(f"no such file: {path!r}")
        entry = encoding.encode({"path": path, "tombstone": True})
        yield from self._dir_writer.append(entry)
