"""Lossy multimedia stream CAAPI (§IV-A, §V, §VI-B).

"A DataCapsule representing a streaming video can tolerate a few missing
frames" — the ``stream:W`` pointer strategy gives every record pointers
to its *W* predecessors, so a reader that lost up to ``W-1`` consecutive
frames in transmission still links the next frame into verified history
("allow for records missing in transmission while maintaining integrity
properties").

The subscriber surfaces gaps explicitly (frame numbers of lost records)
instead of stalling, which is the correct semantics for live media; the
same capsule range-read later (time-shift) recovers every frame that any
replica persisted.
"""

from __future__ import annotations

from typing import Callable, Generator, Sequence

from repro import encoding
from repro.caapi.base import CapsuleApp
from repro.capsule.heartbeat import Heartbeat
from repro.capsule.records import Record
from repro.client.client import GdpClient
from repro.client.owner import OwnerConsole
from repro.crypto.keys import SigningKey
from repro.errors import CapsuleError, GdpError
from repro.naming.metadata import Metadata
from repro.naming.names import GdpName

__all__ = ["StreamPublisher", "StreamSubscriber", "Frame"]


class Frame:
    """One media frame: index, a keyframe flag, and payload bytes."""

    __slots__ = ("index", "keyframe", "data", "seqno")

    def __init__(self, index: int, keyframe: bool, data: bytes, seqno: int = 0):
        self.index = index
        self.keyframe = keyframe
        self.data = data
        self.seqno = seqno

    def encode(self) -> bytes:
        """Canonical byte encoding."""
        return encoding.encode(
            {"i": self.index, "k": self.keyframe, "d": self.data}
        )

    @classmethod
    def from_record(cls, record: Record) -> "Frame":
        """Decode from a capsule record."""
        entry = encoding.decode(record.payload)
        return cls(entry["i"], entry["k"], entry["d"], record.seqno)

    def __repr__(self) -> str:
        kind = "K" if self.keyframe else "P"
        return f"Frame(#{self.index}{kind}, {len(self.data)}B)"


class StreamPublisher(CapsuleApp):
    """The single writer of a stream capsule."""

    CAAPI_KIND = "stream"
    CAAPI_LABEL = "caapi.stream"
    WRITER_SEED = b"streamwriter:"

    def __init__(
        self,
        client: GdpClient,
        console: OwnerConsole,
        server_metadatas: Sequence[Metadata],
        *,
        writer_key: SigningKey | None = None,
        window: int = 4,
        gop: int = 12,
        scopes: Sequence[str] = (),
        acks: str = "any",
    ):
        super().__init__(
            client,
            console,
            server_metadatas,
            writer_key=writer_key,
            scopes=scopes,
            acks=acks,
        )
        self.window = window
        self.gop = gop  # keyframe every `gop` frames
        self._frame_index = 0

    def _pointer_strategy(self) -> str:
        return f"stream:{self.window}"

    def _design_extra(self) -> dict:
        return {"gop": self.gop}

    def publish(self, data: bytes) -> Generator:
        """Append the next frame; returns the :class:`Frame`."""
        if self._writer is None:
            raise CapsuleError("stream not created yet")
        frame = Frame(
            self._frame_index,
            self._frame_index % self.gop == 0,
            data,
        )
        self._frame_index += 1
        receipt = yield from self._writer.append(frame.encode())
        frame.seqno = receipt.seqno
        return frame


class StreamSubscriber:
    """A loss-tolerant live consumer of a stream capsule."""

    def __init__(self, client: GdpClient, name: GdpName):
        self.client = client
        self.name = name
        self.delivered: list[Frame] = []
        self.gaps: list[int] = []
        self._next_expected = 1
        self._on_frame: Callable[[Frame], None] | None = None
        self._on_gap: Callable[[list[int]], None] | None = None

    def play(
        self,
        on_frame: Callable[[Frame], None],
        *,
        on_gap: Callable[[list[int]], None] | None = None,
    ) -> Generator:
        """Subscribe and deliver verified frames; gaps are reported via
        *on_gap* (and collected in :attr:`gaps`) rather than blocking
        playback."""
        self._on_frame = on_frame
        self._on_gap = on_gap
        start = yield from self.client.subscribe(self.name, self._on_record)
        self._next_expected = start
        return start

    def _on_record(self, record: Record, heartbeat: Heartbeat) -> None:
        if record.seqno > self._next_expected:
            missing = list(range(self._next_expected, record.seqno))
            self.gaps.extend(missing)
            if self._on_gap is not None:
                self._on_gap(missing)
        if record.seqno >= self._next_expected:
            self._next_expected = record.seqno + 1
        frame = Frame.from_record(record)
        self.delivered.append(frame)
        if self._on_frame is not None:
            self._on_frame(frame)

    def replay(self, first: int, last: int) -> Generator:
        """Time-shifted playback: fetch frames ``first..last`` from
        storage, skipping records that are permanently lost (holes) —
        each surviving record is fetched with its own position proof so
        integrity never depends on the missing ones."""
        frames: list[Frame] = []
        missing: list[int] = []
        for seqno in range(first, last + 1):
            try:
                record = yield from self.client.read(self.name, seqno)
            except GdpError:
                missing.append(seqno)
                continue
            frames.append(Frame.from_record(record))
        return frames, missing
