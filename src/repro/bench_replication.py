"""Replication-plane benchmark: the engine behind
``repro bench --suite replication``.

Two paired scenarios, both run inside the deterministic network
simulator (so every number is a function of the protocol, not of runner
hardware — the emitted document is byte-stable across machines):

**Anti-entropy sync.**  A 5 000-record capsule replicated on two
servers, with 1% divergence (the lagging replica is missing every 100th
record).  The same divergence is healed once with the original
full-scan protocol (:func:`~repro.server.replication.full_sync_once`:
complete seqno->digest summary + every heartbeat, O(capsule length)
bytes per round) and once with the Merkle-delta protocol
(:func:`~repro.server.replication.sync_once`: root exchange, O(log n)
bisection, size-capped batched fetch).  Measured: bytes on the wire and
simulated seconds, each as a full/delta ratio.

**Append pipeline.**  The same record stream written through the
one-PDU-per-append path (sequential ``append`` calls — one record, one
heartbeat, one round trip each) and through the batched/windowed
``append_stream`` (multi-record PDUs under a single tip heartbeat,
``window`` PDUs in flight).  Measured: records per simulated second.

The CI gate (``--check BENCH_replication.json``) enforces the ISSUE's
acceptance floors — >=10x fewer sync bytes, >=5x faster sync, >=5x
append throughput — plus a 30% no-regression band against the committed
baseline.
"""

from __future__ import annotations

import json

__all__ = ["run_bench", "check_regression", "GATED_RATIOS"]

#: ratio keys the CI gate enforces, with the floor each must beat even
#: before regression comparison (the ISSUE's acceptance criteria).
GATED_RATIOS = {
    "sync_bytes_ratio": 10.0,
    "sync_time_ratio": 5.0,
    "append_speedup": 5.0,
}

_REGRESSION_TOLERANCE = 0.30

#: sync scenario shape (5k records, 1% divergence)
SYNC_RECORDS = 5_000
SYNC_DIVERGENCE_STRIDE = 100
#: append scenario shape
APPEND_RECORDS = 300
APPEND_PAYLOAD = 120
APPEND_BATCH = 64
APPEND_WINDOW = 8

#: the constrained inter-site link both scenarios cross (10 Mbit/s,
#: 1 ms propagation — an edge uplink, where batching actually matters)
_LINK_BANDWIDTH = 1_250_000.0
_LINK_LATENCY = 0.001


def _mint_history():
    """Mint the shared 5k-record history once (the only wall-clock-
    expensive step; both sync worlds reuse the same Record/Heartbeat
    objects, so signature verification is memoized on the second
    populate)."""
    from repro.capsule import CapsuleWriter, DataCapsule
    from repro.crypto import SigningKey
    from repro.naming import make_capsule_metadata

    owner = SigningKey.from_seed(b"bench-repl-owner")
    writer_key = SigningKey.from_seed(b"bench-repl-writer")
    metadata = make_capsule_metadata(
        owner, writer_key.public, pointer_strategy="chain"
    )
    capsule = DataCapsule(metadata)
    writer = CapsuleWriter(capsule, writer_key)
    minted = []
    for i in range(SYNC_RECORDS):
        minted.append(writer.append(b"sync-record-%06d" % i))
    return owner, metadata, minted


def _build_sync_world(owner, metadata, minted):
    """Two servers across the constrained link, capsule placed on both,
    then the divergence injected directly: server ``a`` holds the full
    history, server ``b`` is missing every ``SYNC_DIVERGENCE_STRIDE``-th
    record (and its heartbeat)."""
    from repro.client import GdpClient, OwnerConsole
    from repro.routing import GdpRouter, RoutingDomain
    from repro.server import DataCapsuleServer
    from repro.sim import SimNetwork

    net = SimNetwork(seed=1009)
    clock = lambda: net.sim.now  # noqa: E731
    domain = RoutingDomain("global", clock=clock)
    r0 = GdpRouter(net, "r0", domain)
    r1 = GdpRouter(net, "r1", domain)
    net.connect(
        r0, r1, latency=_LINK_LATENCY, bandwidth=_LINK_BANDWIDTH
    )
    server_a = DataCapsuleServer(net, "a")
    server_a.attach(r0, latency=0.0001)
    server_b = DataCapsuleServer(net, "b")
    server_b.attach(r1, latency=0.0001)
    client = GdpClient(net, "bench_client")
    client.attach(r0, latency=0.0001)
    console = OwnerConsole(client, owner)

    def setup():
        yield server_a.advertise()
        yield server_b.advertise()
        yield client.advertise()
        yield from console.place_capsule(
            metadata, [server_a.metadata, server_b.metadata]
        )
        yield 0.5

    net.sim.run_process(setup(), "bench-sync-setup")
    capsule_a = server_a.hosted[metadata.name].capsule
    capsule_b = server_b.hosted[metadata.name].capsule
    for record, heartbeat in minted:
        capsule_a.insert(record, enforce_strategy=False)
        capsule_a.add_heartbeat(heartbeat)
        if record.seqno % SYNC_DIVERGENCE_STRIDE:
            capsule_b.insert(record, enforce_strategy=False)
            capsule_b.add_heartbeat(heartbeat)
    return net, server_a, server_b


def _run_sync(owner, metadata, minted, protocol) -> dict:
    """Heal the divergence once with *protocol* (a ``sync_once``-shaped
    generator function); returns bytes/seconds/records measurements."""
    net, server_a, server_b = _build_sync_world(owner, metadata, minted)
    bytes_before = net.bytes_on_wire()
    time_before = net.sim.now
    fetched = net.sim.run_process(
        protocol(server_b, metadata.name, server_a.name, timeout=120.0),
        "bench-sync",
    )
    measured = {
        "bytes": net.bytes_on_wire() - bytes_before,
        "seconds": round(net.sim.now - time_before, 6),
        "fetched": fetched,
    }
    expected = SYNC_RECORDS // SYNC_DIVERGENCE_STRIDE
    if fetched != expected:
        raise RuntimeError(
            f"sync benchmark healed {fetched} records, expected {expected}"
        )
    if (server_a.hosted[metadata.name].capsule.canonical_summary()
            != server_b.hosted[metadata.name].capsule.canonical_summary()):
        raise RuntimeError("sync benchmark did not converge the replicas")
    return measured


def _run_append(batched: bool) -> dict:
    """Write APPEND_RECORDS records over the constrained link, either
    one PDU per append (sequential) or batched/windowed; returns the
    records-per-simulated-second measurement."""
    from repro.client import GdpClient, OwnerConsole
    from repro.crypto import SigningKey
    from repro.routing import GdpRouter, RoutingDomain
    from repro.server import DataCapsuleServer
    from repro.sim import SimNetwork

    net = SimNetwork(seed=2003)
    clock = lambda: net.sim.now  # noqa: E731
    domain = RoutingDomain("global", clock=clock)
    r0 = GdpRouter(net, "r0", domain)
    r1 = GdpRouter(net, "r1", domain)
    net.connect(
        r0, r1, latency=_LINK_LATENCY, bandwidth=_LINK_BANDWIDTH
    )
    server = DataCapsuleServer(net, "srv")
    server.attach(r0, latency=0.0001)
    client = GdpClient(net, "bench_writer")
    client.attach(r1, latency=0.0001)
    owner = SigningKey.from_seed(b"bench-append-owner")
    writer_key = SigningKey.from_seed(b"bench-append-writer")
    console = OwnerConsole(client, owner)
    payloads = [
        b"%06d:" % i + b"x" * (APPEND_PAYLOAD - 7)
        for i in range(APPEND_RECORDS)
    ]
    elapsed = {}

    def scenario():
        yield server.advertise()
        yield client.advertise()
        metadata = console.design_capsule(
            writer_key.public, pointer_strategy="chain"
        )
        yield from console.place_capsule(metadata, [server.metadata])
        yield 0.5
        writer = client.open_writer(metadata, writer_key)
        start = net.sim.now
        if batched:
            yield from writer.append_stream(
                payloads,
                window=APPEND_WINDOW,
                batch_records=APPEND_BATCH,
            )
        else:
            for payload in payloads:
                yield from writer.append(payload)
        elapsed["seconds"] = net.sim.now - start
        tip = server.hosted[metadata.name].capsule.last_seqno
        if tip != APPEND_RECORDS:
            raise RuntimeError(
                f"append benchmark landed {tip} records, "
                f"expected {APPEND_RECORDS}"
            )

    net.sim.run_process(scenario(), "bench-append")
    return {
        "seconds": round(elapsed["seconds"], 6),
        "records_per_sec": round(APPEND_RECORDS / elapsed["seconds"], 1),
    }


def run_bench(*, progress=None) -> dict:
    """Run both paired scenarios; returns the BENCH_replication.json
    document (dict).  Deterministic: simulated time and simulated bytes
    only, so the document is identical on every machine."""
    from repro.server.replication import full_sync_once, sync_once

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    note(f"minting {SYNC_RECORDS}-record history")
    owner, metadata, minted = _mint_history()
    note("sync: full-scan baseline")
    full = _run_sync(owner, metadata, minted, full_sync_once)
    note("sync: merkle-delta")
    delta = _run_sync(owner, metadata, minted, sync_once)
    note("append: one PDU per append")
    sequential = _run_append(batched=False)
    note("append: batched/windowed stream")
    batched = _run_append(batched=True)

    ratios = {
        "sync_bytes_ratio": round(full["bytes"] / delta["bytes"], 2),
        "sync_time_ratio": round(full["seconds"] / delta["seconds"], 2),
        "append_speedup": round(
            batched["records_per_sec"] / sequential["records_per_sec"], 2
        ),
    }
    return {
        "schema": "gdp-bench-replication/1",
        "sync": {
            "capsule_records": SYNC_RECORDS,
            "divergent_records": SYNC_RECORDS // SYNC_DIVERGENCE_STRIDE,
            "full_scan": full,
            "merkle_delta": delta,
            "bytes_per_synced_record": round(
                delta["bytes"] / delta["fetched"], 1
            ),
        },
        "append": {
            "records": APPEND_RECORDS,
            "payload_bytes": APPEND_PAYLOAD,
            "batch_records": APPEND_BATCH,
            "window": APPEND_WINDOW,
            "per_record": sequential,
            "batched": batched,
        },
        "ratios": ratios,
    }


def check_regression(current: dict, baseline: dict) -> list[str]:
    """Compare a fresh run against the checked-in baseline; returns a
    list of failure strings (empty = gate passes).

    Gated: every ratio in :data:`GATED_RATIOS` must (a) be present, (b)
    beat its absolute floor, and (c) be within 30% of the baseline;
    additionally bytes-per-synced-record must not grow >30% and batched
    records/sec must not drop >30%.  The simulator is deterministic, so
    these comparisons are machine-independent.
    """
    failures = []
    cur = current.get("ratios", {})
    base = baseline.get("ratios", {})
    for key, floor in GATED_RATIOS.items():
        if key not in cur:
            failures.append(f"ratios.{key}: missing from current run")
            continue
        if cur[key] < floor:
            failures.append(
                f"ratios.{key}: {cur[key]:.2f}x is below the "
                f"{floor:.1f}x acceptance floor"
            )
        if key in base and cur[key] < base[key] * (1 - _REGRESSION_TOLERANCE):
            failures.append(
                f"ratios.{key}: {cur[key]:.2f}x regressed >30% from "
                f"baseline {base[key]:.2f}x"
            )
    cur_bpr = current.get("sync", {}).get("bytes_per_synced_record")
    base_bpr = baseline.get("sync", {}).get("bytes_per_synced_record")
    if cur_bpr is None:
        failures.append("sync.bytes_per_synced_record: missing")
    elif base_bpr and cur_bpr > base_bpr * (1 + _REGRESSION_TOLERANCE):
        failures.append(
            f"sync.bytes_per_synced_record: {cur_bpr:.0f} grew >30% "
            f"from baseline {base_bpr:.0f}"
        )
    cur_rps = (
        current.get("append", {}).get("batched", {}).get("records_per_sec")
    )
    base_rps = (
        baseline.get("append", {}).get("batched", {}).get("records_per_sec")
    )
    if cur_rps is None:
        failures.append("append.batched.records_per_sec: missing")
    elif base_rps and cur_rps < base_rps * (1 - _REGRESSION_TOLERANCE):
        failures.append(
            f"append.batched.records_per_sec: {cur_rps:.0f} dropped >30% "
            f"from baseline {base_rps:.0f}"
        )
    return failures


def format_table(doc: dict) -> str:
    """Human-readable summary of a benchmark document."""
    sync = doc["sync"]
    append = doc["append"]
    ratios = doc["ratios"]
    lines = [
        f"sync: {sync['capsule_records']} records, "
        f"{sync['divergent_records']} divergent",
        "protocol          bytes on wire     sim seconds",
        "-" * 48,
        f"{'full scan':<16} {sync['full_scan']['bytes']:>13,} "
        f"{sync['full_scan']['seconds']:>15.4f}",
        f"{'merkle delta':<16} {sync['merkle_delta']['bytes']:>13,} "
        f"{sync['merkle_delta']['seconds']:>15.4f}",
        f"{'ratio':<16} {ratios['sync_bytes_ratio']:>12.2f}x "
        f"{ratios['sync_time_ratio']:>14.2f}x",
        f"bytes per synced record: {sync['bytes_per_synced_record']:,.0f}",
        "",
        f"append: {append['records']} x {append['payload_bytes']}B records "
        f"(batch={append['batch_records']}, window={append['window']})",
        "pipeline            records/sec     sim seconds",
        "-" * 48,
        f"{'one PDU each':<16} {append['per_record']['records_per_sec']:>13,.0f} "
        f"{append['per_record']['seconds']:>15.4f}",
        f"{'batched stream':<16} {append['batched']['records_per_sec']:>13,.0f} "
        f"{append['batched']['seconds']:>15.4f}",
        f"{'speedup':<16} {ratios['append_speedup']:>12.2f}x",
    ]
    return "\n".join(lines)


def load_baseline(path: str) -> dict:
    """Read a BENCH_replication.json document from *path*."""
    with open(path) as fh:
        return json.load(fh)
