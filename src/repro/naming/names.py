"""Flat 256-bit GDP names.

Every addressable entity — DataCapsules, DataCapsule-servers, GDP-routers,
organizations — lives in one flat name-space (§IV-B).  A name is the
SHA-256 hash of the entity's signed metadata, which makes the name a
*cryptographic trust anchor*: whoever knows a name can verify that a
presented metadata record is the genuine preimage, and from the metadata
obtain the entity's public keys without any PKI.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.hashing import HASH_LEN, hash_value
from repro.errors import NameError_

__all__ = ["GdpName"]

_B32_ALPHABET = "abcdefghijklmnopqrstuvwxyz234567"


class GdpName:
    """An immutable 256-bit flat name.

    Names order and hash by their raw bytes so they can key FIBs,
    GLookupService tables, and DHT rings directly.
    """

    __slots__ = ("_raw",)

    def __init__(self, raw: bytes):
        raw = bytes(raw)
        if len(raw) != HASH_LEN:
            raise NameError_(
                f"GDP names are {HASH_LEN} bytes, got {len(raw)}"
            )
        object.__setattr__(self, "_raw", raw)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("GdpName is immutable")

    @classmethod
    def derive(cls, domain: str, metadata_wire: Any) -> "GdpName":
        """Derive a name as the domain-separated hash of canonical
        metadata.  ``domain`` distinguishes entity classes (e.g.
        ``"gdp.capsule"`` vs ``"gdp.server"``) so a server can never
        squat a capsule's name by reusing bytes."""
        return cls(hash_value(domain, metadata_wire))

    @property
    def raw(self) -> bytes:
        """The raw 32-byte name."""
        return self._raw

    def as_int(self) -> int:
        """The name as an unsigned integer (used for DHT XOR distance)."""
        return int.from_bytes(self._raw, "big")

    def distance(self, other: "GdpName") -> int:
        """Kademlia-style XOR distance to *other*."""
        return self.as_int() ^ other.as_int()

    def hex(self) -> str:
        """Hex string form."""
        return self._raw.hex()

    def human(self) -> str:
        """Short printable form (first 10 base32 chars), for logs only."""
        bits = int.from_bytes(self._raw[:8], "big")
        chars = []
        for shift in range(59, 9, -5):
            chars.append(_B32_ALPHABET[(bits >> shift) & 0x1F])
        return "".join(chars)

    @classmethod
    def from_hex(cls, text: str) -> "GdpName":
        """Parse from a hex string."""
        try:
            return cls(bytes.fromhex(text))
        except ValueError as exc:
            raise NameError_(f"invalid hex name: {exc}") from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GdpName):
            return NotImplemented
        return self._raw == other._raw

    def __lt__(self, other: "GdpName") -> bool:
        return self._raw < other._raw

    def __le__(self, other: "GdpName") -> bool:
        return self._raw <= other._raw

    def __hash__(self) -> int:
        return hash(self._raw)

    def __repr__(self) -> str:
        return f"GdpName({self.human()})"

    def __bytes__(self) -> bytes:
        return self._raw
