"""Flat naming: 256-bit self-certifying names and signed metadata."""

from repro.naming.metadata import (
    KIND_CAPSULE,
    KIND_CLIENT,
    KIND_ORGANIZATION,
    KIND_ROUTER,
    KIND_SERVER,
    MODE_QSW,
    MODE_SSW,
    Metadata,
    make_capsule_metadata,
    make_client_metadata,
    make_organization_metadata,
    make_router_metadata,
    make_server_metadata,
)
from repro.naming.names import GdpName

__all__ = [
    "GdpName",
    "Metadata",
    "KIND_CLIENT",
    "MODE_SSW",
    "MODE_QSW",
    "make_client_metadata",
    "KIND_CAPSULE",
    "KIND_SERVER",
    "KIND_ROUTER",
    "KIND_ORGANIZATION",
    "make_capsule_metadata",
    "make_server_metadata",
    "make_router_metadata",
    "make_organization_metadata",
]
