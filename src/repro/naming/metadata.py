"""Signed metadata records — the preimages of flat GDP names.

Metadata "is essentially a list of key-value pairs signed by the
[entity]-owner, that describe immutable properties" (§V).  For a
DataCapsule the mandatory properties are the single writer's public
signature key and the owner's public key; servers, routers and
organizations carry at least their own public key.

The flat name is the domain-separated hash of ``(kind, properties)``.
The owner's signature is carried *alongside* the hashed content rather
than inside it, so verification is: (1) recompute the name from the
properties, (2) check the signature against the owner key found in the
properties.  A presented metadata record therefore self-certifies
against its name with no external PKI (Table I, "Federated
architecture").
"""

from __future__ import annotations

from typing import Any, Mapping

from repro import encoding
from repro.crypto.keys import SigningKey, VerifyingKey
from repro.errors import NameError_, SignatureError
from repro.naming.names import GdpName

__all__ = [
    "KIND_CAPSULE",
    "KIND_SERVER",
    "KIND_ROUTER",
    "KIND_ORGANIZATION",
    "KIND_CLIENT",
    "Metadata",
    "make_capsule_metadata",
    "make_server_metadata",
    "make_router_metadata",
    "make_organization_metadata",
    "make_client_metadata",
]

KIND_CAPSULE = "gdp.capsule"
KIND_SERVER = "gdp.server"
KIND_ROUTER = "gdp.router"
KIND_ORGANIZATION = "gdp.org"
KIND_CLIENT = "gdp.client"

_VALID_KINDS = frozenset(
    {KIND_CAPSULE, KIND_SERVER, KIND_ROUTER, KIND_ORGANIZATION, KIND_CLIENT}
)

# Property keys with architectural meaning.
PROP_OWNER_KEY = "owner_pub"
PROP_WRITER_KEY = "writer_pub"
PROP_SELF_KEY = "self_pub"
PROP_POINTER_STRATEGY = "pointer_strategy"
PROP_WRITER_MODE = "writer_mode"

MODE_SSW = "ssw"
MODE_QSW = "qsw"


class Metadata:
    """An immutable, signed, named metadata record."""

    __slots__ = ("kind", "properties", "signature", "_name")

    def __init__(self, kind: str, properties: Mapping[str, Any], signature: bytes):
        if kind not in _VALID_KINDS:
            raise NameError_(f"unknown metadata kind {kind!r}")
        if PROP_OWNER_KEY not in properties:
            raise NameError_(f"metadata must include {PROP_OWNER_KEY!r}")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "properties", dict(properties))
        object.__setattr__(self, "signature", bytes(signature))
        object.__setattr__(
            self, "_name", GdpName.derive(kind, [kind, self.properties])
        )

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Metadata is immutable")

    @property
    def name(self) -> GdpName:
        """The flat name this metadata is the preimage of."""
        return self._name

    @property
    def owner_key(self) -> VerifyingKey:
        """The owner's verifying key."""
        return VerifyingKey.from_bytes(self.properties[PROP_OWNER_KEY])

    @property
    def writer_key(self) -> VerifyingKey:
        """The designated single writer's key (capsules only)."""
        if PROP_WRITER_KEY not in self.properties:
            raise NameError_("metadata has no writer key")
        return VerifyingKey.from_bytes(self.properties[PROP_WRITER_KEY])

    @property
    def self_key(self) -> VerifyingKey:
        """The entity's own key (servers / routers / organizations)."""
        if PROP_SELF_KEY not in self.properties:
            raise NameError_("metadata has no self key")
        return VerifyingKey.from_bytes(self.properties[PROP_SELF_KEY])

    def signing_preimage(self) -> bytes:
        """The exact bytes the signature covers."""
        return b"gdp.metadata" + encoding.encode([self.kind, self.properties])

    def verify(self, expected_name: GdpName | None = None) -> None:
        """Verify self-certification: name matches the content hash and
        the owner's signature is valid.  Raises on failure."""
        if expected_name is not None and self._name != expected_name:
            raise NameError_(
                f"metadata hashes to {self._name!r}, expected {expected_name!r}"
            )
        if not self.owner_key.verify(self.signing_preimage(), self.signature):
            raise SignatureError("metadata owner signature invalid")

    def to_wire(self) -> dict:
        """Wire-encodable representation.

        ``properties`` is copied: the sim delivers PDUs by reference and
        the tamper fault middleware corrupts payloads in place, so
        handing out the live dict would let one tampered advertisement
        permanently corrupt this endpoint's own identity (the values are
        immutable bytes/str, so a shallow copy isolates fully).
        """
        return {
            "kind": self.kind,
            "properties": dict(self.properties),
            "signature": self.signature,
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "Metadata":
        """Rebuild from a wire form; raises on malformed input."""
        return cls(wire["kind"], dict(wire["properties"]), wire["signature"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Metadata):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.properties == other.properties
            and self.signature == other.signature
        )

    def __hash__(self) -> int:
        return hash((self.kind, self._name, self.signature))

    def __repr__(self) -> str:
        return f"Metadata(kind={self.kind}, name={self._name.human()})"


def _make(kind: str, owner: SigningKey, properties: dict[str, Any]) -> Metadata:
    properties = dict(properties)
    properties[PROP_OWNER_KEY] = owner.public.to_bytes()
    preimage = b"gdp.metadata" + encoding.encode([kind, properties])
    return Metadata(kind, properties, owner.sign(preimage))


def make_capsule_metadata(
    owner: SigningKey,
    writer_key: VerifyingKey,
    pointer_strategy: str = "chain",
    writer_mode: str = MODE_SSW,
    extra: Mapping[str, Any] | None = None,
) -> Metadata:
    """Create signed DataCapsule metadata.

    ``writer_mode`` declares Strict (``"ssw"``) or Quasi (``"qsw"``)
    Single Writer semantics (§VI-C): under SSW, two writer-signed
    heartbeats for one seqno are equivocation; under QSW they are an
    expected (rare) branch.  *extra* may carry application-defined
    immutable properties, e.g. a human-readable label, content-type, or
    a creation nonce to give two otherwise-identical capsules distinct
    names.
    """
    if writer_mode not in (MODE_SSW, MODE_QSW):
        raise NameError_(f"unknown writer mode {writer_mode!r}")
    properties: dict[str, Any] = dict(extra or {})
    properties[PROP_WRITER_KEY] = writer_key.to_bytes()
    properties[PROP_POINTER_STRATEGY] = pointer_strategy
    properties[PROP_WRITER_MODE] = writer_mode
    return _make(KIND_CAPSULE, owner, properties)


def make_server_metadata(
    owner: SigningKey,
    server_key: VerifyingKey,
    extra: Mapping[str, Any] | None = None,
) -> Metadata:
    """Create signed DataCapsule-server metadata (§V: a server name is
    "derived in a similar way as the DataCapsule ... includes a public
    key of the DataCapsule-server")."""
    properties: dict[str, Any] = dict(extra or {})
    properties[PROP_SELF_KEY] = server_key.to_bytes()
    return _make(KIND_SERVER, owner, properties)


def make_router_metadata(
    owner: SigningKey,
    router_key: VerifyingKey,
    extra: Mapping[str, Any] | None = None,
) -> Metadata:
    """Create signed GDP-router metadata."""
    properties: dict[str, Any] = dict(extra or {})
    properties[PROP_SELF_KEY] = router_key.to_bytes()
    return _make(KIND_ROUTER, owner, properties)


def make_client_metadata(
    owner: SigningKey,
    client_key: VerifyingKey | None = None,
    extra: Mapping[str, Any] | None = None,
) -> Metadata:
    """Create client (reader/writer endpoint) metadata; clients have flat
    names too so that responses and subscription pushes can be routed
    back to them ("one can communicate directly with services, data, or
    in the general case---principals", §IV-B)."""
    properties: dict[str, Any] = dict(extra or {})
    properties[PROP_SELF_KEY] = (client_key or owner.public).to_bytes()
    return _make(KIND_CLIENT, owner, properties)


def make_organization_metadata(
    owner: SigningKey,
    org_key: VerifyingKey | None = None,
    extra: Mapping[str, Any] | None = None,
) -> Metadata:
    """Create organization metadata; the org key defaults to the owner's
    own key (a one-person organization)."""
    properties: dict[str, Any] = dict(extra or {})
    properties[PROP_SELF_KEY] = (org_key or owner.public).to_bytes()
    return _make(KIND_ORGANIZATION, owner, properties)
