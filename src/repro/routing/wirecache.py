"""Interned wire blobs for repeated delegation evidence (§VII).

A server advertising 10k capsule names produces 10k RouteEntries that
all carry the *same* principal metadata, RtCert, and router metadata —
only the per-name service chain differs.  Encoding that shared evidence
into every entry's wire form (the DHT tier stores wire forms) would
re-serialize identical certificates 10k times and decode 10k distinct
copies on the way back.

This module interns evidence at the canonical-bytes level:

- :func:`encode_blob` returns the canonical encoded ``bytes`` of an
  object's wire form, cached per live object.  Bytes are immutable, so
  — unlike a shared wire *dict* — a cached blob can be embedded in any
  number of entry wires without tamper-middleware aliasing hazards
  (see ``Metadata.to_wire``'s defensive copy for why dicts can't be
  shared).
- :func:`decode_blob` decodes a blob back to an evidence object,
  keyed by the exact bytes — so all 10k entries fetched from the DHT
  share *one* decoded Metadata/RtCert object instead of 10k copies.

Both caches are bounded LRU; eviction only costs a future re-encode.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro import encoding

__all__ = ["encode_blob", "decode_blob", "intern_stats", "clear_intern_caches"]

#: bounded size of each LRU cache (entries)
INTERN_CACHE_MAX = 4096

#: id(obj) -> (obj, blob); the strong reference keeps the id stable
_by_object: "OrderedDict[int, tuple[Any, bytes]]" = OrderedDict()
#: (kind, blob) -> decoded object
_by_blob: "OrderedDict[tuple[str, bytes], Any]" = OrderedDict()

_stats = {
    "encode_hits": 0,
    "encode_misses": 0,
    "decode_hits": 0,
    "decode_misses": 0,
}


def encode_blob(kind: str, obj: Any) -> bytes:
    """The canonical encoded bytes of ``obj.to_wire()``, interned per
    live object (*kind* namespaces the reverse mapping)."""
    key = id(obj)
    hit = _by_object.get(key)
    if hit is not None and hit[0] is obj:
        _stats["encode_hits"] += 1
        _by_object.move_to_end(key)
        return hit[1]
    _stats["encode_misses"] += 1
    blob = encoding.encode(obj.to_wire())
    _by_object[key] = (obj, blob)
    if len(_by_object) > INTERN_CACHE_MAX:
        _by_object.popitem(last=False)
    # Seed the reverse direction so a local round trip (store then
    # fetch) decodes straight back to the object we already hold.
    blob_key = (kind, blob)
    if blob_key not in _by_blob:
        _by_blob[blob_key] = obj
        if len(_by_blob) > INTERN_CACHE_MAX:
            _by_blob.popitem(last=False)
    return blob


def decode_blob(kind: str, blob: bytes, decoder: Callable[[Any], Any]) -> Any:
    """Decode an evidence blob, interned by its exact bytes: repeated
    blobs (the same RtCert inside 10k entries) decode once and share
    one object.  *decoder* maps the decoded wire form to the object."""
    key = (kind, bytes(blob))
    obj = _by_blob.get(key)
    if obj is not None:
        _stats["decode_hits"] += 1
        _by_blob.move_to_end(key)
        return obj
    _stats["decode_misses"] += 1
    obj = decoder(encoding.decode(blob))
    _by_blob[key] = obj
    if len(_by_blob) > INTERN_CACHE_MAX:
        _by_blob.popitem(last=False)
    _by_object[id(obj)] = (obj, key[1])
    if len(_by_object) > INTERN_CACHE_MAX:
        _by_object.popitem(last=False)
    return obj


def intern_stats() -> dict:
    """Hit/miss counters plus current cache sizes (for tests/benches)."""
    return {
        **_stats,
        "encode_cached": len(_by_object),
        "decode_cached": len(_by_blob),
    }


def clear_intern_caches() -> None:
    """Reset both caches and the counters (test isolation)."""
    _by_object.clear()
    _by_blob.clear()
    for key in _stats:
        _stats[key] = 0
