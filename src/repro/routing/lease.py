"""Advertisement lease refresh: keeping routes alive on purpose.

With leases (§VII liveness), an advertisement is a *claim with an
expiry*: GLookup entries and FIB installs are capped at ``expires_at``,
so a silently dead endpoint's routes lapse on their own — no reaper, no
trust in the death being reported.  The flip side is that live endpoints
must re-advertise before their lease runs out; that is this daemon's
whole job.

The cadence mirrors :class:`~repro.server.replication.AntiEntropyDaemon`:
a nominal interval (default: half the endpoint's lease) with seeded
jitter so a fleet of servers does not stampede its routers in lockstep,
while simtest replays stay byte-identical.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.errors import GdpError
from repro.routing.endpoint import Endpoint

__all__ = ["LeaseRefreshDaemon"]


class LeaseRefreshDaemon:
    """Background process re-advertising an endpoint before its
    advertisement lease expires.

    ``interval`` defaults to half the endpoint's ``lease_ttl`` so every
    refresh lands with a comfortable margin; ``jitter`` draws each pause
    from ``interval * [1 - jitter/2, 1 + jitter/2]`` with a dedicated
    seeded RNG.  Crashed endpoints (``endpoint.crashed`` truthy) skip
    their turn — their routes are *supposed* to lapse; ``restart()``
    re-advertises explicitly.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        interval: float | None = None,
        *,
        jitter: float = 0.25,
        rng: random.Random | None = None,
    ):
        if interval is None:
            if endpoint.lease_ttl is None:
                raise GdpError(
                    "lease refresh needs an interval or an endpoint "
                    "with a lease_ttl"
                )
            interval = endpoint.lease_ttl / 2.0
        self.endpoint = endpoint
        self.interval = interval
        self.jitter = jitter
        self.rng = rng or random.Random(f"leaserefresh:{endpoint.node_id}")
        self.refreshes = 0
        self.failures = 0
        self._running = False

    def start(self) -> None:
        """Start the background process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.endpoint.sim.spawn(
            self._loop(), name=f"leaserefresh:{self.endpoint.node_id}"
        )

    def stop(self) -> None:
        """Stop after the current refresh."""
        self._running = False

    def _next_delay(self) -> float:
        if self.jitter <= 0:
            return self.interval
        spread = self.jitter * (self.rng.random() - 0.5)
        return self.interval * (1.0 + spread)

    def _loop(self) -> Generator:
        while self._running:
            yield self._next_delay()
            if not self._running:
                return
            if getattr(self.endpoint, "crashed", False):
                continue
            try:
                # A handshake stalled by a lost PDU must not wedge the
                # daemon: abandon it and retry next tick, and bound each
                # attempt by our own period.
                self.endpoint.abandon_advertisement()
                yield self.endpoint.sim.timeout(
                    self.endpoint.advertise(self.endpoint.current_catalog()),
                    max(self.interval, 1.0),
                    f"lease refresh {self.endpoint.node_id}",
                )
                self.refreshes += 1
            except GdpError:
                # Rejected, unroutable, or timed out this round; the
                # next tick (well inside the remaining lease) retries
                # with a fresh HELLO.
                self.failures += 1
