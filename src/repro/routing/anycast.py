"""Anycast replica selection (§VI, Table I "Locality").

"For highly replicated DataCapsules, the underlying routing network
ensures that the requests are automatically directed to the closest
replica."  Selection runs at the router that resolved a name through its
GLookupService and ranks candidate entries:

1. entries attached to *this* router (distance 0);
2. entries attached elsewhere in this domain, by router-hop distance;
3. entries reachable via a child domain (one hop of hierarchy away);

deterministic tie-break by principal name, so replicas see a stable
choice and tests are reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import RoutingError
from repro.routing.glookup import RouteEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.routing.router import GdpRouter

__all__ = ["select_entry", "rank_entries"]


def _distance(router: "GdpRouter", entry: RouteEntry) -> tuple[int, int]:
    """(tier, hops) ranking key; lower is closer."""
    if entry.via_child is not None:
        return (2, 0)
    if entry.router == router.name:
        return (0, 0)
    target = router.domain.router_by_name(entry.router)
    if target is None:
        # Attachment router unknown (left the domain): rank last.
        return (3, 0)
    try:
        return (1, router.domain.hop_distance(router, target))
    except RoutingError:
        return (3, 0)


def rank_entries(
    router: "GdpRouter", entries: list[RouteEntry]
) -> list[RouteEntry]:
    """Candidates ordered closest-first."""
    return sorted(
        entries,
        key=lambda e: (*_distance(router, e), e.principal.raw),
    )


def select_entry(
    router: "GdpRouter", entries: list[RouteEntry]
) -> RouteEntry | None:
    """The closest usable entry, or None."""
    ranked = rank_entries(router, entries)
    for entry in ranked:
        tier, _ = _distance(router, entry)
        if tier < 3:
            return entry
    return None
