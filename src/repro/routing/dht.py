"""A Kademlia-style DHT as a scalable global GLookupService backend.

§VII: "the GLookupService is essentially a key-value store and is not
required to be trusted; existing technologies such as distributed hash
tables (DHTs) can be used to implement a highly distributed and scalable
GLookupService."

This is a *message-level* Kademlia over the 256-bit flat name space:
every FIND_NODE / FIND_VALUE / STORE / PING is a real
:class:`~repro.routing.pdu.Pdu` through the transport abstraction, so
the same node code runs under :class:`~repro.runtime.transport.SimTransport`
(deterministic chaos — drops, tampering, delays, replays, crashes all
apply to DHT traffic) and over asyncio TCP.  Liveness is discovered the
only way a distributed system can: per-RPC timeout + retry, with
unreachable peers demoted from their k-bucket and replaced from a
per-bucket replacement cache.

Churn tolerance:

- **records are TTL'd and versioned** — per-principal, newest-wins on
  merge, with tombstones for deletion; an :class:`~repro.routing.fib.ExpiryWheel`
  per node reclaims dead records lazily;
- **re-replication** — a lookup that observes fewer than k live holders
  re-stores the merged records on the closest responsive non-holders
  (Kademlia caching as repair), and STOREs report *acked* replica
  counts so under-replication is measured, never assumed away;
- **leave/crash** — a leaving node hands its records to its closest
  peers; a crashed node simply stops answering and the demotion +
  republish machinery routes around it.

Because GLookup entries are *independently verifiable* (they carry
delegation chains), the DHT nodes never need to be trusted — a node
returning a forged entry fails the verifier exactly like a compromised
GLookupService does.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Any, Callable, Iterable

from repro import encoding
from repro.errors import TimeoutError_, TransportError, WireFormatError
from repro.naming.names import GdpName
from repro.routing.fib import ExpiryWheel
from repro.routing.pdu import (
    Pdu,
    T_DHT_FIND_NODE,
    T_DHT_FIND_VALUE,
    T_DHT_NODES,
    T_DHT_PING,
    T_DHT_PONG,
    T_DHT_STORE,
    T_DHT_STORE_ACK,
    T_DHT_VALUES,
)
from repro.sim.net import Node

__all__ = ["DhtNode", "KademliaDht", "DhtStats", "LookupResult", "build_dht"]

KEY_BITS = 256

#: one RPC attempt's deadline (simulated seconds)
RPC_TIMEOUT = 1.0
#: extra attempts after the first before a peer is demoted
RPC_RETRIES = 1
#: default lifetime of a stored record (republish must beat this)
RECORD_TTL = 30.0
#: don't ping a bucket head seen more recently than this (Kademlia's
#: "recently seen nodes are almost certainly alive" optimization)
PING_STALENESS = 30.0
#: point-to-point overlay link shape (full mesh; loss stays 0 so the
#: DHT draws nothing from the network RNG — determinism by construction)
LINK_LATENCY = 0.0005
LINK_BANDWIDTH = 10e9

_REPLY_TYPES = frozenset((T_DHT_NODES, T_DHT_VALUES, T_DHT_STORE_ACK, T_DHT_PONG))


class DhtStats:
    """Shared RPC accounting across one DHT's nodes.

    ``messages`` counts lookup-plane RPCs (FIND_NODE / FIND_VALUE /
    STORE) for the O(log n) complexity assertions; maintenance pings are
    tracked separately so background bucket upkeep doesn't pollute the
    per-operation cost numbers.
    """

    __slots__ = ("messages", "pings", "timeouts", "demotions", "under_replicated")

    def __init__(self):
        self.messages = 0
        self.pings = 0
        self.timeouts = 0
        self.demotions = 0
        self.under_replicated = 0


class LookupResult:
    """What one iterative lookup learned."""

    __slots__ = (
        "key", "hops", "closest", "responded", "failed", "holders",
        "records", "values",
    )

    def __init__(self, key: GdpName):
        self.key = key
        #: iterative rounds (the O(log n)-bounded quantity)
        self.hops = 0
        #: k closest *responsive* peers, nearest first
        self.closest: list[GdpName] = []
        self.responded: set[GdpName] = set()
        self.failed: set[GdpName] = set()
        #: responsive peers that returned at least one record
        self.holders: set[GdpName] = set()
        #: merged records, principal raw -> newest record
        self.records: dict[bytes, dict] = {}
        #: live non-tombstone record payloads (filled by the get path)
        self.values: list[Any] = []


def make_record(
    principal: bytes, version: int, value: Any, expires_at: float,
    *, tombstone: bool = False,
) -> dict:
    """Build one wire record: per-principal versioned TTL'd value."""
    record = {
        "p": bytes(principal),
        "v": int(version),
        "d": value,
        "e": encoding.pack_float(expires_at),
    }
    if tombstone:
        record["t"] = 1
    return record


def record_expiry(record: dict) -> float:
    """The absolute expiry of a (validated) record."""
    return encoding.unpack_float(record["e"])


def _valid_record(record: Any) -> bool:
    """Shape check for records arriving from untrusted peers."""
    return (
        isinstance(record, dict)
        and isinstance(record.get("p"), (bytes, bytearray))
        and isinstance(record.get("v"), int)
        and "d" in record
        and isinstance(record.get("e"), (bytes, bytearray))
        and len(record["e"]) == 8
    )


def value_principal(value: Any) -> bytes:
    """Content identity for anonymous values (the generic put path):
    distinct values coexist under one key, identical re-puts merge."""
    return hashlib.sha256(encoding.encode(value)).digest()


class DhtNode(Node):
    """One DHT participant: k-buckets + a versioned TTL'd record store,
    speaking FIND_NODE / FIND_VALUE / STORE / PING over a transport.

    Detached construction (``network=None``) keeps the routing-table
    data structures testable without a simulator; such a node cannot
    send RPCs (ping-before-evict degrades to keep-the-oldest, which is
    Kademlia's behaviour for an unreachable prober too).
    """

    def __init__(
        self,
        name: GdpName,
        k: int = 8,
        *,
        alpha: int = 3,
        network=None,
        stats: DhtStats | None = None,
    ):
        self.name = name
        self.k = k
        self.alpha = alpha
        self.stats = stats if stats is not None else DhtStats()
        self.buckets: list[list[GdpName]] = [[] for _ in range(KEY_BITS)]
        #: per-bucket candidates waiting for a ping-before-evict verdict
        self.replacements: dict[int, list[GdpName]] = {}
        #: peer -> transport address (underlay label, not liveness)
        self.addrs: dict[GdpName, str] = {}
        self.last_seen: dict[GdpName, float] = {}
        #: key -> principal raw -> record (versioned, TTL'd, tombstoned)
        self.store: dict[GdpName, dict[bytes, dict]] = {}
        self.wheel = ExpiryWheel(1.0)
        self.crashed = False
        self._pending: dict[int, Any] = {}
        self._pinging: set[int] = set()
        self._op_messages = 0
        #: addr -> peer handle; overridden for non-sim transports
        self.resolve_peer: Callable[[str], Any] | None = None
        if network is not None:
            super().__init__(network, f"dht:{name.raw.hex()[:16]}")
            self.transport = network.transport_for(self).bind(self._on_pdu)
        else:
            self.network = None
            self.node_id = f"dht:{name.raw.hex()[:16]}"
            self.links = []
            self.transport = None

    # -- clock / wiring ----------------------------------------------------

    @property
    def now(self) -> float:
        return self.ctx.now if self.network is not None else 0.0

    def contact(self) -> dict:
        """This node's wire contact (name + transport address)."""
        return {"n": self.name.raw, "a": self.node_id}

    def receive(self, message: Any, sender: Node, link) -> None:
        """Link-layer delivery: hand PDUs to the transport; a crashed
        node swallows them (the link already counted the delivery, so
        the conservation oracle's ledger stays balanced)."""
        if self.crashed or not isinstance(message, Pdu):
            return
        self.transport.deliver(message, sender)

    def crash(self) -> None:
        """Fail-stop: stop answering and originating (store retained)."""
        self.crashed = True

    def restart(self) -> None:
        """Come back up with the pre-crash store (republish and lookup
        repair reconcile whatever changed while down)."""
        self.crashed = False

    # -- k-buckets ---------------------------------------------------------

    def _bucket_index(self, other: GdpName) -> int:
        distance = self.name.distance(other)
        if distance == 0:
            return 0
        return distance.bit_length() - 1

    def observe(self, other: GdpName, addr: str | None = None) -> None:
        """Insert/refresh a peer in its k-bucket.

        A full bucket never evicts blindly: the candidate waits in the
        replacement cache while the least-recently-seen resident is
        pinged; only a ping timeout makes room (Kademlia §2.2 — stable
        long-lived peers beat churned-in newcomers).
        """
        if other == self.name:
            return
        if addr is not None:
            self.addrs[other] = addr
        now = self.now
        index = self._bucket_index(other)
        bucket = self.buckets[index]
        self.last_seen[other] = now
        if other in bucket:
            bucket.remove(other)
            bucket.append(other)
            return
        if len(bucket) < self.k:
            bucket.append(other)
            return
        cache = self.replacements.setdefault(index, [])
        if other in cache:
            cache.remove(other)
        cache.append(other)
        if len(cache) > self.k:
            cache.pop(0)
        oldest = bucket[0]
        if (
            self.transport is not None
            and not self.crashed
            and index not in self._pinging
            and now - self.last_seen.get(oldest, float("-inf")) > PING_STALENESS
        ):
            self._pinging.add(index)
            self.ctx.spawn(
                self._probe_oldest(index), name=f"dht-ping:{self.node_id}"
            )

    def _probe_oldest(self, index: int):
        """Ping-before-evict: the bucket head answers -> it stays (moved
        to the tail); it times out -> ``_demote`` already evicted it and
        promoted a replacement-cache candidate."""
        try:
            bucket = self.buckets[index]
            if not bucket:
                return
            oldest = bucket[0]
            reply = yield from self._rpc(oldest, T_DHT_PING, {}, ping=True)
            if reply is not None and bucket and bucket[0] == oldest:
                bucket.remove(oldest)
                bucket.append(oldest)
        finally:
            self._pinging.discard(index)

    def _demote(self, peer: GdpName) -> None:
        """Drop an unresponsive peer; promote the freshest replacement."""
        self.stats.demotions += 1
        index = self._bucket_index(peer)
        bucket = self.buckets[index]
        if peer not in bucket:
            return
        bucket.remove(peer)
        cache = self.replacements.get(index)
        while cache:
            candidate = cache.pop()
            if candidate != peer and candidate not in bucket:
                bucket.append(candidate)
                break

    def closest(self, key: GdpName, count: int) -> list[GdpName]:
        """The *count* known peers closest to *key* (including self)."""
        candidates = {self.name}
        for bucket in self.buckets:
            candidates.update(bucket)
        return heapq.nsmallest(
            count, candidates, key=lambda n: n.distance(key)
        )

    def _contacts_wire(self, key: GdpName, count: int) -> list[dict]:
        contacts = []
        for peer in self.closest(key, count):
            if peer == self.name:
                contacts.append(self.contact())
            else:
                addr = self.addrs.get(peer)
                if addr is not None:
                    contacts.append({"n": peer.raw, "a": addr})
        return contacts

    # -- the record store --------------------------------------------------

    def merge_record(self, key: GdpName, record: dict) -> bool:
        """Newest-wins merge of one record; returns whether it landed.

        Same-version re-merges (republish) extend the TTL in place, so a
        record's lifetime is ``last republish + RECORD_TTL``, not its
        first arrival.
        """
        if not _valid_record(record):
            return False
        now = self.now
        expiry = record_expiry(record)
        if expiry <= now:
            return False
        principal = bytes(record["p"])
        slot = self.store.get(key)
        if slot is None:
            slot = self.store[key] = {}
        old = slot.get(principal)
        if old is not None:
            if record["v"] < old["v"]:
                return False
            if record["v"] == old["v"] and expiry <= record_expiry(old):
                return True  # identical or staler copy: already merged
        slot[principal] = dict(record)
        self.wheel.schedule(key.raw, expiry)
        return True

    def records_for(self, key: GdpName) -> list[dict]:
        """Live records under *key* (tombstones included — they must
        propagate so deletes win over stale copies elsewhere)."""
        self.cull_expired()
        slot = self.store.get(key)
        if not slot:
            return []
        return [dict(record) for record in slot.values()]

    def live_values(self, key: GdpName) -> list[Any]:
        """Locally stored live, non-tombstone payloads for *key*."""
        return [
            record["d"]
            for record in self.records_for(key)
            if not record.get("t")
        ]

    def cull_expired(self, now: float | None = None) -> int:
        """Reclaim records whose TTL elapsed (wheel-driven, O(expired));
        keys left empty are deleted, never parked as ``[]`` husks."""
        if now is None:
            now = self.now
        reclaimed = 0
        for token in self.wheel.expired(now):
            key = GdpName(token)
            slot = self.store.get(key)
            if not slot:
                continue
            live = {
                principal: record
                for principal, record in slot.items()
                if record_expiry(record) > now
            }
            reclaimed += len(slot) - len(live)
            if live:
                self.store[key] = live
            else:
                del self.store[key]
        return reclaimed

    # -- legacy local helpers (tests / seeding) ----------------------------

    def put_local(
        self, key: GdpName, value: Any, *, expires_at: float | None = None
    ) -> None:
        """Store a value locally (no replication)."""
        expiry = expires_at if expires_at is not None else self.now + RECORD_TTL
        self.merge_record(
            key, make_record(value_principal(value), 0, value, expiry)
        )

    def get_local(self, key: GdpName) -> list[Any]:
        """Values stored locally under *key*."""
        return self.live_values(key)

    # -- the RPC plane -----------------------------------------------------

    def _peer_for(self, peer_name: GdpName):
        addr = self.addrs.get(peer_name)
        if addr is None:
            return None
        if self.resolve_peer is not None:
            return self.resolve_peer(addr)
        if self.network is not None:
            return self.network.nodes.get(addr)
        return None

    def _rpc(self, peer_name: GdpName, ptype: str, payload: dict, *,
             ping: bool = False):
        """One request/reply exchange with timeout + retry; an exhausted
        peer is demoted.  Returns the reply payload or None — never
        raises, so lookup rounds degrade instead of aborting."""
        for _attempt in range(1 + RPC_RETRIES):
            if self.crashed or self.transport is None:
                return None
            peer = self._peer_for(peer_name)
            if peer is None:
                break
            request = dict(payload)
            request["s"] = self.contact()
            pdu = Pdu(self.name, peer_name, ptype, request)
            future = self.ctx.future()
            self._pending[pdu.corr_id] = future
            if ping:
                self.stats.pings += 1
            else:
                self.stats.messages += 1
                self._op_messages += 1
            try:
                self.transport.send(peer, pdu)
            except (TransportError, WireFormatError):
                self._pending.pop(pdu.corr_id, None)
                break
            try:
                reply = yield self.ctx.timeout(
                    future, RPC_TIMEOUT, f"{ptype}->{peer_name.human()}"
                )
            except TimeoutError_:
                self._pending.pop(pdu.corr_id, None)
                self.stats.timeouts += 1
                continue
            return reply if isinstance(reply, dict) else None
        self._demote(peer_name)
        return None

    def _on_pdu(self, pdu: Pdu, peer: Any) -> None:
        """Transport delivery: resolve pending replies, serve requests.

        Handlers are idempotent and validation is defensive — replayed
        duplicates and tampered payloads from the chaos middlewares must
        degrade to drops, never crashes.  Stale/duplicate replies miss
        the pending table and are discarded.
        """
        if self.crashed:
            return
        if pdu.ptype in _REPLY_TYPES:
            future = self._pending.pop(pdu.corr_id, None)
            if future is not None and not future.done:
                future.resolve(pdu.payload)
            return
        try:
            self._serve(pdu, peer)
        except Exception:
            return  # malformed request from an untrusted peer: drop

    def _serve(self, pdu: Pdu, peer: Any) -> None:
        payload = pdu.payload
        if not isinstance(payload, dict):
            return
        sender = payload.get("s")
        if (
            isinstance(sender, dict)
            and isinstance(sender.get("n"), (bytes, bytearray))
            and len(sender["n"]) == 32
            and isinstance(sender.get("a"), str)
        ):
            self.observe(GdpName(bytes(sender["n"])), addr=sender["a"])
        if pdu.ptype == T_DHT_PING:
            self._reply(pdu, peer, T_DHT_PONG, {})
            return
        if pdu.ptype == T_DHT_STORE:
            key_raw = payload.get("k")
            if not isinstance(key_raw, (bytes, bytearray)) or len(key_raw) != 32:
                return
            key = GdpName(bytes(key_raw))
            stored = 0
            records = payload.get("r")
            if isinstance(records, list):
                for record in records:
                    if self.merge_record(key, record):
                        stored += 1
            self._reply(pdu, peer, T_DHT_STORE_ACK, {"ok": 1, "n": stored})
            return
        if pdu.ptype in (T_DHT_FIND_NODE, T_DHT_FIND_VALUE):
            key_raw = payload.get("k")
            if not isinstance(key_raw, (bytes, bytearray)) or len(key_raw) != 32:
                return
            key = GdpName(bytes(key_raw))
            reply: dict = {"c": self._contacts_wire(key, self.k)}
            if pdu.ptype == T_DHT_FIND_VALUE:
                reply["r"] = self.records_for(key)
                self._reply(pdu, peer, T_DHT_VALUES, reply)
            else:
                self._reply(pdu, peer, T_DHT_NODES, reply)

    def _reply(self, pdu: Pdu, peer: Any, ptype: str, payload: dict) -> None:
        try:
            self.transport.send(peer, pdu.response(ptype, payload))
        except (TransportError, WireFormatError):
            pass  # requester's timeout covers a reply we cannot ship

    # -- iterative lookup --------------------------------------------------

    def iter_find(self, key: GdpName, *, want_value: bool = False):
        """Iterative Kademlia lookup from this node (a sim process).

        Each round queries the alpha closest unqueried candidates among
        the current k closest; unresponsive peers drop out of the
        candidate window, pulling the next-closest in — which is exactly
        what makes lookups land on live replicas under churn.  The loop
        ends once every candidate in the window has been queried.
        """
        result = LookupResult(key)
        shortlist: set[GdpName] = set(self.closest(key, self.k))
        shortlist.discard(self.name)
        while True:
            candidates = heapq.nsmallest(
                self.k,
                (n for n in shortlist if n not in result.failed),
                key=lambda n: n.distance(key),
            )
            to_query = [
                n for n in candidates
                if n not in result.responded and n not in result.failed
            ][: self.alpha]
            if not to_query:
                break
            result.hops += 1
            ptype = T_DHT_FIND_VALUE if want_value else T_DHT_FIND_NODE
            procs = [
                self.ctx.spawn(
                    self._rpc(peer, ptype, {"k": key.raw}),
                    name=f"dht-rpc:{self.node_id}",
                )
                for peer in to_query
            ]
            for peer, proc in zip(to_query, procs):
                reply = yield proc.completion
                if reply is None:
                    result.failed.add(peer)
                    continue
                result.responded.add(peer)
                self.observe(peer)
                contacts = reply.get("c")
                if isinstance(contacts, list):
                    for contact in contacts:
                        if not (
                            isinstance(contact, dict)
                            and isinstance(contact.get("n"), (bytes, bytearray))
                            and len(contact["n"]) == 32
                            and isinstance(contact.get("a"), str)
                        ):
                            continue
                        learned = GdpName(bytes(contact["n"]))
                        if learned == self.name:
                            continue
                        self.observe(learned, addr=contact["a"])
                        shortlist.add(learned)
                if want_value:
                    records = reply.get("r")
                    got_record = False
                    for record in records if isinstance(records, list) else []:
                        if not _valid_record(record):
                            continue
                        got_record = True
                        principal = bytes(record["p"])
                        best = result.records.get(principal)
                        if (
                            best is None
                            or record["v"] > best["v"]
                            or (
                                record["v"] == best["v"]
                                and record_expiry(record) > record_expiry(best)
                            )
                        ):
                            result.records[principal] = dict(record)
                    if got_record:
                        result.holders.add(peer)
        result.closest = heapq.nsmallest(
            self.k, result.responded, key=lambda n: n.distance(key)
        )
        return result


class KademliaDht:
    """The DHT fabric: membership wiring plus entry-point facades.

    ``nodes`` exists for wiring, benchmarks, and oracles — the put/get
    protocol paths never read it for routing or liveness (the grep-guard
    test in ``tests/unit/test_dht_message_level.py`` enforces that);
    the one sanctioned protocol use is :meth:`_entry_node`, resolving
    the *caller's own* access point.

    By default the DHT runs on a private :class:`SimNetwork` (unit
    tests, benches); pass ``network=`` to overlay it on a shared chaos
    network, where the fault middlewares apply to DHT RPCs like any
    other traffic.
    """

    #: how many top-end buckets a joining node refreshes (enough for
    #: networks up to ~2**16 nodes; Kademlia's join-time bucket refresh)
    JOIN_REFRESH_BUCKETS = 16

    def __init__(self, k: int = 8, alpha: int = 3, *, network=None):
        if network is None:
            from repro.sim.net import SimNetwork

            network = SimNetwork(seed=0xD47)
        self.net = network
        self.k = k
        self.alpha = alpha
        self.stats = DhtStats()
        self.nodes: dict[GdpName, DhtNode] = {}
        #: per-query accounting for the most recent put/get: iterative
        #: lookup rounds (the O(log n)-bounded quantity) and RPCs sent
        self.last_hops = 0
        self.last_messages = 0

    # -- message counters (legacy surface) ---------------------------------

    @property
    def messages(self) -> int:
        """Lookup-plane RPCs sent across the whole DHT."""
        return self.stats.messages

    @messages.setter
    def messages(self, value: int) -> None:
        self.stats.messages = value

    @property
    def under_replicated(self) -> int:
        """Puts that landed on fewer replicas than requested."""
        return self.stats.under_replicated

    # -- membership --------------------------------------------------------

    def join(self, name: GdpName) -> DhtNode:
        """Add a node and integrate it: full-mesh underlay links, a
        bootstrap contact, a self-lookup, and refreshes of the distant
        buckets — all through RPCs (peers learn of the newcomer from the
        sender contact its lookups carry)."""
        node = DhtNode(
            name, self.k, alpha=self.alpha, network=self.net, stats=self.stats
        )
        bootstrap = min(self.nodes) if self.nodes else None
        for other in self.nodes.values():
            self.net.connect(
                node, other, latency=LINK_LATENCY, bandwidth=LINK_BANDWIDTH
            )
        self.nodes[name] = node
        if bootstrap is not None:
            node.observe(bootstrap, addr=self.nodes[bootstrap].node_id)
            self._drive_or_spawn(self._join_proc(node), f"dht-join:{node.node_id}")
        return node

    def _join_proc(self, node: DhtNode):
        yield from node.iter_find(node.name)
        node_int = node.name.as_int()
        for bit in range(KEY_BITS - self.JOIN_REFRESH_BUCKETS, KEY_BITS):
            probe = GdpName((node_int ^ (1 << bit)).to_bytes(32, "big"))
            yield from node.iter_find(probe)

    def leave(self, name: GdpName) -> None:
        """Graceful departure: hand every stored record to the closest
        known peers, then go dark (the node object stays wired so
        in-flight RPCs toward it time out realistically)."""
        node = self.nodes.get(name)
        if node is None or node.crashed:
            return
        self._drive_or_spawn(self._leave_proc(node), f"dht-leave:{node.node_id}")

    def _leave_proc(self, node: DhtNode):
        for key in list(node.store):
            records = node.records_for(key)
            if not records:
                continue
            targets = [n for n in node.closest(key, self.k) if n != node.name]
            procs = [
                self.net.ctx.spawn(
                    node._rpc(
                        peer,
                        T_DHT_STORE,
                        {"k": key.raw, "r": [dict(r) for r in records]},
                    ),
                    name=f"dht-handoff:{node.node_id}",
                )
                for peer in targets
            ]
            for proc in procs:
                yield proc.completion
        node.crash()
        self.nodes.pop(node.name, None)

    def _entry_node(self, via: GdpName) -> DhtNode:
        """The caller-designated entry point — the one place the
        protocol path maps a name to a local node handle (addressing
        your own access point, not reading remote state)."""
        return self.nodes[via]

    # -- put / get ---------------------------------------------------------

    def put_proc(
        self,
        via: GdpName,
        key: GdpName,
        value: Any,
        *,
        principal: bytes | None = None,
        version: int = 0,
        expires_at: float | None = None,
        tombstone: bool = False,
    ):
        """STORE *value* under *key* from entry node *via* (a process);
        returns the **acked** replica count — an unreachable replica is
        not durability, so it is not counted."""
        origin = self._entry_node(via)
        if principal is None:
            principal = value_principal(value)
        record = make_record(
            principal,
            version,
            value,
            expires_at if expires_at is not None else origin.now + RECORD_TTL,
            tombstone=tombstone,
        )
        acked = yield from self.put_records_proc(via, key, [record])
        return acked

    def put_records_proc(self, via: GdpName, key: GdpName, records: list[dict]):
        """Replicate prepared *records* to the k closest live nodes;
        returns the acked replica count (the republish entry point)."""
        origin = self._entry_node(via)
        origin._op_messages = 0
        result = yield from origin.iter_find(key)
        targets = result.closest
        acked = 0
        # Kademlia stores on the k closest nodes *including the caller*:
        # when the origin is itself inside the k-closest set (peers'
        # top-k replies list it, shrinking the remote target list), its
        # own replica is one of the k and must be written and counted.
        key_int = key.as_int()
        origin_dist = origin.name.as_int() ^ key_int
        if len(targets) < self.k or any(
            origin_dist < (peer.as_int() ^ key_int) for peer in targets
        ):
            stored = all(
                origin.merge_record(key, record) for record in records
            )
            if stored or origin.store.get(key):
                acked += 1
        if targets:
            procs = [
                origin.ctx.spawn(
                    origin._rpc(
                        peer,
                        T_DHT_STORE,
                        {"k": key.raw, "r": [dict(r) for r in records]},
                    ),
                    name=f"dht-store:{origin.node_id}",
                )
                for peer in targets
            ]
            for proc in procs:
                reply = yield proc.completion
                if isinstance(reply, dict) and reply.get("ok"):
                    acked += 1
        if acked == 0:
            # Nobody reachable: keep the origin's own replica and say so
            # honestly — one acked copy, not a fabricated k.
            for record in records:
                origin.merge_record(key, record)
            acked = 1 if origin.store.get(key) else 0
        # The replication target is k (or the whole ring when it is
        # smaller) — judged against membership, not against however few
        # peers happened to respond, so a put that lands short because
        # holders are dark is *counted*, never silently absorbed.
        if acked < min(self.k, max(len(self.nodes), 1)):
            self.stats.under_replicated += 1
        self.last_hops = result.hops
        self.last_messages = origin._op_messages
        return acked

    def get_proc(self, via: GdpName, key: GdpName):
        """FIND_VALUE for *key* from entry node *via* (a process);
        returns a :class:`LookupResult` with merged live values.

        A lookup that observes under-replication re-stores the merged
        records on the closest responsive non-holders (Kademlia caching
        doubling as churn repair).
        """
        origin = self._entry_node(via)
        origin._op_messages = 0
        result = yield from origin.iter_find(key, want_value=True)
        # The origin's own replica participates like any other holder.
        for record in origin.records_for(key):
            principal = bytes(record["p"])
            best = result.records.get(principal)
            if (
                best is None
                or record["v"] > best["v"]
                or (
                    record["v"] == best["v"]
                    and record_expiry(record) > record_expiry(best)
                )
            ):
                result.records[principal] = dict(record)
        now = origin.now
        live = [
            record
            for record in result.records.values()
            if record_expiry(record) > now
        ]
        result.values = [r["d"] for r in live if not r.get("t")]
        if live:
            want = min(self.k, len(result.closest))
            holders = sum(1 for n in result.closest if n in result.holders)
            if holders < want:
                repairs = [
                    n for n in result.closest if n not in result.holders
                ][: want - holders]
                procs = [
                    origin.ctx.spawn(
                        origin._rpc(
                            peer,
                            T_DHT_STORE,
                            {"k": key.raw, "r": [dict(r) for r in live]},
                        ),
                        name=f"dht-repair:{origin.node_id}",
                    )
                    for peer in repairs
                ]
                for proc in procs:
                    yield proc.completion
        self.last_hops = result.hops
        self.last_messages = origin._op_messages
        return result

    # -- synchronous facades ----------------------------------------------

    def _drive_or_spawn(self, generator, name: str):
        """Run a DHT process to completion when the simulation is
        quiescent (tests, benches, build time); raise if called mid-run
        — in-simulation callers must use the ``*_proc`` generators."""
        sim = self.net.sim
        if getattr(sim, "running", False):
            raise RuntimeError(
                "DHT sync facade called while the simulation is running; "
                "use the *_proc generator API from sim processes"
            )
        return sim.run_process(generator, name)

    def put(self, via: GdpName, key: GdpName, value: Any, **kwargs) -> int:
        """Synchronous STORE (drives the private/quiescent simulation);
        returns the acked replica count."""
        return self._drive_or_spawn(
            self.put_proc(via, key, value, **kwargs), "dht-put"
        )

    def get(self, via: GdpName, key: GdpName) -> list[Any]:
        """Synchronous FIND_VALUE; returns merged live values."""
        result = self._drive_or_spawn(self.get_proc(via, key), "dht-get")
        return result.values

    def __len__(self) -> int:
        return len(self.nodes)


def build_dht(names: Iterable[GdpName], k: int = 8) -> KademliaDht:
    """Convenience constructor joining every name in order."""
    dht = KademliaDht(k=k)
    for name in names:
        dht.join(name)
    return dht
