"""A Kademlia-style DHT as a scalable global GLookupService backend.

§VII: "the GLookupService is essentially a key-value store and is not
required to be trusted; existing technologies such as distributed hash
tables (DHTs) can be used to implement a highly distributed and scalable
GLookupService."

This is a faithful, self-contained Kademlia over the 256-bit flat name
space: k-buckets, XOR metric, iterative lookups with per-query message
accounting (so tests/benches can check the O(log n) hop bound).  Because
GLookup entries are *independently verifiable* (they carry delegation
chains), the DHT nodes never need to be trusted — a node returning a
forged entry fails the verifier exactly like a compromised
GLookupService does.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable

from repro.naming.names import GdpName

__all__ = ["DhtNode", "KademliaDht"]

KEY_BITS = 256


class DhtNode:
    """One DHT participant: a routing table (k-buckets) + local store."""

    def __init__(self, name: GdpName, k: int = 8):
        self.name = name
        self.k = k
        self.buckets: list[list[GdpName]] = [[] for _ in range(KEY_BITS)]
        self.store: dict[GdpName, list[Any]] = {}

    def _bucket_index(self, other: GdpName) -> int:
        distance = self.name.distance(other)
        if distance == 0:
            return 0
        return distance.bit_length() - 1

    def observe(self, other: GdpName) -> None:
        """Insert/refresh a peer in its k-bucket (LRU eviction)."""
        if other == self.name:
            return
        bucket = self.buckets[self._bucket_index(other)]
        if other in bucket:
            bucket.remove(other)
        bucket.append(other)
        if len(bucket) > self.k:
            bucket.pop(0)

    def closest(self, key: GdpName, count: int) -> list[GdpName]:
        """The *count* known peers closest to *key* (including self)."""
        candidates = {self.name}
        for bucket in self.buckets:
            candidates.update(bucket)
        return heapq.nsmallest(
            count, candidates, key=lambda n: n.distance(key)
        )

    def put_local(self, key: GdpName, value: Any) -> None:
        """Store a value in this node's local bucket."""
        bucket = self.store.setdefault(key, [])
        if value not in bucket:
            bucket.append(value)

    def get_local(self, key: GdpName) -> list[Any]:
        """Values stored locally under *key*."""
        return list(self.store.get(key, []))


class KademliaDht:
    """The whole DHT (an in-process collective of :class:`DhtNode`).

    ``alpha`` is the lookup parallelism; ``messages`` counts simulated
    RPCs (FIND_NODE / STORE / FIND_VALUE) for complexity assertions.
    """

    def __init__(self, k: int = 8, alpha: int = 3):
        self.k = k
        self.alpha = alpha
        self.nodes: dict[GdpName, DhtNode] = {}
        self.messages = 0
        #: per-query accounting for the most recent put/get: iterative
        #: lookup rounds (the O(log n)-bounded quantity) and RPCs sent
        self.last_hops = 0
        self.last_messages = 0

    #: how many top-end buckets a joining node refreshes (enough for
    #: networks up to ~2**16 nodes; Kademlia's join-time bucket refresh)
    JOIN_REFRESH_BUCKETS = 16

    def join(self, name: GdpName) -> DhtNode:
        """Add a node and integrate it: bootstrap contact, self-lookup,
        and refresh of the distant buckets (without the refreshes, a
        node's far half of the id space stays dark and lookups from
        different entry points can converge on disjoint node sets)."""
        node = DhtNode(name, self.k)
        if self.nodes:
            # Bootstrap: learn from an arbitrary (deterministic) contact.
            seed = min(self.nodes)
            node.observe(seed)
            for peer in self._iterative_find(node, name):
                node.observe(peer)
        self.nodes[name] = node
        # Bucket refresh: probe an id in each of the top buckets so the
        # whole id space is reachable from this node.
        if len(self.nodes) > 1:
            node_int = name.as_int()
            for bit in range(
                KEY_BITS - self.JOIN_REFRESH_BUCKETS, KEY_BITS
            ):
                probe = GdpName((node_int ^ (1 << bit)).to_bytes(32, "big"))
                for peer in self._iterative_find(node, probe):
                    node.observe(peer)
        # Existing nodes learn of the newcomer lazily through lookups;
        # seed a few for liveness.
        for peer_name in node.closest(name, self.k):
            if peer_name in self.nodes:
                self.nodes[peer_name].observe(name)
        return node

    def _iterative_find(self, origin: DhtNode, key: GdpName) -> list[GdpName]:
        """Iterative FIND_NODE from *origin*; returns the k closest live
        node names to *key*."""
        shortlist = set(origin.closest(key, self.k))
        shortlist.discard(origin.name)
        self.last_hops = 0
        if not shortlist:
            return []
        queried: set[GdpName] = set()
        hops = 0
        while True:
            to_query = heapq.nsmallest(
                self.alpha,
                (n for n in shortlist if n not in queried and n in self.nodes),
                key=lambda n: n.distance(key),
            )
            if not to_query:
                break
            hops += 1
            progressed = False
            for peer_name in to_query:
                queried.add(peer_name)
                self.messages += 1
                peer = self.nodes[peer_name]
                peer.observe(origin.name)
                for learned in peer.closest(key, self.k):
                    # Both sides learn: the origin refreshes its own
                    # buckets from lookup traffic (without this, node
                    # views drift apart and puts/gets from different
                    # entry points can converge on disjoint node sets).
                    origin.observe(learned)
                    if learned not in shortlist and learned != origin.name:
                        shortlist.add(learned)
                        progressed = True
            if not progressed:
                break
        self.last_hops = hops
        return heapq.nsmallest(
            self.k,
            (n for n in shortlist if n in self.nodes),
            key=lambda n: n.distance(key),
        )

    def put(self, via: GdpName, key: GdpName, value: Any) -> int:
        """STORE *value* under *key*, entering the DHT at node *via*;
        returns how many replicas stored it."""
        origin = self.nodes[via]
        before = self.messages
        targets = self._iterative_find(origin, key) or [via]
        stored = 0
        for target in targets:
            self.messages += 1
            self.nodes[target].put_local(key, value)
            stored += 1
        self.last_messages = self.messages - before
        return stored

    def get(self, via: GdpName, key: GdpName) -> list[Any]:
        """FIND_VALUE for *key* starting at *via*.

        Values are merged across the k closest replicas (a key can hold
        several values — e.g. several RouteEntries for one capsule —
        and an individual replica may have seen only a subset).
        """
        origin = self.nodes[via]
        before = self.messages
        merged: list[Any] = []

        def absorb(values: list[Any]) -> None:
            for value in values:
                if value not in merged:
                    merged.append(value)

        absorb(origin.get_local(key))
        for target in self._iterative_find(origin, key):
            self.messages += 1
            absorb(self.nodes[target].get_local(key))
        self.last_messages = self.messages - before
        return merged

    def __len__(self) -> int:
        return len(self.nodes)


def build_dht(names: Iterable[GdpName], k: int = 8) -> KademliaDht:
    """Convenience constructor joining every name in order."""
    dht = KademliaDht(k=k)
    for name in names:
        dht.join(name)
    return dht
