"""GDP-routers: flat-namespace forwarding with verified state (§VII, §VIII).

A router belongs to one routing domain.  It keeps a local FIB (name ->
next-hop node) populated from two sources: *secure advertisements* by
directly attached endpoints (after a challenge-response proof of key
possession), and on-demand lookups in the domain's GLookupService
hierarchy, whose entries the router **re-verifies** before installing —
the GLookupService "is not required to be trusted".

Forwarding algorithm per PDU (destination name *N*):

1. FIB hit -> forward to the cached next hop.
2. Local-domain GLookup hit with ``router=R`` -> verify, install,
   forward along the intra-domain path to *R* (anycast picks the
   closest of several replicas).
3. Local hit with ``via_child=C`` -> forward toward child domain *C*.
4. Ancestor hit -> forward toward the parent domain (the PDU climbs
   until step 2/3 applies).
5. Nothing anywhere -> emit a ``no_route`` error back to the source.

Processing cost is modelled as a single-server queue with a configurable
per-PDU service time, which is what gives the Figure 6 forwarding-rate
curve its small-PDU plateau; link bandwidth supplies the large-PDU
throughput ceiling.
"""

from __future__ import annotations

import secrets
from typing import Any

from repro.errors import AdvertisementError, RoutingError
from repro.naming.metadata import Metadata, make_router_metadata
from repro.naming.names import GdpName
from repro.crypto.keys import SigningKey
from repro.routing import pdu as pdutypes
from repro.routing.domain import RoutingDomain
from repro.routing.fib import CompactFib
from repro.routing.glookup import RouteEntry, expiry_from_wire
from repro.routing.pdu import Pdu
from repro.runtime.dispatch import find_handler, on_ptype
from repro.sim.net import Link, Node, SimNetwork

__all__ = ["GdpRouter", "ADVERT_DOMAIN_TAG"]

ADVERT_DOMAIN_TAG = b"gdp.advertise"

#: default per-PDU service time ~ the paper's 120k PDU/s plateau (Fig. 6)
DEFAULT_SERVICE_TIME = 1.0 / 120_000.0

#: resolution verdict for an asynchronous GLookup tier (the DHT): the
#: answer is in flight, park the PDU instead of bouncing it
_PENDING = object()

#: ceiling on PDUs parked per destination while its resolution runs
MAX_PARKED_PER_DST = 64


class GdpRouter(Node):
    """A flat-namespace router inside one routing domain."""

    def __init__(
        self,
        network: SimNetwork,
        node_id: str,
        domain: RoutingDomain,
        *,
        owner: SigningKey | None = None,
        service_time: float = DEFAULT_SERVICE_TIME,
        egress_bandwidth: float | None = None,
        fib_ttl: float = 3600.0,
        neg_ttl: float = 1.0,
        quarantine_ttl: float = 10.0,
    ):
        super().__init__(network, node_id)
        self.domain = domain
        self._key = SigningKey.from_seed(
            b"router:" + node_id.encode()
        ) if owner is None else owner
        self.metadata: Metadata = make_router_metadata(
            self._key, self._key.public, extra={"node_id": node_id}
        )
        self.name: GdpName = self.metadata.name
        self.service_time = service_time
        #: aggregate egress capacity in bytes/s (None = unlimited) —
        #: models the router host's NIC; gives Fig. 6 its 1 Gbps ceiling
        self.egress_bandwidth = egress_bandwidth
        self.fib_ttl = fib_ttl
        #: how long a full resolution miss is cached (negative cache)
        self.neg_ttl = neg_ttl
        #: how long a replica reported dead by a client is steered around
        self.quarantine_ttl = quarantine_ttl
        self._busy_until = 0.0
        self._egress_busy_until = 0.0
        #: directly attached endpoints (advertisement bindings); these
        #: are ground truth, not cache, and survive FIB flushes
        self.attached: dict[GdpName, Node] = {}
        #: name -> (next-hop node, expiry sim-time) — the route *cache*,
        #: packed (44 bytes/route) with lease-wheel reclamation
        self.fib = CompactFib(clock=lambda: self.sim.now)
        #: name -> expiry sim-time of a cached resolution *miss*
        self._neg_cache: dict[GdpName, float] = {}
        #: name -> PDUs parked while an asynchronous (DHT) resolution
        #: is in flight; one fetch per name, late arrivals pile on
        self._parked: dict[GdpName, list[tuple[Pdu, Node]]] = {}
        #: principal -> expiry sim-time of a client-reported dead replica
        self._quarantine: dict[GdpName, float] = {}
        self._pending_challenges: dict[GdpName, tuple[bytes, Node]] = {}
        self.pipeline = network.node_pipeline()
        self.transport = network.transport_for(self).bind(self.handle_message)
        #: learn reverse routes from traversing PDUs (source -> ingress
        #: peer).  Off in sim mode — the GLookup hierarchy resolves
        #: everything there and learning would perturb pinned traces; the
        #: socket fleet turns it on so responses can cross processes that
        #: share no GLookupService.
        self.learn_source_routes = False
        metrics = network.metrics.node(node_id)
        self._c_forwarded = metrics.counter("router.forwarded")
        self._c_bytes = metrics.counter("router.bytes")
        self._c_no_route = metrics.counter("router.no_route")
        self._c_verified_installs = metrics.counter("router.verified_installs")
        self._c_ttl_expired = metrics.counter("router.ttl_expired")
        self._c_failovers = metrics.counter("router.failovers")
        self._c_negative_hits = metrics.counter("glookup.negative_hits")
        self._c_parked = metrics.counter("router.parked")
        domain.add_router(self)

    # -- backwards-compatible counter views --------------------------------

    @property
    def stats_forwarded(self) -> int:
        """Data PDUs forwarded (registry: ``router.forwarded``)."""
        return self._c_forwarded.value

    @property
    def stats_bytes(self) -> int:
        """Data bytes forwarded (registry: ``router.bytes``)."""
        return self._c_bytes.value

    @property
    def stats_no_route(self) -> int:
        """PDUs with no resolvable route (registry: ``router.no_route``)."""
        return self._c_no_route.value

    @property
    def stats_verified_installs(self) -> int:
        """Verified GLookup installs (registry: ``router.verified_installs``)."""
        return self._c_verified_installs.value

    @property
    def stats_ttl_expired(self) -> int:
        """PDUs dropped for exhausted hop budget (registry:
        ``router.ttl_expired``) — loop/black-hole symptom, counted
        separately from resolution misses."""
        return self._c_ttl_expired.value

    @property
    def stats_failovers(self) -> int:
        """Client-reported route invalidations processed (registry:
        ``router.failovers``)."""
        return self._c_failovers.value

    @property
    def stats_negative_hits(self) -> int:
        """Resolutions short-circuited by the negative cache (registry:
        ``glookup.negative_hits``)."""
        return self._c_negative_hits.value

    # -- link layer -------------------------------------------------------

    def receive(self, message: Any, sender: Node, link: Link) -> None:
        """Link-layer entry (sim mode): hand off to the transport."""
        self.transport.deliver(message, sender)

    def handle_message(self, message: Any, peer: Any) -> None:
        """Transport-neutral inbound dispatch."""
        if not isinstance(message, Pdu):
            raise RoutingError(f"router received non-PDU {message!r}")
        if self.pipeline:
            message = self.pipeline.run_inbound(self, message, peer)
            if message is None:
                return
        # Single-server processing queue: each PDU occupies the
        # forwarding engine for service_time seconds.
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + self.service_time
        delay = self._busy_until - self.sim.now
        self.sim.schedule(delay, self._process, message, peer)

    def _send_pdu(self, next_hop: Node, pdu: Pdu) -> None:
        if self.pipeline:
            out = self.pipeline.run_outbound(self, pdu)
            if out is None:
                return
            pdu = out
        if self.egress_bandwidth is None:
            self.transport.send(next_hop, pdu)
            return
        # Shared-NIC egress queue: transmissions serialize across all
        # output links at the aggregate line rate.
        start = max(self.sim.now, self._egress_busy_until)
        self._egress_busy_until = start + pdu.size_bytes / self.egress_bandwidth
        delay = start - self.sim.now
        if delay <= 0:
            self.transport.send(next_hop, pdu)
        else:
            self.sim.schedule(delay, self.transport.send, next_hop, pdu)

    # -- control plane: secure advertisement ------------------------------

    def _process(self, pdu: Pdu, from_node: Node) -> None:
        if pdu.dst == self.name:
            self._handle_control(pdu, from_node)
            return
        self._forward(pdu, from_node)

    def _handle_control(self, pdu: Pdu, from_node: Node) -> None:
        """Control-plane dispatch through the ``"ptype"`` registry;
        unknown control PDUs are dropped silently (robustness
        principle)."""
        handler = find_handler(self, pdu.ptype, space="ptype")
        if handler is not None:
            handler(pdu, from_node)

    @on_ptype(pdutypes.T_ADV_WITHDRAW)
    def _on_adv_withdraw(self, pdu: Pdu, from_node: Node) -> None:
        """Withdraw previously advertised names.  Authorization: the
        request must arrive over the attachment link of the endpoint
        whose self-name is the PDU source (the link was authenticated by
        the original challenge-response), and only names advertised by
        that principal are removable."""
        owner_node = self.attached.get(pdu.src)
        if owner_node is not from_node:
            return  # not the authenticated attachment: ignore
        for raw in pdu.payload.get("names", []):
            try:
                name = GdpName(raw)
            except Exception:
                continue
            self.domain.glookup.unregister(name, pdu.src)
            # A withdrawal must take effect across the whole domain
            # tree, not just this router — sibling routers holding a
            # cached route to the withdrawn name would otherwise keep
            # forwarding into a black hole until their FIB TTL lapsed.
            self.domain.purge_name(name)

    @on_ptype(pdutypes.T_ADV_HELLO)
    def _on_adv_hello(self, pdu: Pdu, from_node: Node) -> None:
        """Start challenge-response with an attaching endpoint (§VII:
        "the DataCapsule-server engages in a challenge-response process
        with the GDP-router to prove that it possesses the private
        key")."""
        try:
            metadata = Metadata.from_wire(pdu.payload["metadata"])
            metadata.verify()
        except Exception:
            return  # garbage hello: ignore
        if metadata.name != pdu.src:
            return
        nonce = secrets.token_bytes(32)
        self._pending_challenges[metadata.name] = (nonce, from_node)
        reply = pdu.response(pdutypes.T_ADV_CHALLENGE, {"nonce": nonce})
        self._send_pdu(from_node, reply)

    @on_ptype(pdutypes.T_ADV_RESPONSE)
    def _on_adv_response(self, pdu: Pdu, from_node: Node) -> None:
        pending = self._pending_challenges.get(pdu.src)
        if pending is None:
            return
        nonce, endpoint_node = pending
        if from_node is not endpoint_node:
            # The attachment binds to the link the HELLO arrived on; a
            # signed response from any other link is ignored *without*
            # consuming the pending challenge, so an attacker replaying
            # the response elsewhere cannot break the honest handshake.
            return
        del self._pending_challenges[pdu.src]
        try:
            accepted, leases = self._verify_advertisement(pdu, nonce)
        except AdvertisementError:
            # The nonce is spent, but a fresh HELLO re-issues a new
            # challenge, so the endpoint can always retry.
            reply = pdu.response(
                pdutypes.T_ADV_ACK, {"accepted": [], "error": "rejected"}
            )
            self._send_pdu(from_node, reply)
            return
        # The endpoint's own name is a direct-attachment binding (ground
        # truth while the endpoint is connected); catalog names (capsules)
        # go through the expiring FIB + GLookup so that failover to other
        # replicas can age them out.
        if accepted:
            self.attached[accepted[0]] = endpoint_node
        for name in accepted[1:]:
            self._install(name, endpoint_node, lease=leases.get(name))
        reply = pdu.response(
            pdutypes.T_ADV_ACK, {"accepted": [n.raw for n in accepted]}
        )
        self._send_pdu(from_node, reply)

    @on_ptype(pdutypes.T_ROUTE_INVALIDATE)
    def _on_route_invalidate(self, pdu: Pdu, from_node: Node) -> None:
        """A client reports that a cached route led nowhere (its request
        timed out or bounced).  Authorization: the report must arrive
        over the reporter's authenticated attachment link.  The named
        route is dropped (forcing re-resolution) and, when the reporter
        names the replica that went dark, that principal is quarantined
        so anycast steers the retry elsewhere."""
        if self.attached.get(pdu.src) is not from_node:
            return  # not the authenticated attachment: ignore
        payload = pdu.payload
        for raw in payload.get("unreachable", []) if isinstance(
            payload.get("unreachable"), list
        ) else [payload.get("unreachable")]:
            if raw is None:
                continue
            try:
                name = GdpName(raw)
            except Exception:
                continue
            self.fib.pop(name, None)
        principal_raw = payload.get("principal")
        if principal_raw is not None:
            try:
                principal = GdpName(principal_raw)
            except Exception:
                principal = None
            if principal is not None:
                self._quarantine[principal] = (
                    self.sim.now + self.quarantine_ttl
                )
        self._c_failovers.inc()

    def _verify_advertisement(
        self, pdu: Pdu, nonce: bytes
    ) -> tuple[list[GdpName], dict[GdpName, float | None]]:
        """Verify the challenge signature and each catalog entry; returns
        the accepted names (registered in the GLookupService) plus each
        name's lease expiry."""
        payload = pdu.payload
        try:
            metadata = Metadata.from_wire(payload["metadata"])
            metadata.verify()
            signature = payload["signature"]
        except Exception as exc:
            raise AdvertisementError(f"malformed advertisement: {exc}") from exc
        if metadata.name != pdu.src:
            raise AdvertisementError("advertisement name mismatch")
        challenge_preimage = ADVERT_DOMAIN_TAG + nonce + self.name.raw
        if not metadata.self_key.verify(challenge_preimage, signature):
            raise AdvertisementError("challenge-response signature invalid")
        accepted: list[GdpName] = []
        leases: dict[GdpName, float | None] = {}
        now = self.sim.now
        # The endpoint's own name.
        from repro.delegation.certs import RtCert

        rtcert = (
            RtCert.from_wire(payload["rtcert"])
            if payload.get("rtcert") is not None
            else None
        )
        self_lease = expiry_from_wire(payload.get("expires_at"))
        self_entry = RouteEntry(
            metadata.name,
            router=self.name,
            principal=metadata.name,
            principal_metadata=metadata,
            rtcert=rtcert,
            chain=None,
            router_metadata=self.metadata,
            expires_at=self_lease,
        )
        self_entry.verify(now=now)
        self.domain.glookup.register(self_entry)
        accepted.append(metadata.name)
        leases[metadata.name] = self_lease
        # Capsule catalog entries.
        from repro.delegation.chain import ServiceChain

        for raw_entry in payload.get("catalog", []):
            try:
                chain = ServiceChain.from_wire(raw_entry["chain"])
                lease = expiry_from_wire(raw_entry.get("expires_at"))
                entry = RouteEntry(
                    chain.capsule,
                    router=self.name,
                    principal=metadata.name,
                    principal_metadata=metadata,
                    rtcert=rtcert,
                    chain=chain,
                    router_metadata=self.metadata,
                    expires_at=lease,
                )
                entry.verify(now=now)
                if chain.server != metadata.name:
                    raise AdvertisementError(
                        "catalog chain is for a different server"
                    )
                self.domain.glookup.register(entry)
                accepted.append(chain.capsule)
                leases[chain.capsule] = lease
            except Exception:
                # One bad catalog entry must not sink the rest; the
                # endpoint learns from the accepted list what stuck.
                continue
        # A fresh advertisement is a liveness proof: lift any replica
        # quarantine on the principal and forget cached misses for the
        # names it just proved reachable.
        self._quarantine.pop(metadata.name, None)
        for name in accepted:
            self._neg_cache.pop(name, None)
        return accepted, leases

    # -- data plane: forwarding -------------------------------------------

    def _forward(self, pdu: Pdu, from_node: Node) -> None:
        if self.learn_source_routes and from_node is not self:
            # Transparent reverse-path learning (socket fleet): remember
            # which peer PDUs from this source arrive through, so the
            # response can retrace the path without a shared GLookup.
            if pdu.src not in self.attached:
                self._install(pdu.src, from_node)
        if pdu.ttl <= 0:
            # Exhausted hop budget is a loop/black-hole symptom, not a
            # missing route — keep the diagnostics separable.
            self._c_ttl_expired.inc()
            return
        next_hop = self._resolve_next_hop(pdu.dst)
        if next_hop is _PENDING:
            self._park_for_resolution(pdu, from_node)
            return
        if next_hop is None:
            self._c_no_route.inc()
            self._bounce_no_route(pdu, from_node)
            return
        self._c_forwarded.inc()
        self._c_bytes.inc(pdu.size_bytes)
        self._send_pdu(next_hop, pdu.decremented())

    def _bounce_no_route(self, pdu: Pdu, from_node: Node) -> None:
        if pdu.ptype == pdutypes.T_NO_ROUTE:
            return  # never bounce a bounce
        # The header's corr_id already correlates the bounce; repeating
        # the raw counter in the payload would make the encoded size
        # depend on process-lifetime PDU counts and break trace replay.
        error = Pdu(
            self.name,
            pdu.src,
            pdutypes.T_NO_ROUTE,
            {"unreachable": pdu.dst.raw},
            corr_id=pdu.corr_id,
        )
        back = self._resolve_next_hop(pdu.src)
        if back is not None and back is not _PENDING:
            self._send_pdu(back, error)
        elif from_node is not self:
            # A pending async resolution toward the *source* is not
            # worth parking an error for: retrace the arrival link.
            self._send_pdu(from_node, error)

    def _resolve_next_hop(self, dst: GdpName) -> Node | None:
        # 0. Directly attached endpoint.
        direct = self.attached.get(dst)
        if direct is not None:
            return direct
        # 1. FIB cache.
        cached = self.fib.get(dst)
        if cached is not None:
            node, expiry = cached
            if self.sim.now <= expiry:
                return node
            # Expired: treat as a miss.  Physical reclamation is the
            # lease wheel's job, not this lookup's.
            self.fib.maybe_purge()
        # 1b. Negative cache: a recent full miss short-circuits the
        #     GLookup climb so dead names cannot cause per-PDU lookup
        #     storms through the hierarchy.
        neg = self._neg_cache.get(dst)
        if neg is not None:
            if self.sim.now <= neg:
                self._c_negative_hits.inc()
                return None
            del self._neg_cache[dst]
        # 2. Local domain GLookupService.  An *asynchronous* service
        #    (the message-level DHT tier) cannot answer inline — its
        #    lookup is RPCs on the simulated clock — so the verdict is
        #    "pending": the caller parks the PDU and a fetch resolves it.
        if getattr(self.domain.glookup, "asynchronous", False):
            return _PENDING
        entries = self.domain.glookup.lookup(dst)
        if entries:
            hop = self._install_from_entries(dst, entries)
            if hop is not None:
                return hop
        # 3. Ancestors ("when a specific name cannot be found in the
        #    local GLookupService, such a name is queried in the
        #    GLookupService of the parent routing domain, and so on").
        #    The walk stops at the first asynchronous tier the same way.
        service = (
            self.domain.parent.glookup
            if self.domain.parent is not None
            else None
        )
        while service is not None:
            if getattr(service, "asynchronous", False):
                return _PENDING
            remote = service.lookup(dst)
            # The remote GLookupService is no more trusted than the
            # local one: re-verify before installing the upward route,
            # and cap the cache lifetime at the evidence's lease.
            for entry in remote:
                try:
                    entry.verify(now=self.sim.now)
                except Exception:
                    continue
                self._c_verified_installs.inc()
                hop = self.domain.next_hop_upward(self)
                self._install(dst, hop, lease=entry.expires_at)
                return hop
            service = service.parent
        self._neg_cache[dst] = self.sim.now + self.neg_ttl
        return None

    def _first_async_service(self):
        """The first asynchronous GLookup tier the resolution walk hits;
        returns ``(service, is_local_domain)`` or ``(None, False)``."""
        if getattr(self.domain.glookup, "asynchronous", False):
            return self.domain.glookup, True
        service = (
            self.domain.parent.glookup
            if self.domain.parent is not None
            else None
        )
        while service is not None:
            if getattr(service, "asynchronous", False):
                return service, False
            service = service.parent
        return None, False

    def _park_for_resolution(self, pdu: Pdu, from_node: Node) -> None:
        """Hold *pdu* while the asynchronous (DHT) tier resolves its
        destination; the first parker per name triggers the fetch, late
        arrivals ride the same resolution."""
        waiters = self._parked.get(pdu.dst)
        if waiters is not None:
            if len(waiters) >= MAX_PARKED_PER_DST:
                self._c_no_route.inc()
                self._bounce_no_route(pdu, from_node)
                return
            waiters.append((pdu, from_node))
            self._c_parked.inc()
            return
        service, local = self._first_async_service()
        if service is None:  # resolution raced a domain re-parent: miss
            self._c_no_route.inc()
            self._bounce_no_route(pdu, from_node)
            return
        self._parked[pdu.dst] = [(pdu, from_node)]
        self._c_parked.inc()
        dst = pdu.dst
        future = service.fetch(dst)
        if future.done:
            # The service resolved synchronously (overlay on its own
            # quiescent simulator): its ctx won't run our callback.
            self._resolution_done(dst, local, future)
        else:
            future.add_callback(
                lambda future: self._resolution_done(dst, local, future)
            )

    def _resolution_done(self, dst: GdpName, local: bool, future) -> None:
        """The DHT answered (or failed): install the route and release
        every parked PDU — forwarded on success, bounced on a miss."""
        waiters = self._parked.pop(dst, [])
        try:
            entries = future.result()
        except Exception:
            entries = []
        hop = None
        if entries:
            if local:
                hop = self._install_from_entries(dst, entries)
            else:
                # Upward install, same trust stance as the sync walk:
                # verify before caching, lease-capped.
                for entry in entries:
                    try:
                        entry.verify(now=self.sim.now)
                    except Exception:
                        continue
                    self._c_verified_installs.inc()
                    hop = self.domain.next_hop_upward(self)
                    self._install(dst, hop, lease=entry.expires_at)
                    break
        if hop is None:
            self._neg_cache[dst] = self.sim.now + self.neg_ttl
            for pdu, from_node in waiters:
                self._c_no_route.inc()
                self._bounce_no_route(pdu, from_node)
            return
        for pdu, from_node in waiters:
            self._c_forwarded.inc()
            self._c_bytes.inc(pdu.size_bytes)
            self._send_pdu(hop, pdu.decremented())

    def _install_from_entries(
        self, dst: GdpName, entries: list[RouteEntry]
    ) -> Node | None:
        """Anycast selection + verification + FIB install for a
        local-domain GLookup answer."""
        from repro.routing.anycast import select_entry

        # Steer around replicas under failover quarantine, unless they
        # are all quarantined (a possibly-stale route beats no route).
        now = self.sim.now
        live = [e for e in entries if not self._is_quarantined(e.principal, now)]
        choice = select_entry(self, live or entries)
        if choice is None:
            return None
        # Routers do not trust the GLookupService: re-verify evidence.
        try:
            choice.verify(now=self.sim.now)
            self._c_verified_installs.inc()
        except Exception:
            # Forged entry (compromised GLookupService): refuse, and try
            # any other replica that does verify.
            rest = [e for e in entries if e is not choice]
            return self._install_from_entries(dst, rest) if rest else None
        if choice.via_child is not None:
            hop: Node = self.domain.next_hop_to_child(self, choice.via_child)
        else:
            attachment_router = self._router_by_name(choice.router)
            if attachment_router is None:
                return None
            if attachment_router is self:
                # The serving endpoint is attached *here*: deliver over
                # its attachment link (recovered via the principal name,
                # so a flushed route cache self-heals).
                endpoint = self.attached.get(choice.principal)
                if endpoint is None:
                    # It really detached: stale entry, try other replicas.
                    rest = [e for e in entries if e is not choice]
                    return (
                        self._install_from_entries(dst, rest) if rest else None
                    )
                self._install(dst, endpoint, lease=choice.expires_at)
                return endpoint
            hop = self.domain.next_hop_to_router(self, attachment_router)
        self._install(dst, hop, lease=choice.expires_at)
        return hop

    def _is_quarantined(self, principal: GdpName, now: float) -> bool:
        expiry = self._quarantine.get(principal)
        if expiry is None:
            return False
        if now > expiry:
            del self._quarantine[principal]
            return False
        return True

    def _router_by_name(self, name: GdpName | None) -> "GdpRouter | None":
        return self.domain.router_by_name(name)

    def _install(
        self, dst: GdpName, hop: Node, *, lease: float | None = None
    ) -> None:
        """Cache a route; the entry can never outlive its evidence — the
        FIB expiry is capped at the advertisement lease."""
        expiry = self.sim.now + self.fib_ttl
        if lease is not None:
            expiry = min(expiry, lease)
        self.fib[dst] = (hop, expiry)
        self.fib.maybe_purge()
        self._neg_cache.pop(dst, None)

    def add_static_route(self, name: GdpName, peer: Any) -> None:
        """Install a permanent next hop for *name* (fleet interconnect).

        Like a direct attachment, this is configuration ground truth,
        not cache: it survives FIB flushes and never expires."""
        self.attached[name] = peer

    def drop_route(self, dst: GdpName) -> None:
        """Forget cached state for one name (route + negative cache);
        direct attachments are ground truth and stay."""
        self.fib.pop(dst, None)
        self._neg_cache.pop(dst, None)

    def flush_fib(self) -> None:
        """Drop all *cached* routes (positive and negative); direct
        attachments stay (they are advertisement ground truth, not
        cache)."""
        self.fib.clear()
        self._neg_cache.clear()
