"""The GDP network: flat-namespace routing over federated trust domains.

GDP-routers, routing domains, GLookupServices, secure advertisements,
anycast, and a Kademlia DHT backend for the global lookup tier.
"""

from repro.routing.anycast import rank_entries, select_entry
from repro.routing.catalog import (
    CatalogBuilder,
    CatalogEntry,
    import_catalog,
    replay_catalog,
)
from repro.routing.dht_glookup import DhtGLookupService
from repro.routing.dht import KademliaDht, build_dht
from repro.routing.domain import RoutingDomain
from repro.routing.endpoint import Endpoint
from repro.routing.glookup import GLookupService, RouteEntry
from repro.routing.lease import LeaseRefreshDaemon
from repro.routing.pdu import Pdu
from repro.routing.router import GdpRouter

__all__ = [
    "Pdu",
    "GdpRouter",
    "RoutingDomain",
    "GLookupService",
    "RouteEntry",
    "Endpoint",
    "LeaseRefreshDaemon",
    "select_entry",
    "rank_entries",
    "KademliaDht",
    "build_dht",
    "CatalogBuilder",
    "CatalogEntry",
    "replay_catalog",
    "import_catalog",
    "DhtGLookupService",
]
