"""A DHT-backed global GLookupService tier (§VII).

"Note that the GLookupService is essentially a key-value store and is
not required to be trusted; existing technologies such as distributed
hash tables (DHTs) can be used to implement a highly distributed and
scalable GLookupService."

:class:`DhtGLookupService` is a drop-in GLookupService whose entry
storage is a message-level Kademlia DHT.  Entries travel as wire forms
inside per-principal *versioned* records: replacing a binding publishes
a higher version, removing one publishes a tombstone, and holders merge
newest-wins — so replacement and deletion work through STORE messages
alone, with no reach into other nodes' stores.  Records are TTL'd;
:class:`DhtRepublishDaemon` re-puts the authoritative copies before the
TTL lapses, which doubles as re-replication after holder churn (each
republish lands on the *currently* closest live nodes).

Because every entry carries its delegation evidence, the DHT nodes stay
untrusted: a node returning a forged entry fails the resolving router's
re-verification exactly like a compromised centralized service.
"""

from __future__ import annotations

from typing import Callable

from repro.naming.names import GdpName
from repro.routing.dht import (
    RECORD_TTL,
    DhtNode,
    KademliaDht,
    make_record,
    record_expiry,
)
from repro.routing.glookup import GLookupService, RouteEntry

__all__ = ["DhtGLookupService", "DhtRepublishDaemon"]


class DhtGLookupService(GLookupService):
    """GLookupService storing entries in a Kademlia DHT.

    ``home`` is this service's access point into the DHT (the node it
    issues put/get through — e.g. the tier-1 provider's own DHT node).
    Hierarchy semantics (parent / scope propagation) are inherited
    unchanged; only the storage substrate differs.

    The service is **asynchronous**: resolution RPCs take simulated
    time, so in-simulation consumers (routers) must use :meth:`fetch`
    and park the triggering PDU until the future resolves.  The
    synchronous :meth:`lookup` drives the simulation when it is
    quiescent (tests, benches) and falls back to the home node's local
    replica when called mid-run.
    """

    #: routers check this to decide between sync lookup and fetch()
    asynchronous = True

    def __init__(
        self,
        domain_name: str,
        dht: KademliaDht,
        home: GdpName,
        parent: "GLookupService | None" = None,
        *,
        verify_on_register: bool = True,
        clock: Callable[[], float] | None = None,
        metrics=None,
        record_ttl: float = RECORD_TTL,
    ):
        super().__init__(
            domain_name,
            parent,
            verify_on_register=verify_on_register,
            clock=clock,
            metrics=metrics,
        )
        if home not in dht.nodes:
            dht.join(home)
        self.dht = dht
        self.home = home
        self.record_ttl = record_ttl
        # Monotonic publish clock: every register/unregister bumps it,
        # so newest-wins merging on the holders is total-ordered.
        self._version = 0
        # Authoritative published records: name -> principal -> record
        # (what the republish daemon re-puts; tombstones live here too
        # until their TTL would have lapsed everywhere).
        self._published: dict[GdpName, dict[bytes, dict]] = {}
        # Local name index so names()/len() stay meaningful; contents
        # live in the DHT.
        self._names: set[GdpName] = set()
        # Per-query DHT cost, surfaced through the metrics registry so
        # bench/tests can assert the O(log n) hop bound (§VII).
        self._c_dht_lookups = self._metrics.counter("dht.lookups")
        self._c_dht_messages = self._metrics.counter("dht.messages")
        self._c_dht_under_replicated = self._metrics.counter(
            "dht.under_replicated"
        )
        self._h_dht_hops = self._metrics.histogram("dht.hops")

    # -- internals ---------------------------------------------------------

    def _home_node(self) -> DhtNode:
        """The service's own access point (a local handle, the one node
        whose state is *ours* rather than the untrusted fabric's)."""
        return self.dht._entry_node(self.home)

    def _record_for(self, entry: RouteEntry, wire: dict) -> dict:
        """One versioned record carrying *entry*'s wire form.  The
        record TTL is capped by the entry's lease — a record must not
        outlive the binding it carries."""
        expiry = self.now + self.record_ttl
        if entry.expires_at is not None:
            expiry = min(expiry, entry.expires_at)
        return make_record(
            entry.principal.raw, self._version, wire, expiry
        )

    def _publish(self, name: GdpName, records: list[dict]) -> None:
        """Replicate *records* through the DHT: drive to completion when
        the simulation is quiescent, spawn a process when it is mid-run
        (router-triggered registrations during chaos)."""
        sim = self.dht.net.sim
        if getattr(sim, "running", False):
            sim.spawn(
                self._publish_proc(name, records),
                name=f"dht-publish:{name.human()}",
            )
        else:
            sim.run_process(
                self._publish_proc(name, records),
                name=f"dht-publish:{name.human()}",
            )

    def _publish_proc(self, name: GdpName, records: list[dict]):
        acked = yield from self.dht.put_records_proc(self.home, name, records)
        if acked < min(self.dht.k, len(self.dht)):
            self._c_dht_under_replicated.inc()
        return acked

    def _decode_live(self, wires: list, now: float) -> list[RouteEntry]:
        entries = []
        for wire in wires:
            try:
                entry = RouteEntry.from_wire(wire)
            except Exception:
                continue  # garbage from an untrusted DHT node: skip
            if not entry.is_expired(now):
                entries.append(entry)
        return entries

    def _observe_query(self) -> None:
        self._c_dht_lookups.inc()
        self._c_dht_messages.inc(self.dht.last_messages)
        self._h_dht_hops.observe(self.dht.last_hops)

    # -- the GLookupService surface ----------------------------------------

    def register(self, entry: RouteEntry, *, propagate: bool = True) -> None:
        """Verify (unless compromised) and publish an entry.

        Replacement is per-principal and versioned: holders merge the
        higher version and the old binding dies everywhere the STOREs
        reach — no global store-wipe, no god-mode.
        """
        if self.verify_on_register:
            entry.verify(now=self.now)
            if not entry.allows_domain(self.domain_name):
                from repro.errors import ScopeViolationError

                raise ScopeViolationError(
                    f"capsule {entry.name.human()} is not allowed in "
                    f"domain {self.domain_name!r}"
                )
        self._version += 1
        record = self._record_for(entry, entry.to_wire())
        self._published.setdefault(entry.name, {})[
            entry.principal.raw
        ] = record
        self._names.add(entry.name)
        # The home node keeps an authoritative local replica immediately
        # (mid-run lookups and republish never race the publish RPCs).
        self._home_node().merge_record(entry.name, dict(record))
        self._publish(entry.name, [dict(record)])
        if propagate and self.parent is not None:
            if entry.allows_domain(self.parent.domain_name):
                self.parent.register(entry.child_copy(self.domain_name))

    def unregister(self, name: GdpName, principal: GdpName) -> None:
        """Remove the binding for (name, principal), recursively up.

        Deletion is a published *tombstone*: a higher-version record
        that masks the value on every holder it reaches and expires
        after one record TTL (by which time the value record it masks
        has expired everywhere too).
        """
        self._version += 1
        tombstone = make_record(
            principal.raw,
            self._version,
            b"",
            self.now + self.record_ttl,
            tombstone=True,
        )
        published = self._published.get(name)
        if published is not None:
            published[principal.raw] = tombstone
            if not any(
                not record.get("t") for record in published.values()
            ):
                self._names.discard(name)
        self._home_node().merge_record(name, dict(tombstone))
        self._publish(name, [dict(tombstone)])
        if self.parent is not None:
            self.parent.unregister(name, principal)

    def fetch(self, name: GdpName):
        """Asynchronous lookup: returns a Future resolving with the live
        entries for *name* (the router's parked-PDU resolution path)."""
        ctx = self.dht.net.ctx
        future = ctx.future()

        def proc():
            result = yield from self.dht.get_proc(self.home, name)
            self._c_queries.inc()
            self._observe_query()
            entries = self._decode_live(result.values, self.now)
            if not entries:
                self._c_misses.inc()
            return entries

        def done(completion) -> None:
            try:
                future.resolve(completion.result())
            except Exception:
                future.resolve([])  # resolution failure == miss

        sim = self.dht.net.sim
        if not getattr(sim, "running", False):
            # The overlay lives on its own (quiescent) simulator — e.g.
            # a privately-built KademliaDht under a router world on a
            # different SimNetwork.  Drive it to completion here; the
            # caller sees an already-resolved future and must not rely
            # on add_callback (which would schedule on *this* sim).
            try:
                future.resolve(
                    sim.run_process(proc(), name=f"dht-fetch:{name.human()}")
                )
            except Exception:
                future.resolve([])
            return future
        ctx.spawn(proc(), name=f"dht-fetch:{name.human()}").completion\
            .add_callback(done)
        return future

    def lookup(self, name: GdpName) -> list[RouteEntry]:
        """Live entries for *name* (expired ones culled).

        Quiescent (tests/benches): drives a full message-level lookup.
        Mid-simulation: serves the home node's local replica — routers
        use :meth:`fetch` for real resolution, so this fallback only
        backs auxiliary sync callers.
        """
        sim = self.dht.net.sim
        if getattr(sim, "running", False):
            self._c_queries.inc()
            entries = self._decode_live(
                self._home_node().live_values(name), self.now
            )
            if not entries:
                self._c_misses.inc()
            return entries
        self._c_queries.inc()
        result = sim.run_process(
            self.dht.get_proc(self.home, name), "dht-lookup"
        )
        self._observe_query()
        entries = self._decode_live(result.values, self.now)
        if not entries:
            self._c_misses.inc()
        return entries

    def peek(self, name: GdpName) -> list[RouteEntry]:
        """Diagnostic view: everything decodable stored for *name* —
        no counters, no expiry culling (oracles judge staleness)."""
        sim = self.dht.net.sim
        if getattr(sim, "running", False):
            wires = self._home_node().live_values(name)
        else:
            wires = sim.run_process(
                self.dht.get_proc(self.home, name), "dht-peek"
            ).values
        entries = []
        for wire in wires:
            try:
                entries.append(RouteEntry.from_wire(wire))
            except Exception:
                continue  # undecodable garbage: routers skip it too
        return entries

    # -- churn maintenance -------------------------------------------------

    def republish_proc(self):
        """Re-put every authoritative published record with a refreshed
        TTL (same version — holders extend in place, newcomers and
        healed nodes receive a copy).  This is both republish-on-expiry
        and the re-replication path after holder churn."""
        now = self.now
        republished = 0
        for name in list(self._published):
            published = self._published.get(name, {})
            fresh: list[dict] = []
            for principal, record in list(published.items()):
                if record.get("t"):
                    # Tombstones republish until their original TTL
                    # lapses, then fall away for good.
                    if record_expiry(record) <= now:
                        del published[principal]
                        continue
                    fresh.append(dict(record))
                    continue
                record = dict(record)
                expiry = now + self.record_ttl
                try:
                    lease = RouteEntry.from_wire(record["d"]).expires_at
                except Exception:
                    lease = None
                if lease is not None:
                    if lease <= now:
                        del published[principal]
                        continue
                    expiry = min(expiry, lease)
                refreshed = make_record(
                    bytes(record["p"]), record["v"], record["d"], expiry
                )
                published[principal] = refreshed
                fresh.append(dict(refreshed))
            if not published:
                del self._published[name]
                self._names.discard(name)
                continue
            if fresh:
                acked = yield from self.dht.put_records_proc(
                    self.home, name, fresh
                )
                if acked < min(self.dht.k, len(self.dht)):
                    self._c_dht_under_replicated.inc()
                republished += 1
        return republished

    def replication_report(self) -> dict:
        """God-mode *diagnostic* snapshot for the simtest oracle: how
        many live nodes hold each published name right now.  Never used
        on the protocol path — the oracle judges it after the heal."""
        live_nodes = [
            node for node in self.dht.nodes.values() if not node.crashed
        ]
        now = self.now
        names: dict[str, int] = {}
        for name in sorted(self._names):
            published = self._published.get(name, {})
            live_principals = {
                principal
                for principal, record in published.items()
                if not record.get("t") and record_expiry(record) > now
            }
            if not live_principals:
                continue
            holders = 0
            for node in live_nodes:
                slot = node.store.get(name, {})
                if any(
                    principal in slot
                    and not slot[principal].get("t")
                    and record_expiry(slot[principal]) > now
                    for principal in live_principals
                ):
                    holders += 1
            names[name.hex()] = holders
        return {
            "k": self.dht.k,
            "live_nodes": len(live_nodes),
            "names": names,
            "under_replicated_puts": self.dht.stats.under_replicated,
        }

    def names(self):
        """All names with live entries."""
        return set(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __repr__(self) -> str:
        return (
            f"DhtGLookupService(domain={self.domain_name!r}, "
            f"dht_nodes={len(self.dht)})"
        )


class DhtRepublishDaemon:
    """Periodic republish driver (one per DHT-backed service).

    Runs :meth:`DhtGLookupService.republish_proc` every ``interval``
    simulated seconds — well inside the record TTL, so records neither
    vanish early (republish beats expiry) nor accumulate forever
    (unrefreshed records die one TTL after their last publish).
    """

    def __init__(
        self, service: DhtGLookupService, interval: float | None = None
    ):
        self.service = service
        self.interval = (
            interval if interval is not None else service.record_ttl / 3.0
        )
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.service.dht.net.ctx.spawn(
            self._loop(), name=f"dht-republish:{self.service.domain_name}"
        )

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.interval
            if not self._running:
                return
            yield from self.service.republish_proc()
