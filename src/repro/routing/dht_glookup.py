"""A DHT-backed global GLookupService tier (§VII).

"Note that the GLookupService is essentially a key-value store and is
not required to be trusted; existing technologies such as distributed
hash tables (DHTs) can be used to implement a highly distributed and
scalable GLookupService."

:class:`DhtGLookupService` is a drop-in GLookupService whose entry
storage is a Kademlia DHT instead of a local dict — suitable for the
top-level (tier-1) lookup tier, where a single shared database would
not scale.  Entries travel as wire forms; because every entry carries
its delegation evidence, the DHT nodes stay untrusted: a node returning
a forged entry fails the resolving router's re-verification exactly
like a compromised centralized service.
"""

from __future__ import annotations

from typing import Callable

from repro.naming.names import GdpName
from repro.routing.dht import KademliaDht
from repro.routing.glookup import GLookupService, RouteEntry

__all__ = ["DhtGLookupService"]


class DhtGLookupService(GLookupService):
    """GLookupService storing entries in a Kademlia DHT.

    ``home`` is this service's access point into the DHT (the node it
    issues put/get through — e.g. the tier-1 provider's own DHT node).
    Hierarchy semantics (parent / scope propagation) are inherited
    unchanged; only the storage substrate differs.
    """

    def __init__(
        self,
        domain_name: str,
        dht: KademliaDht,
        home: GdpName,
        parent: "GLookupService | None" = None,
        *,
        verify_on_register: bool = True,
        clock: Callable[[], float] | None = None,
        metrics=None,
    ):
        super().__init__(
            domain_name,
            parent,
            verify_on_register=verify_on_register,
            clock=clock,
            metrics=metrics,
        )
        if home not in dht.nodes:
            dht.join(home)
        self.dht = dht
        self.home = home
        # Local name index so names()/len() stay meaningful; contents
        # live in the DHT.
        self._names: set[GdpName] = set()
        # Per-query DHT cost, surfaced through the metrics registry so
        # bench/tests can assert the O(log n) hop bound (§VII).
        self._c_dht_lookups = self._metrics.counter("dht.lookups")
        self._c_dht_messages = self._metrics.counter("dht.messages")
        self._h_dht_hops = self._metrics.histogram("dht.hops")

    def register(self, entry: RouteEntry, *, propagate: bool = True) -> None:
        """Verify (unless compromised) and store an entry."""
        if self.verify_on_register:
            entry.verify(now=self.now)
            if not entry.allows_domain(self.domain_name):
                from repro.errors import ScopeViolationError

                raise ScopeViolationError(
                    f"capsule {entry.name.human()} is not allowed in "
                    f"domain {self.domain_name!r}"
                )
        # Replace any prior binding by the same principal: fetch, filter,
        # re-store (the DHT keeps value lists per key).
        existing = self.dht.get(self.home, entry.name)
        fresh = [
            wire
            for wire in existing
            if wire.get("principal") != entry.principal.raw
        ]
        fresh.append(entry.to_wire())
        for node_name in list(self.dht.nodes):
            # Clear stale copies so replacement is visible everywhere.
            node = self.dht.nodes[node_name]
            if entry.name in node.store:
                node.store[entry.name] = []
        for wire in fresh:
            self.dht.put(self.home, entry.name, wire)
        self._names.add(entry.name)
        if propagate and self.parent is not None:
            if entry.allows_domain(self.parent.domain_name):
                self.parent.register(entry.child_copy(self.domain_name))

    def unregister(self, name: GdpName, principal: GdpName) -> None:
        """Remove the binding for (name, principal), recursively up."""
        remaining = [
            wire
            for wire in self.dht.get(self.home, name)
            if wire.get("principal") != principal.raw
        ]
        for node_name in list(self.dht.nodes):
            node = self.dht.nodes[node_name]
            if name in node.store:
                node.store[name] = []
        for wire in remaining:
            self.dht.put(self.home, name, wire)
        if not remaining:
            self._names.discard(name)
        if self.parent is not None:
            self.parent.unregister(name, principal)

    def lookup(self, name: GdpName) -> list[RouteEntry]:
        """Live entries for *name* (expired ones culled)."""
        self._c_queries.inc()
        now = self.now
        entries = []
        wires = self.dht.get(self.home, name)
        self._c_dht_lookups.inc()
        self._c_dht_messages.inc(self.dht.last_messages)
        self._h_dht_hops.observe(self.dht.last_hops)
        for wire in wires:
            try:
                entry = RouteEntry.from_wire(wire)
            except Exception:
                continue  # garbage from an untrusted DHT node: skip
            if not entry.is_expired(now):
                entries.append(entry)
        if not entries:
            self._c_misses.inc()
        return entries

    def peek(self, name: GdpName) -> list[RouteEntry]:
        """Diagnostic view: everything decodable stored for *name* —
        no counters, no expiry culling (oracles judge staleness)."""
        entries = []
        for wire in self.dht.get(self.home, name):
            try:
                entries.append(RouteEntry.from_wire(wire))
            except Exception:
                continue  # undecodable garbage: routers skip it too
        return entries

    def names(self):
        """All names with live entries."""
        return set(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __repr__(self) -> str:
        return (
            f"DhtGLookupService(domain={self.domain_name!r}, "
            f"dht_nodes={len(self.dht)})"
        )
