"""Memory-compact routing tables for million-name namespaces (§VII).

The paper's scaling claim — a flat 256-bit namespace resolved through
hierarchical GLookup — dies in Python if every table is a dict of
objects: a ``dict[GdpName, tuple]`` costs ~300 bytes per entry before
any evidence is attached.  This module provides the packed substrate
both tables share:

:class:`PackedMap`
    32-byte keys in one sorted ``bytes`` blob searched by binary
    search, a fixed-width ``bytearray`` value sidecar, and a small
    dict write-log merged in batches.  A merge is a handful of
    ``bytes`` slices joined at C speed, so sustained inserts cost an
    amortized O(log n) search plus a few bytes of memcpy each — not a
    per-record Python loop.

:class:`ExpiryWheel`
    Lease expirations bucketed by coarse time slot, each bucket a
    packed ``bytearray`` of 32-byte name tokens with an int-heap over
    the slot indices.  Purging processes only the buckets whose slot
    has fully elapsed — O(expired-processed), never O(table) — which
    is what keeps lease refresh and withdraw purge affordable at 1M
    names (ROADMAP item 1).

:class:`CompactFib`
    The router's name -> (next-hop, expiry) cache on top of both: the
    dict-compatible surface :mod:`repro.routing.router` and the
    simtest oracles already use, with next-hop nodes interned (a
    router has a handful of neighbors, not a million) and expired
    entries reclaimed by the wheel instead of lingering until the next
    lookup happens to touch them.
"""

from __future__ import annotations

import heapq
import struct
import sys
from typing import Any, Callable, Iterable, Iterator

from repro.naming.names import GdpName

__all__ = ["PackedMap", "ExpiryWheel", "CompactFib"]

KEY_BYTES = 32

#: write-log size that triggers a merge into the sorted base arrays
DEFAULT_MERGE_THRESHOLD = 8192


class PackedMap:
    """A sorted packed map: 32-byte keys -> fixed-width packed values.

    Layout: ``_base_keys`` holds the sorted concatenation of all merged
    keys (one immutable ``bytes`` object, 32 bytes per record) and
    ``_base_vals`` the parallel value sidecar (``bytearray``, so a
    value can be updated in place without touching the key blob).
    Writes land in ``_log`` (a plain dict; ``None`` marks a pending
    delete) and are merged once the log reaches ``merge_threshold``.

    The merge walks the sorted log keys with binary search and builds
    the new blobs from slices — the per-record work happens inside
    ``bytes.join``, not in Python bytecode.
    """

    __slots__ = (
        "value_size",
        "merge_threshold",
        "_base_keys",
        "_base_vals",
        "_log",
        "_count",
    )

    def __init__(
        self,
        value_size: int,
        *,
        merge_threshold: int = DEFAULT_MERGE_THRESHOLD,
    ):
        if value_size <= 0:
            raise ValueError("value_size must be positive")
        self.value_size = value_size
        self.merge_threshold = merge_threshold
        self._base_keys = b""
        self._base_vals = bytearray()
        self._log: dict[bytes, bytes | None] = {}
        self._count = 0

    # -- binary search over the packed key blob --------------------------

    def _find_base(self, key: bytes) -> int:
        """Index of *key* in the base arrays, or -1."""
        keys = self._base_keys
        lo, hi = 0, len(keys) // KEY_BYTES
        while lo < hi:
            mid = (lo + hi) >> 1
            off = mid * KEY_BYTES
            if keys[off : off + KEY_BYTES] < key:
                lo = mid + 1
            else:
                hi = mid
        off = lo * KEY_BYTES
        if keys[off : off + KEY_BYTES] == key:
            return lo
        return -1

    @staticmethod
    def _bisect(keys: bytes, lo: int, hi: int, key: bytes) -> int:
        """First record index in [lo, hi) whose key is >= *key*."""
        while lo < hi:
            mid = (lo + hi) >> 1
            off = mid * KEY_BYTES
            if keys[off : off + KEY_BYTES] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- core operations -------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """The packed value for *key*, or None."""
        logged = self._log.get(key, _MISSING)
        if logged is not _MISSING:
            return logged  # None for a pending delete
        idx = self._find_base(key)
        if idx < 0:
            return None
        vsz = self.value_size
        return bytes(self._base_vals[idx * vsz : (idx + 1) * vsz])

    def set(self, key: bytes, value: bytes) -> None:
        """Insert or replace the value for *key*."""
        if len(key) != KEY_BYTES or len(value) != self.value_size:
            raise ValueError("packed key/value size mismatch")
        logged = self._log.get(key, _MISSING)
        if logged is not _MISSING:
            if logged is None:
                self._count += 1
            self._log[key] = value
            return
        idx = self._find_base(key)
        if idx >= 0:
            # In-place sidecar update: the cheap lease-refresh path.
            vsz = self.value_size
            self._base_vals[idx * vsz : (idx + 1) * vsz] = value
            return
        self._log[key] = value
        self._count += 1
        if len(self._log) >= self.merge_threshold:
            self._merge()

    def delete(self, key: bytes) -> bool:
        """Remove *key*; returns whether it was present."""
        logged = self._log.get(key, _MISSING)
        if logged is not _MISSING:
            if logged is None:
                return False
            if self._find_base(key) < 0:
                del self._log[key]  # log-only record: drop outright
            else:
                self._log[key] = None
            self._count -= 1
            return True
        if self._find_base(key) < 0:
            return False
        self._log[key] = None
        self._count -= 1
        if len(self._log) >= self.merge_threshold:
            self._merge()
        return True

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self._count

    def keys(self) -> Iterator[bytes]:
        """All live keys (merged order first, then log inserts)."""
        log = self._log
        keys = self._base_keys
        for off in range(0, len(keys), KEY_BYTES):
            key = keys[off : off + KEY_BYTES]
            if key not in log:
                yield key
        for key, value in log.items():
            if value is not None:
                yield key

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """All live (key, packed value) pairs."""
        log = self._log
        keys = self._base_keys
        vals = self._base_vals
        vsz = self.value_size
        for idx in range(len(keys) // KEY_BYTES):
            key = keys[idx * KEY_BYTES : (idx + 1) * KEY_BYTES]
            if key not in log:
                yield key, bytes(vals[idx * vsz : (idx + 1) * vsz])
        for key, value in log.items():
            if value is not None:
                yield key, value

    def clear(self) -> None:
        """Drop everything."""
        self._base_keys = b""
        self._base_vals = bytearray()
        self._log.clear()
        self._count = 0

    def compact(self) -> None:
        """Force-merge the write log into the sorted base arrays."""
        self._merge()

    def _merge(self) -> None:
        log = self._log
        if not log:
            return
        vsz = self.value_size
        base_keys = self._base_keys
        base_vals = self._base_vals
        n = len(base_keys) // KEY_BYTES
        out_keys: list[bytes] = []
        out_vals: list[bytes | bytearray] = []
        pos = 0
        bisect = self._bisect
        for key, value in sorted(log.items()):
            idx = bisect(base_keys, pos, n, key)
            if idx > pos:
                out_keys.append(base_keys[pos * KEY_BYTES : idx * KEY_BYTES])
                out_vals.append(base_vals[pos * vsz : idx * vsz])
            off = idx * KEY_BYTES
            if idx < n and base_keys[off : off + KEY_BYTES] == key:
                pos = idx + 1  # key exists in base: replaced or deleted
            else:
                pos = idx
            if value is not None:
                out_keys.append(key)
                out_vals.append(value)
        if pos < n:
            out_keys.append(base_keys[pos * KEY_BYTES :])
            out_vals.append(base_vals[pos * vsz :])
        self._base_keys = b"".join(out_keys)
        self._base_vals = bytearray(b"").join(out_vals)
        log.clear()

    def memory_bytes(self) -> int:
        """Approximate resident bytes of the packed state (blobs plus
        the write log's dict overhead)."""
        return (
            sys.getsizeof(self._base_keys)
            + sys.getsizeof(self._base_vals)
            + sys.getsizeof(self._log)
            + sum(
                sys.getsizeof(k) + (sys.getsizeof(v) if v is not None else 0)
                for k, v in self._log.items()
            )
        )


#: sentinel distinguishing "not logged" from a logged delete (None)
_MISSING: Any = object()


class ExpiryWheel:
    """A coarse timing wheel over 32-byte name tokens.

    ``schedule(token, expiry)`` files the token in the bucket for
    ``floor(expiry / granularity)``; ``expired(now)`` yields every
    token in buckets whose slot has *fully* elapsed.  Tokens are
    advisory: the caller re-checks the authoritative expiry and
    re-files entries that were refreshed since scheduling (a refreshed
    entry's new bucket is strictly in the future, so one purge pass
    terminates).  A token may therefore fire up to ``granularity``
    late — the exactness lives in the table, the wheel only bounds
    *when* dead entries get reclaimed.
    """

    __slots__ = ("granularity", "_buckets", "_heap")

    def __init__(self, granularity: float = 1.0):
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.granularity = granularity
        self._buckets: dict[int, bytearray] = {}
        self._heap: list[int] = []

    def schedule(self, token: bytes, expiry: float) -> None:
        """File *token* to fire once *expiry* has fully elapsed."""
        if len(token) != KEY_BYTES:
            raise ValueError("wheel tokens must be 32 bytes")
        slot = int(expiry // self.granularity)
        bucket = self._buckets.get(slot)
        if bucket is None:
            bucket = self._buckets[slot] = bytearray()
            heapq.heappush(self._heap, slot)
        bucket += token

    def next_deadline(self) -> float | None:
        """When the earliest bucket becomes purgeable (None if empty)."""
        if not self._heap:
            return None
        return (self._heap[0] + 1) * self.granularity

    def expired(self, now: float) -> Iterator[bytes]:
        """Yield (and consume) every token whose slot has elapsed."""
        heap = self._heap
        granularity = self.granularity
        while heap and (heap[0] + 1) * granularity <= now:
            slot = heapq.heappop(heap)
            bucket = self._buckets.pop(slot, b"")
            for off in range(0, len(bucket), KEY_BYTES):
                yield bytes(bucket[off : off + KEY_BYTES])

    def clear(self) -> None:
        """Drop all scheduled tokens."""
        self._buckets.clear()
        self._heap.clear()

    def __len__(self) -> int:
        """Scheduled token count (stale duplicates included)."""
        return sum(len(b) for b in self._buckets.values()) // KEY_BYTES

    def memory_bytes(self) -> int:
        """Approximate resident bytes of buckets + heap."""
        return (
            sys.getsizeof(self._buckets)
            + sys.getsizeof(self._heap)
            + sum(sys.getsizeof(b) for b in self._buckets.values())
        )


_FIB_VALUE = struct.Struct("<Id")  # (next-hop index u32, expiry f64)


class CompactFib:
    """The router's route cache: ``GdpName -> (next-hop node, expiry)``.

    Keys live in a :class:`PackedMap` (44 packed bytes per route:
    32-byte name + 4-byte interned next-hop index + 8-byte expiry);
    next-hop nodes are interned once per neighbor.  Every insert files
    the name on an :class:`ExpiryWheel`, and ``maybe_purge()`` — an
    O(1) head check the router runs on install activity — physically
    reclaims expired entries instead of leaving them to rot until a
    lookup happens to touch them.

    The mapping surface mirrors the plain dict it replaces, so the
    simtest oracles and existing tests (``fib[name]``, ``name in fib``,
    ``fib.items()``) keep working unchanged.
    """

    __slots__ = ("_map", "_wheel", "_clock", "_hops", "_hop_index", "purged")

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        granularity: float = 1.0,
        merge_threshold: int = DEFAULT_MERGE_THRESHOLD,
    ):
        self._map = PackedMap(
            _FIB_VALUE.size, merge_threshold=merge_threshold
        )
        self._wheel = ExpiryWheel(granularity)
        self._clock = clock or (lambda: 0.0)
        #: interned next-hop nodes (index -> node; id(node) -> index)
        self._hops: list[Any] = []
        self._hop_index: dict[int, int] = {}
        #: total entries physically reclaimed by the wheel
        self.purged = 0

    # -- dict-compatible surface -----------------------------------------

    def __setitem__(self, name: GdpName, value: tuple[Any, float]) -> None:
        node, expiry = value
        idx = self._hop_index.get(id(node))
        if idx is None:
            idx = len(self._hops)
            self._hops.append(node)
            self._hop_index[id(node)] = idx
        self._map.set(name.raw, _FIB_VALUE.pack(idx, expiry))
        self._wheel.schedule(name.raw, expiry)

    def get(self, name: GdpName, default: Any = None) -> Any:
        packed = self._map.get(name.raw)
        if packed is None:
            return default
        idx, expiry = _FIB_VALUE.unpack(packed)
        return (self._hops[idx], expiry)

    def __getitem__(self, name: GdpName) -> tuple[Any, float]:
        value = self.get(name)
        if value is None:
            raise KeyError(name)
        return value

    def __delitem__(self, name: GdpName) -> None:
        if not self._map.delete(name.raw):
            raise KeyError(name)

    def pop(self, name: GdpName, default: Any = None) -> Any:
        value = self.get(name)
        if value is None:
            return default
        self._map.delete(name.raw)
        return value

    def __contains__(self, name: GdpName) -> bool:
        return self._map.get(name.raw) is not None

    def __len__(self) -> int:
        return len(self._map)

    def __iter__(self) -> Iterator[GdpName]:
        return iter(self.keys())

    def keys(self) -> Iterable[GdpName]:
        """All cached names."""
        return (GdpName(raw) for raw in self._map.keys())

    def items(self) -> Iterable[tuple[GdpName, tuple[Any, float]]]:
        """All (name, (next-hop, expiry)) pairs."""
        hops = self._hops
        for raw, packed in self._map.items():
            idx, expiry = _FIB_VALUE.unpack(packed)
            yield GdpName(raw), (hops[idx], expiry)

    def clear(self) -> None:
        """Drop every cached route (the wheel's stale tokens become
        no-ops on their next purge pass)."""
        self._map.clear()
        self._wheel.clear()

    # -- lease-wheel purge -----------------------------------------------

    def maybe_purge(self, now: float | None = None) -> int:
        """O(1) head check; runs a purge pass only when the earliest
        wheel bucket has elapsed.  Returns entries reclaimed."""
        if now is None:
            now = self._clock()
        deadline = self._wheel.next_deadline()
        if deadline is None or deadline > now:
            return 0
        return self.purge_expired(now)

    def purge_expired(self, now: float | None = None) -> int:
        """Reclaim every entry whose lease elapsed; cost is proportional
        to the tokens processed, never the table size."""
        if now is None:
            now = self._clock()
        reclaimed = 0
        table = self._map
        wheel = self._wheel
        for token in wheel.expired(now):
            packed = table.get(token)
            if packed is None:
                continue  # already dropped/replaced: stale token
            expiry = _FIB_VALUE.unpack(packed)[1]
            if expiry <= now:
                table.delete(token)
                reclaimed += 1
            else:
                wheel.schedule(token, expiry)  # refreshed since filing
        self.purged += reclaimed
        return reclaimed

    def next_purge_deadline(self) -> float | None:
        """When the earliest wheel bucket becomes purgeable."""
        return self._wheel.next_deadline()

    def memory_bytes(self) -> int:
        """Approximate resident bytes of map + wheel + hop intern."""
        return (
            self._map.memory_bytes()
            + self._wheel.memory_bytes()
            + sys.getsizeof(self._hops)
            + sys.getsizeof(self._hop_index)
        )

    def __repr__(self) -> str:
        return f"CompactFib(routes={len(self)}, purged={self.purged})"
